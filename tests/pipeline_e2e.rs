//! End-to-end integration: the full certification pipeline across all
//! workspace crates, plus cross-checks between its stages.

use certnn_core::pipeline::{CertificationPipeline, PipelineConfig};
use certnn_core::scenario::left_vehicle_spec;
use certnn_nn::gmm::{ActionDim, Gmm2};
use certnn_verify::verifier::Verdict;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn pipeline_report_is_internally_consistent() {
    let report = CertificationPipeline::new(PipelineConfig::smoke_test())
        .run()
        .expect("pipeline runs");

    // Validity: sanitization accounting adds up.
    assert_eq!(report.audit.total, report.samples_used + report.removed);

    // Correctness: the verified maximum dominates the network's actual
    // behaviour on random scenario inputs.
    let max = report.lateral.max_lateral.expect("small query closes");
    let spec = left_vehicle_spec();
    let mut rng = StdRng::seed_from_u64(9);
    let layout = report.layout;
    for _ in 0..200 {
        let x: certnn_linalg::Vector = spec
            .bounds()
            .iter()
            .map(|iv| {
                if iv.width() == 0.0 {
                    iv.lo()
                } else {
                    rng.gen_range(iv.lo()..=iv.hi())
                }
            })
            .collect();
        assert!(spec.contains(&x, 1e-9));
        let out = report.network.forward(&x).expect("forward");
        for k in 0..layout.components() {
            let mean = out[layout.mean(k, ActionDim::LateralVelocity)];
            assert!(
                mean <= max + 1e-6,
                "sampled lateral mean {mean} exceeds verified max {max}"
            );
        }
    }
}

#[test]
fn verified_witness_is_reproducible_through_the_gmm_head() {
    let report = CertificationPipeline::new(PipelineConfig::smoke_test())
        .run()
        .expect("pipeline runs");
    let max = report.lateral.max_lateral.expect("closes");
    // The witness input decodes to a mixture whose max lateral mean is
    // exactly the verified maximum.
    let witness = report.lateral.per_component[0]
        .witness
        .as_ref()
        .expect("witness");
    let out = report.network.forward(witness).expect("forward");
    let gmm = Gmm2::from_output(&out, report.layout).expect("decode");
    assert!((gmm.max_lateral_mean() - max).abs() < 1e-5);
}

#[test]
fn proof_verdict_matches_exact_maximum() {
    let mut cfg = PipelineConfig::smoke_test();
    cfg.proof_threshold = 0.0; // almost surely violated by an ML model
    let report = CertificationPipeline::new(cfg).run().expect("runs");
    let max = report.lateral.max_lateral.expect("closes");
    match &report.proof.0 {
        Verdict::Holds { bound } => {
            assert!(max <= 0.0 + 1e-6);
            assert!(*bound <= 0.0 + 1e-6);
        }
        Verdict::Violated { value, witness } => {
            assert!(max > 0.0);
            assert!(*value > 0.0);
            // The witness genuinely violates through a forward pass.
            let out = report.network.forward(witness).expect("forward");
            let gmm = Gmm2::from_output(&out, report.layout).expect("decode");
            assert!(gmm.max_lateral_mean() > 0.0);
        }
        Verdict::Unknown { .. } => panic!("tiny decision query must close"),
    }
}
