//! End-to-end serve suite: the daemon must be a *transparent* substitute
//! for in-process verification.
//!
//! Two contracts are held here:
//!
//! 1. **Bit-identity.** The smoke fleet verified over the wire
//!    ([`certnn_serve::fleet::run_fleet_over`]) must produce verdicts,
//!    verified maxima and degradation tags bit-identical to the
//!    in-process [`certnn_core::fleet::run_fleet`]. Anything else means
//!    the service path silently forked the verifier.
//! 2. **Memoization.** N identical submissions must cost exactly one
//!    solve: the first is `Fresh`, every later one answers from the
//!    in-memory job table or the on-disk certificate cache, observable
//!    through the daemon's `serve.cache_hits` counter (plain stats, the
//!    obs mirror, and the `STATS` wire frame all agree).

use certnn_core::fleet::{
    fleet_dataset, member_seed, train_member, FleetConfig,
};
use certnn_core::scenario::{lateral_mean_objectives, left_vehicle_spec};
use certnn_nn::gmm::OutputLayout;
use certnn_serve::client::Client;
use certnn_serve::fleet::run_fleet_over;
use certnn_serve::protocol::{Disposition, JobRequest};
use certnn_serve::server::{ServeOptions, Server};
use certnn_verify::bab::resolve_threads;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("certnn-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn wire_fleet_is_bit_identical_to_in_process_fleet() {
    let config = FleetConfig::smoke_test();
    let local = certnn_core::fleet::run_fleet(&config).expect("local fleet runs");

    let dir = temp_dir("fleet");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
    let remote = run_fleet_over(server.addr(), &config).expect("wire fleet runs");
    drop(server);

    assert_eq!(local.samples, remote.samples);
    assert_eq!(local.members.len(), remote.members.len());
    for (a, b) in local.members.iter().zip(&remote.members) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(
            a.final_loss.to_bits(),
            b.final_loss.to_bits(),
            "training drifted between paths (seed {})",
            a.seed
        );
        assert_eq!(
            a.verified_max.map(f64::to_bits),
            b.verified_max.map(f64::to_bits),
            "verified maximum drifted on seed {}: local {:?} vs wire {:?}",
            a.seed,
            a.verified_max,
            b.verified_max
        );
        assert_eq!(a.safe, b.safe, "safety verdict drifted on seed {}", a.seed);
        assert_eq!(
            a.degradation, b.degradation,
            "degradation tag drifted on seed {}",
            a.seed
        );
        assert_eq!(a.nodes, b.nodes, "node count drifted on seed {}", a.seed);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_submissions_cost_exactly_one_solve() {
    const N: usize = 4;
    certnn_obs::set_enabled(true);
    certnn_obs::reset();

    let config = FleetConfig::smoke_test();
    let (data, _) = fleet_dataset(&config).expect("dataset");
    let (net, _) = train_member(&config, member_seed(0), &data).expect("training");
    let spec = left_vehicle_spec();
    let layout = OutputLayout::new(1);
    let objectives = lateral_mean_objectives(layout);
    let workers = resolve_threads(config.threads).min(config.fleet_size.max(1));
    let opts = config.verifier_options(workers);

    let dir = temp_dir("cache");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    let mut reference = Vec::new();
    for round in 0..N {
        for (k, obj) in objectives.iter().enumerate() {
            let req = JobRequest::from_query(&net, &spec, obj, &opts, None);
            let submitted = client.submit(&req).expect("submit succeeds");
            if round == 0 {
                assert_eq!(
                    submitted.disposition,
                    Disposition::Fresh,
                    "first submission of objective {k} must solve"
                );
            }
            let outcome = client.result(submitted.job).expect("result arrives");
            assert_eq!(outcome.key, submitted.key);
            if round == 0 {
                assert!(!outcome.cache_hit, "first outcome must be a fresh solve");
                reference.push(outcome);
            } else {
                assert_ne!(
                    submitted.disposition,
                    Disposition::Fresh,
                    "resubmission of objective {k} (round {round}) must not re-solve"
                );
                assert!(outcome.cache_hit, "resubmitted outcome must be cache-served");
                let fresh = &reference[k];
                // The cached certificate replays the fresh solve
                // bit-for-bit (modulo the cache_hit flag itself).
                assert_eq!(outcome.status, fresh.status);
                assert_eq!(outcome.upper_bound.to_bits(), fresh.upper_bound.to_bits());
                assert_eq!(
                    outcome.best_value.map(f64::to_bits),
                    fresh.best_value.map(f64::to_bits)
                );
                assert_eq!(outcome.witness, fresh.witness);
                assert_eq!(outcome.stats, fresh.stats);
                assert_eq!(outcome.degradation, fresh.degradation);
            }
        }
    }

    let per_query = objectives.len() as u64;
    let expected_hits = (N as u64 - 1) * per_query;
    // Plain always-on stats.
    let stats = server.stats();
    assert_eq!(stats.get("serve.cache_misses"), per_query);
    assert_eq!(stats.get("serve.cache_hits"), expected_hits);
    assert_eq!(stats.get("serve.jobs_completed"), per_query);
    assert_eq!(stats.get("serve.jobs_submitted"), (N as u64) * per_query);
    // The obs mirror recorded the hits too. The obs registry is
    // process-global (concurrently running tests may add to it), so the
    // mirror is a floor, not an exact match; the per-daemon counters
    // above carry the exact contract.
    assert!(
        certnn_obs::counter("serve.cache_hits").get() >= expected_hits,
        "obs serve.cache_hits mirror missed hits recorded by the plain counter"
    );
    // And the STATS wire frame agrees.
    let wire_stats = client.stats().expect("stats frame");
    let get = |name: &str| {
        wire_stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing {name} in STATS reply"))
    };
    assert_eq!(get("serve.cache_hits"), expected_hits);
    assert_eq!(get("serve.cache_misses"), per_query);
    assert_eq!(get("serve.jobs_completed"), per_query);

    drop(server);
    certnn_obs::set_enabled(false);
    certnn_obs::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_daemon_answers_from_the_persistent_cache() {
    let config = FleetConfig::smoke_test();
    let (data, _) = fleet_dataset(&config).expect("dataset");
    let (net, _) = train_member(&config, member_seed(1), &data).expect("training");
    let spec = left_vehicle_spec();
    let objectives = lateral_mean_objectives(OutputLayout::new(1));
    let opts = config.verifier_options(1);
    let req = JobRequest::from_query(&net, &spec, &objectives[0], &opts, None);

    let dir = temp_dir("restart");
    let fresh = {
        let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
        let mut client = Client::connect(server.addr()).expect("client connects");
        let submitted = client.submit(&req).expect("submit");
        assert_eq!(submitted.disposition, Disposition::Fresh);
        client.result(submitted.job).expect("result")
    };

    // Same directory, new daemon: the certificate must survive.
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon restarts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let submitted = client.submit(&req).expect("submit");
    assert_eq!(
        submitted.disposition,
        Disposition::CacheHit,
        "restarted daemon must answer from the on-disk certificate"
    );
    let cached = client.result(submitted.job).expect("result");
    assert!(cached.cache_hit);
    assert_eq!(cached.status, fresh.status);
    assert_eq!(cached.upper_bound.to_bits(), fresh.upper_bound.to_bits());
    assert_eq!(
        cached.best_value.map(f64::to_bits),
        fresh.best_value.map(f64::to_bits)
    );
    assert_eq!(server.stats().get("serve.jobs_completed"), 0);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
