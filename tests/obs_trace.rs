//! Workspace-level observability checks: the `certnn-obs` layer drained
//! after a real verification run must produce schema-valid JSONL, serial
//! and parallel runs must report the same metric vocabulary, and — the
//! load-bearing property — switching tracing on must not change a single
//! bit of any verdict.
//!
//! The obs layer is process-global (registry, rings, runtime switch), so
//! every test serialises on one mutex and resets the layer around itself.

use certnn_linalg::Interval;
use certnn_nn::network::Network;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Engine, MaxResult, Verifier, VerifierOptions};
use std::sync::{Mutex, MutexGuard};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Serialises obs-global tests and leaves the layer off and empty.
fn guarded() -> MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    certnn_obs::set_enabled(false);
    certnn_obs::reset();
    guard
}

/// A small seeded query with enough unstable neurons to branch.
fn run_query(threads: usize) -> MaxResult {
    let net = Network::relu_mlp(4, &[10, 8], 1, 23).expect("fixture network");
    let spec =
        InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 4]).expect("unit box");
    let obj = LinearObjective::output(0);
    // Auto routes 4-input boxes to the pure MILP engine; force the
    // branch-and-bound path so bab.* spans and counters are exercised.
    Verifier::with_options(VerifierOptions {
        engine: Engine::HybridBab,
        threads,
        ..VerifierOptions::default()
    })
    .maximize(&net, &spec, &obj)
    .expect("query verifies")
}

/// Metric names every observed verification run must produce.
const CORE_METRICS: [&str; 6] = [
    "lp.warm_solves",
    "lp.cold_solves",
    "bab.nodes",
    "bab.incumbent_updates",
    "milp.solves",
    "obs.phase.bound",
];

#[test]
fn traced_verification_drains_schema_valid_jsonl() {
    let _guard = guarded();
    certnn_obs::set_enabled(true);
    let result = run_query(2);
    assert!(result.is_exact(), "fixture query must close");
    let text = certnn_obs::drain_jsonl();
    certnn_obs::set_enabled(false);

    let summary = certnn_obs::jsonl::validate_trace(&text).expect("valid JSONL");
    assert!(summary.spans >= 2, "expected bab.run + worker spans");
    assert!(summary.has_metrics && summary.has_profile);
    for name in CORE_METRICS {
        let found = summary.counter_names.iter().any(|n| n == name)
            || summary.histogram_names.iter().any(|n| n == name);
        assert!(found, "trace metrics missing `{name}`");
    }
    // Every phase the profiler knows about uses the documented names.
    for phase in &summary.phase_names {
        assert!(
            certnn_obs::PHASES.iter().any(|p| p.as_str() == phase),
            "unknown phase `{phase}` in profile record"
        );
    }
}

#[test]
fn serial_and_parallel_runs_emit_identical_metric_names() {
    let _guard = guarded();
    certnn_obs::set_enabled(true);
    run_query(1);
    let serial: Vec<&str> = certnn_obs::metrics_snapshot().names();
    certnn_obs::reset();
    run_query(4);
    let parallel: Vec<&str> = certnn_obs::metrics_snapshot().names();
    certnn_obs::set_enabled(false);

    assert_eq!(serial, parallel, "metric vocabulary differs serial vs parallel");
    for name in CORE_METRICS {
        assert!(serial.contains(&name), "serial run missing `{name}`");
    }
}

#[test]
fn verdicts_are_bit_identical_with_tracing_on_and_off() {
    let _guard = guarded();
    let off = run_query(1);
    certnn_obs::set_enabled(true);
    let on = run_query(1);
    certnn_obs::set_enabled(false);
    certnn_obs::reset();

    assert_eq!(off.status, on.status);
    assert_eq!(
        off.upper_bound.to_bits(),
        on.upper_bound.to_bits(),
        "tracing changed the proven bound"
    );
    assert_eq!(
        off.best_value.map(f64::to_bits),
        on.best_value.map(f64::to_bits),
        "tracing changed the witness value"
    );
    assert_eq!(off.stats.nodes, on.stats.nodes, "tracing changed the search");
}
