//! Cross-crate exactness checks: the MILP verifier against dense grid
//! enumeration on low-dimensional networks, across presolve methods and
//! quantization.

use certnn_linalg::{Interval, Vector};
use certnn_nn::loss::MseLoss;
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, TrainConfig, Trainer};
use certnn_verify::encoder::BoundMethod;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::quant::quantize;
use certnn_verify::verifier::{Verifier, VerifierOptions};

/// Trains a 2-input network on a bumpy target so its maximum is interior.
fn trained_2d_net(seed: u64) -> Network {
    let data: Dataset = (0..400)
        .map(|i| {
            let x = (i % 20) as f64 / 10.0 - 1.0;
            let y = (i / 20) as f64 / 10.0 - 1.0;
            let target = (3.0 * x).sin() + 0.5 * (2.0 * y).cos() - x * y;
            (Vector::from(vec![x, y]), Vector::from(vec![target]))
        })
        .collect();
    let mut net = Network::relu_mlp(2, &[10, 10], 1, seed).expect("valid arch");
    Trainer::new(TrainConfig {
        epochs: 60,
        batch_size: 32,
        ..TrainConfig::default()
    })
    .train(&mut net, &data, &MseLoss::new())
    .expect("training runs");
    net
}

fn grid_max(net: &Network, n: usize) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for i in 0..=n {
        for j in 0..=n {
            let x = Vector::from(vec![
                -1.0 + 2.0 * i as f64 / n as f64,
                -1.0 + 2.0 * j as f64 / n as f64,
            ]);
            best = best.max(net.forward(&x).expect("forward")[0]);
        }
    }
    best
}

#[test]
fn milp_maximum_dominates_and_approximates_dense_grid() {
    let net = trained_2d_net(3);
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 2]).expect("box");
    let obj = LinearObjective::output(0);
    let result = Verifier::new().maximize(&net, &spec, &obj).expect("verifies");
    assert!(result.is_exact());
    let milp_max = result.exact_max().expect("closed");
    let grid = grid_max(&net, 300);
    // MILP must dominate the grid, and a 300×300 grid on a piecewise
    // linear function with modest Lipschitz constant gets very close.
    assert!(milp_max >= grid - 1e-9, "milp {milp_max} < grid {grid}");
    assert!(
        milp_max - grid < 0.05,
        "milp {milp_max} too far above grid {grid}"
    );
}

#[test]
fn presolve_methods_agree_on_trained_networks() {
    let net = trained_2d_net(5);
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 2]).expect("box");
    let obj = LinearObjective::output(0);
    let mut values = Vec::new();
    for method in [BoundMethod::Interval, BoundMethod::Symbolic] {
        let v = Verifier::with_options(VerifierOptions {
            bound_method: method,
            ..VerifierOptions::default()
        })
        .maximize(&net, &spec, &obj)
        .expect("verifies")
        .exact_max()
        .expect("closes");
        values.push(v);
    }
    assert!((values[0] - values[1]).abs() < 1e-5, "{values:?}");
}

#[test]
fn quantized_network_verifies_close_to_original() {
    let net = trained_2d_net(7);
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 2]).expect("box");
    let obj = LinearObjective::output(0);
    let full = Verifier::new()
        .maximize(&net, &spec, &obj)
        .expect("verifies")
        .exact_max()
        .expect("closes");
    let q = quantize(&net, 12).expect("quantize");
    let quant = Verifier::new()
        .maximize(&q.network, &spec, &obj)
        .expect("verifies")
        .exact_max()
        .expect("closes");
    assert!(
        (full - quant).abs() < 0.1,
        "12-bit quantization moved the verified max too far: {full} vs {quant}"
    );
}

#[test]
fn witness_always_reproduces_the_claimed_value() {
    for seed in [1u64, 2, 3] {
        let net = Network::relu_mlp(4, &[8, 8], 2, seed).expect("valid arch");
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 4]).expect("box");
        let obj = LinearObjective::combination(vec![(0, 1.0), (1, -0.5)]);
        let result = Verifier::new().maximize(&net, &spec, &obj).expect("verifies");
        let w = result.witness.expect("witness");
        let v = result.best_value.expect("value");
        let out = net.forward(&w).expect("forward");
        assert!((obj.eval(&out) - v).abs() < 1e-9);
    }
}
