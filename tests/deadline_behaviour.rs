//! Integration tests for deadline propagation and the degradation ladder:
//! a verification budget must be honoured promptly, the expiry must be
//! reported honestly as `TimedOut`, and the partial bound handed back must
//! stay sound — between the best reachable value and the interval-bound
//! ceiling of the sound fallback.
//!
//! These tests run fault-free (the chaos suites live in the crates and
//! need `--features fault-inject`); deadlines alone must already degrade
//! gracefully.

use certnn_bench::table2::{run_table2_under, Table2Config};
use certnn_core::fleet::{run_fleet_under, FleetConfig};
use certnn_linalg::{Interval, Vector};
use certnn_milp::MilpStatus;
use certnn_nn::network::Network;
use certnn_verify::bounds::interval_bounds;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Engine, Verifier, VerifierOptions};
use certnn_verify::{Deadline, Degradation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// A sampled lower bound on the true maximum of `output[0]` over the unit
/// box: any sound upper bound must dominate it.
fn sampled_floor(net: &Network, n: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(11);
    let mut best = f64::NEG_INFINITY;
    for _ in 0..n {
        let x: Vector = (0..net.inputs()).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        best = best.max(net.forward(&x).expect("forward pass")[0]);
    }
    best
}

#[test]
fn timed_out_bound_sits_between_reachable_floor_and_interval_ceiling() {
    let net = Network::relu_mlp(4, &[12, 12], 1, 91).expect("fixture network");
    let input_box = vec![Interval::new(-1.0, 1.0); 4];
    let spec = InputSpec::from_box(input_box.clone()).expect("unit box");
    let obj = LinearObjective::output(0);
    let floor = sampled_floor(&net, 500);
    let ceiling = interval_bounds(&net, &input_box).expect("interval pass").output_bounds()[0].hi();
    assert!(floor <= ceiling, "sampler disagrees with interval arithmetic");

    // An already-cancelled ambient deadline: the search gets no budget at
    // all, so the answer must be the sound fallback — never tighter than
    // the truth (>= floor) and never looser than plain interval
    // arithmetic allows (<= ceiling).
    let d = Deadline::cancellable();
    d.cancel();
    for engine in [Engine::HybridBab, Engine::Milp] {
        let v = Verifier::with_options(VerifierOptions {
            engine,
            ..VerifierOptions::default()
        })
        .with_deadline(d.clone());
        let t0 = Instant::now();
        let r = v.maximize(&net, &spec, &obj).expect("degrade, not crash");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "cancelled {engine:?} query did not return promptly"
        );
        assert_eq!(r.status, MilpStatus::TimeLimit, "engine {engine:?}");
        assert_eq!(r.stats.degradation, Degradation::TimedOut, "engine {engine:?}");
        assert!(
            r.upper_bound >= floor - 1e-6,
            "{engine:?}: timed-out bound {} dips below reachable value {floor}",
            r.upper_bound
        );
        assert!(
            r.upper_bound <= ceiling + 1e-6,
            "{engine:?}: timed-out bound {} looser than interval ceiling {ceiling}",
            r.upper_bound
        );
    }
}

#[test]
fn table2_respects_its_time_limit_and_reports_timed_out() {
    // One width big enough (4 hidden layers of 8) that an exact solve
    // takes far longer than the budget below, so the deadline must fire.
    let budget = Duration::from_millis(250);
    let config = Table2Config {
        widths: vec![8],
        time_limit: budget,
        ..Table2Config::smoke_test()
    };
    let result = run_table2_under(&config, Deadline::none()).expect("degrade, not crash");
    assert_eq!(result.rows.len(), 1);
    let row = &result.rows[0];
    assert_eq!(
        row.degradation,
        Degradation::TimedOut,
        "{}: a {budget:?} budget on this width must expire",
        row.label
    );
    // The query was cut off per pivot batch: its wall time stays within
    // 2x the budget rather than running to completion.
    assert!(
        row.time < 2 * budget,
        "{}: verification ran {:?} against a {budget:?} budget",
        row.label,
        row.time
    );
    // The abandoned search still folds into a finite sound bound, and an
    // expired query must not claim an exact maximum.
    assert!(row.upper_bound.is_finite(), "{}: no usable bound", row.label);
    assert!(row.max_lateral.is_none(), "{}: timed out yet closed", row.label);
    // The degraded row is flagged in the human-readable table too.
    assert!(result.to_table().contains("timed_out"));
}

#[test]
fn fleet_under_a_cancelled_ambient_deadline_degrades_every_member() {
    let config = FleetConfig::smoke_test();
    let d = Deadline::cancellable();
    d.cancel();
    let result = run_fleet_under(&config, d).expect("degrade, not crash");
    assert_eq!(result.members.len(), config.fleet_size);
    for m in &result.members {
        assert_eq!(
            m.degradation,
            Degradation::TimedOut,
            "member {}: cancelled run must be tagged",
            m.seed
        );
        assert!(
            m.verified_max.is_none() && m.safe.is_none(),
            "member {}: no exact verdict can exist without budget",
            m.seed
        );
    }
    // The mode column of the fleet table surfaces the degradation.
    assert!(result.to_table().contains("timed_out"));
}
