//! Integration: maximum-resilience queries against the full feature-space
//! scenario, across both verification engines.

use certnn_core::scenario::left_vehicle_spec;
use certnn_nn::gmm::{ActionDim, OutputLayout};
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_verify::property::LinearObjective;
use certnn_verify::robustness::{maximum_resilience, verify_robust};
use certnn_verify::verifier::{Engine, Verifier, VerifierOptions};

fn centre_point(spec: &certnn_verify::property::InputSpec) -> certnn_linalg::Vector {
    // Midpoint of the scenario box is always a member.
    spec.bounds().iter().map(|iv| iv.midpoint()).collect()
}

#[test]
fn resilience_radius_is_certified_and_engine_independent() {
    let layout = OutputLayout::new(1);
    let net = Network::relu_mlp(FEATURE_COUNT, &[8, 8], layout.output_len(), 31)
        .expect("valid architecture");
    let objective = LinearObjective::output(layout.mean(0, ActionDim::LateralVelocity));
    let domain = left_vehicle_spec();
    let centre = centre_point(&domain);
    let delta = 0.4;

    let bab = Verifier::with_options(VerifierOptions {
        engine: Engine::HybridBab,
        ..VerifierOptions::default()
    });
    let res = maximum_resilience(&bab, &net, &domain, &centre, &objective, delta, 0.3, 0.02)
        .expect("search runs");

    // The certified radius must re-verify as robust with both engines.
    if res.robust_radius > 0.0 {
        for engine in [Engine::HybridBab, Engine::Milp] {
            let v = Verifier::with_options(VerifierOptions {
                engine,
                ..VerifierOptions::default()
            });
            let verdict = verify_robust(
                &v,
                &net,
                &domain,
                &centre,
                res.robust_radius,
                &objective,
                delta,
            )
            .expect("verification runs");
            assert!(
                verdict.is_robust(),
                "{engine:?} disagrees at certified radius {}",
                res.robust_radius
            );
        }
    }
    // And the first fragile radius must be fragile again.
    if let Some(f) = res.fragile_radius {
        let verdict = verify_robust(&bab, &net, &domain, &centre, f, &objective, delta)
            .expect("verification runs");
        assert!(!verdict.is_robust());
    }
}

#[test]
fn fragile_witness_stays_inside_the_perturbation_ball() {
    use certnn_verify::robustness::RobustnessVerdict;
    let layout = OutputLayout::new(1);
    let net = Network::relu_mlp(FEATURE_COUNT, &[10], layout.output_len(), 5)
        .expect("valid architecture");
    let objective = LinearObjective::output(layout.mean(0, ActionDim::LateralVelocity));
    let domain = left_vehicle_spec();
    let centre = centre_point(&domain);
    // A tiny delta is almost surely violated at a generous radius.
    let verdict = verify_robust(
        &Verifier::new(),
        &net,
        &domain,
        &centre,
        0.5,
        &objective,
        1e-4,
    )
    .expect("verification runs");
    if let RobustnessVerdict::Fragile { witness, deviation } = verdict {
        assert!(deviation.abs() > 1e-4);
        for (i, (&w, &c)) in witness
            .as_slice()
            .iter()
            .zip(centre.as_slice())
            .enumerate()
        {
            assert!(
                (w - c).abs() <= 0.5 + 1e-6,
                "witness coordinate {i} escaped the ball: {w} vs centre {c}"
            );
        }
        assert!(domain.contains(&witness, 1e-6));
    }
}
