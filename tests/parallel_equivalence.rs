//! Parallel-vs-serial equivalence of the verification engines.
//!
//! The parallel branch-and-bound (`BabOptions::threads`) must be a pure
//! performance knob: any thread count returns the same verdict within
//! the engine's `abs_gap` contract, and the query-parallel experiment
//! runners (`run_fleet`, `run_table2`) must produce identical tables at
//! any thread count.

use certnn_bench::table2::{run_table2, Table2Config};
use certnn_core::fleet::{run_fleet, FleetConfig};
use certnn_core::scenario::left_vehicle_spec;
use certnn_datacheck::highway::highway_validator;
use certnn_linalg::Interval;
use certnn_milp::MilpStatus;
use certnn_nn::gmm::OutputLayout;
use certnn_nn::loss::GmmNll;
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, TrainConfig, Trainer};
use certnn_sim::features::FEATURE_COUNT;
use certnn_sim::scenario::{generate_dataset, ScenarioConfig};
use certnn_verify::bab::{bab_maximize, BabOptions};
use certnn_verify::property::{InputSpec, LinearObjective};
use proptest::prelude::*;

fn unit_spec(n: usize) -> InputSpec {
    InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
}

/// Trains a smoke-scale motion predictor on sanitized scenario data —
/// the same pipeline the experiments verify, scaled to seconds.
fn trained_smoke_predictor() -> (Network, OutputLayout) {
    let scenario = ScenarioConfig {
        vehicles: 12,
        episode_seconds: 8.0,
        warmup_seconds: 1.0,
        sample_every: 10,
        seeds: vec![1],
        exclude_risky: false,
        ..ScenarioConfig::default()
    };
    let mut raw = generate_dataset(&scenario).unwrap();
    highway_validator(1.0).sanitize(&mut raw);
    let data = Dataset::from_samples(raw);
    let layout = OutputLayout::new(1);
    let loss = GmmNll::new(1);
    let mut net = Network::relu_mlp(FEATURE_COUNT, &[6, 6], layout.output_len(), 42).unwrap();
    Trainer::new(TrainConfig {
        epochs: 5,
        batch_size: 64,
        seed: 42,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    })
    .train(&mut net, &data, &loss)
    .unwrap();
    (net, layout)
}

#[test]
fn trained_net_verifies_identically_at_one_and_four_threads() {
    use certnn_nn::gmm::ActionDim;
    let (net, layout) = trained_smoke_predictor();
    let spec = left_vehicle_spec();
    let obj = LinearObjective::output(layout.mean(0, ActionDim::LateralVelocity));
    let serial = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
    assert_eq!(serial.status, MilpStatus::Optimal);
    let opts = BabOptions {
        threads: 4,
        ..BabOptions::default()
    };
    let par = bab_maximize(&net, &spec, &obj, &opts).unwrap();
    assert_eq!(par.status, MilpStatus::Optimal);
    assert_eq!(par.threads_used, 4);
    let (a, b) = (serial.best_value.unwrap(), par.best_value.unwrap());
    assert!(
        (a - b).abs() <= 2.0 * opts.abs_gap,
        "serial best {a} vs 4-thread best {b}"
    );
    assert!(
        (serial.upper_bound - par.upper_bound).abs() <= 2.0 * opts.abs_gap,
        "serial upper {} vs 4-thread upper {}",
        serial.upper_bound,
        par.upper_bound
    );
    // Each run's witness is a genuine input achieving its value.
    let w = par.witness.unwrap();
    assert!(spec.contains(&w, 1e-6));
    assert!((net.forward(&w).unwrap()[obj.terms[0].0] - b).abs() < 1e-9);
}

#[test]
fn fleet_tables_are_identical_at_any_thread_count() {
    let mut config = FleetConfig::smoke_test();
    config.threads = 1;
    let serial = run_fleet(&config).unwrap();
    config.threads = 2;
    let parallel = run_fleet(&config).unwrap();
    assert_eq!(serial.members.len(), parallel.members.len());
    for (a, b) in serial.members.iter().zip(&parallel.members) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits());
        assert_eq!(a.verified_max, b.verified_max);
        assert_eq!(a.safe, b.safe);
        assert_eq!(a.nodes, b.nodes);
    }
}

#[test]
fn table2_rows_are_identical_at_any_thread_count() {
    let mut config = Table2Config::smoke_test();
    config.threads = 1;
    let serial = run_table2(&config).unwrap();
    config.threads = 2;
    let parallel = run_table2(&config).unwrap();
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.max_lateral, b.max_lateral);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.binaries, b.binaries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The parallel engine's proven bound can never undercut any value
    /// the serial engine actually achieved with a real input (and vice
    /// versa) — a soundness property, not just agreement.
    #[test]
    fn parallel_bound_dominates_serial_incumbent(
        seed in 0u64..64,
        threads in 2usize..5,
        wide in proptest::prelude::any::<bool>(),
    ) {
        let hidden: &[usize] = if wide { &[10, 6] } else { &[6, 6] };
        let net = Network::relu_mlp(3, hidden, 1, seed).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let serial = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
        let par = bab_maximize(
            &net,
            &spec,
            &obj,
            &BabOptions { threads, ..BabOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(serial.status, MilpStatus::Optimal);
        prop_assert_eq!(par.status, MilpStatus::Optimal);
        let s_best = serial.best_value.unwrap();
        let p_best = par.best_value.unwrap();
        // Sound bounds dominate every genuine incumbent, whichever
        // engine found it.
        prop_assert!(par.upper_bound >= s_best - BabOptions::default().abs_gap);
        prop_assert!(serial.upper_bound >= p_best - BabOptions::default().abs_gap);
        // And the two optima agree within the gap contract.
        prop_assert!((s_best - p_best).abs() <= 2.0 * BabOptions::default().abs_gap);
    }
}
