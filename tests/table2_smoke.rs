//! Integration smoke test of the Table II experiment harness: trains and
//! verifies two small `I4×N` predictors end to end.

use certnn_bench::table2::{run_table2, Table2Config};

#[test]
fn table2_smoke_produces_paper_shaped_output() {
    let result = run_table2(&Table2Config::smoke_test()).expect("experiment runs");
    assert_eq!(result.rows.len(), 2);
    assert!(result.training_samples > 50);

    for row in &result.rows {
        let max = row.max_lateral.expect("tiny networks close");
        // A predictor trained on sanitized data suggests physically
        // plausible lateral velocities even in the worst case.
        assert!(max.abs() < 20.0, "{}: absurd verified max {max}", row.label);
        assert!(row.binaries > 0, "some neurons must be unstable");
        assert!(row.time.as_nanos() > 0);
    }

    // The wider network encodes with at least as many binaries.
    assert!(
        result.rows[1].binaries >= result.rows[0].binaries,
        "binaries should not shrink with width: {:?}",
        result
            .rows
            .iter()
            .map(|r| (r.label.clone(), r.binaries))
            .collect::<Vec<_>>()
    );

    // The decision query ran on the largest network.
    assert_eq!(result.proofs.last().unwrap().label, "I4x6");
    let table = result.to_table();
    assert!(table.contains("I4x4") && table.contains("I4x6"));
    assert!(table.contains("paper"));
}
