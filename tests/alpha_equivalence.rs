//! α tuning and LP-skip gating must be pure performance knobs.
//!
//! `alpha_iters = 0` plus `lp_skip = false` reproduces the legacy
//! fixed-slope, always-LP search; the tuned defaults may reshape the
//! branch-and-bound tree and elide LP relaxations, but verdicts, optima
//! (within the `abs_gap` contract) and degradation tags may not move —
//! on direct verifier queries and on the end-to-end Table II smoke
//! pipeline.

use certnn_bench::table2::{run_table2, Table2Config};
use certnn_nn::network::Network;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Verifier, VerifierOptions};
use certnn_linalg::Interval;

fn unit_spec(n: usize) -> InputSpec {
    InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
}

fn options(alpha_iters: usize, lp_skip: bool) -> VerifierOptions {
    VerifierOptions {
        alpha_iters,
        lp_skip,
        ..VerifierOptions::default()
    }
}

#[test]
fn maximize_agrees_across_alpha_and_skip_settings() {
    let abs_gap = VerifierOptions::default().abs_gap;
    for seed in [3u64, 11, 29] {
        let net = Network::relu_mlp(4, &[10, 10], 1, seed).unwrap();
        let spec = unit_spec(4);
        let obj = LinearObjective::output(0);
        let legacy = Verifier::with_options(options(0, false))
            .maximize(&net, &spec, &obj)
            .unwrap();
        let reference = legacy.exact_max().unwrap();
        for (iters, skip) in [(0, true), (1, false), (1, true), (3, true)] {
            let r = Verifier::with_options(options(iters, skip))
                .maximize(&net, &spec, &obj)
                .unwrap();
            let got = r.exact_max().unwrap();
            assert!(
                (got - reference).abs() <= 2.0 * abs_gap,
                "seed {seed}, alpha_iters {iters}, lp_skip {skip}: \
                 {got} vs legacy {reference}"
            );
            assert_eq!(r.stats.degradation, legacy.stats.degradation);
        }
    }
}

#[test]
fn prove_below_verdicts_identical_across_settings() {
    for seed in [5u64, 17] {
        let net = Network::relu_mlp(3, &[8, 8], 1, seed).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        // Bracket the optimum so both verdict polarities are exercised.
        let max = Verifier::with_options(options(0, false))
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        for threshold in [max + 0.1, max - 0.1] {
            let (legacy, _) = Verifier::with_options(options(0, false))
                .prove_below(&net, &spec, &obj, threshold)
                .unwrap();
            for (iters, skip) in [(1, false), (1, true), (3, true)] {
                let (tuned, _) = Verifier::with_options(options(iters, skip))
                    .prove_below(&net, &spec, &obj, threshold)
                    .unwrap();
                assert_eq!(
                    legacy.holds(),
                    tuned.holds(),
                    "seed {seed}, threshold {threshold}, alpha_iters {iters}, \
                     lp_skip {skip}: verdict drift"
                );
            }
        }
    }
}

/// End-to-end determinism contract behind `./ci --bench-smoke`'s alpha
/// leg: the Table II smoke pipeline must return bit-identical verdicts
/// with tuning off and at the tuned defaults, and the tuned run must
/// actually exercise the skip gate.
#[test]
fn table2_smoke_verdicts_identical_with_and_without_alpha() {
    let mut config = Table2Config::smoke_test();
    config.threads = 1;
    let tuned = run_table2(&config).unwrap();
    config.alpha_iters = 0;
    config.lp_skip = false;
    let legacy = run_table2(&config).unwrap();

    // Same rounding the JSON writer applies: verdicts must agree to 12
    // significant digits (ulp-level search-path noise is tolerated, the
    // `abs_gap = 1e-6` accuracy contract is not).
    let round = |v: f64| -> f64 { format!("{v:.11e}").parse().unwrap() };
    assert_eq!(tuned.rows.len(), legacy.rows.len());
    for (t, l) in tuned.rows.iter().zip(&legacy.rows) {
        assert_eq!(t.label, l.label);
        let (tv, lv) = (t.max_lateral.unwrap(), l.max_lateral.unwrap());
        assert_eq!(
            round(tv).to_bits(),
            round(lv).to_bits(),
            "{}: tuned {tv} vs legacy {lv}",
            t.label
        );
        assert_eq!(t.degradation, l.degradation);
        // Legacy path never consults the gate.
        assert_eq!(l.lp_skipped, 0, "{}: gate ticked while disabled", l.label);
    }
    // The tuned defaults must actually elide LPs somewhere in the smoke
    // set — otherwise the gate is dead code at its shipped settings.
    let skipped: usize = tuned.rows.iter().map(|r| r.lp_skipped).sum();
    assert!(skipped > 0, "lp-skip gate never fired on the smoke config");
    let solves = |rows: &[certnn_bench::table2::Table2Row]| -> usize {
        rows.iter().map(|r| r.warm_solves + r.cold_solves).sum()
    };
    assert!(
        solves(&tuned.rows) < solves(&legacy.rows),
        "tuned defaults did not reduce LP solves: {} vs {}",
        solves(&tuned.rows),
        solves(&legacy.rows)
    );
}
