//! Warm-started LP re-solves must be a pure performance knob.
//!
//! The dual-simplex warm start (`Simplex::solve_warm`) re-solves a model
//! under tightened bounds from the parent's optimal basis. Its contract
//! is *verdict preservation*: the same status and (for optimal solves)
//! the same objective as a cold solve, to numerical tolerance — on
//! random LPs and on the end-to-end Table II pipeline, at any thread
//! count.

use certnn_bench::table2::{run_table2, Table2Config};
use certnn_lp::{LpModel, LpStatus, RowKind, Sense, Simplex};
use proptest::prelude::*;

fn small_coeff() -> impl Strategy<Value = f64> {
    // Integer quarters keep the arithmetic tame so the 1e-9 objective
    // comparison below is about pivoting, not float noise.
    (-12i32..=12).prop_map(|v| v as f64 / 4.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solve a random LP cold, snapshot its basis, tighten the bounds
    /// (the branch-and-bound child-node pattern), and re-solve both ways:
    /// statuses must match exactly and optimal objectives to 1e-9.
    #[test]
    fn warm_resolve_matches_cold_on_randomized_lps(
        n_vars in 2usize..5,
        n_rows in 1usize..4,
        c in prop::collection::vec(small_coeff(), 4),
        a in prop::collection::vec(small_coeff(), 12),
        b in prop::collection::vec((-4i32..=10).prop_map(|v| v as f64 / 2.0), 3),
        lo in prop::collection::vec((-4i32..=0).prop_map(|v| v as f64), 4),
        span in prop::collection::vec((1i32..=6).prop_map(|v| v as f64), 4),
        shrink_lo in prop::collection::vec(0u32..=4, 4),
        shrink_hi in prop::collection::vec(0u32..=4, 4),
    ) {
        let mut m = LpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..n_vars)
            .map(|i| m.add_var(&format!("x{i}"), lo[i], lo[i] + span[i]))
            .collect();
        m.set_objective(
            &vars.iter().enumerate().map(|(i, &v)| (v, c[i])).collect::<Vec<_>>(),
        );
        for r in 0..n_rows {
            let coeffs: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, a[r * 4 + i]))
                .collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, b[r]).unwrap();
        }
        let simplex = Simplex::new();
        let parent_bounds: Vec<(f64, f64)> =
            (0..n_vars).map(|i| (lo[i], lo[i] + span[i])).collect();
        let parent = simplex.solve_snapshot(&m, &parent_bounds).unwrap();
        prop_assume!(parent.solution.status == LpStatus::Optimal);
        let Some(warm) = parent.warm else {
            // Artificial variables left in the basis: nothing to warm from.
            return Ok(());
        };

        // Tighten each variable's range by up to 40% per side, as a
        // branching step would.
        let child_bounds: Vec<(f64, f64)> = (0..n_vars)
            .map(|i| {
                let (plo, phi) = parent_bounds[i];
                let w = phi - plo;
                (
                    plo + w * 0.1 * f64::from(shrink_lo[i]),
                    phi - w * 0.1 * f64::from(shrink_hi[i]),
                )
            })
            .map(|(a, b)| (a, b.max(a)))
            .collect();

        let cold = simplex.solve_with_bounds(&m, &child_bounds).unwrap();
        let warm_solve = simplex.solve_warm(&m, &child_bounds, &warm).unwrap();
        prop_assert_eq!(
            cold.status,
            warm_solve.solution.status,
            "cold {:?} vs warm {:?}",
            cold.status,
            warm_solve.solution.status
        );
        if cold.status == LpStatus::Optimal {
            let (co, wo) = (cold.objective, warm_solve.solution.objective);
            prop_assert!(
                (co - wo).abs() <= 1e-9 * (1.0 + co.abs()),
                "cold objective {co} vs warm objective {wo}"
            );
            // The warm answer must itself be feasible for the child.
            prop_assert!(m.is_feasible(&warm_solve.solution.x, 1e-6));
            for (x, &(blo, bhi)) in warm_solve.solution.x.iter().zip(&child_bounds) {
                prop_assert!(*x >= blo - 1e-7 && *x <= bhi + 1e-7);
            }
        }
    }
}

/// End-to-end: the full Table II smoke pipeline must produce bit-identical
/// rows across thread counts with warm starts on, and verdicts within the
/// `abs_gap` contract against the cold path.
#[test]
fn table2_smoke_is_thread_invariant_and_warm_cold_agree() {
    let mut config = Table2Config::smoke_test();
    config.threads = 1;
    let warm1 = run_table2(&config).unwrap();
    config.threads = 4;
    let warm4 = run_table2(&config).unwrap();
    config.threads = 1;
    config.warm_start = false;
    let cold1 = run_table2(&config).unwrap();

    // Bit-identical tables across thread counts (warm path).
    assert_eq!(warm1.rows.len(), warm4.rows.len());
    for (a, b) in warm1.rows.iter().zip(&warm4.rows) {
        assert_eq!(a.label, b.label);
        let (va, vb) = (a.max_lateral.unwrap(), b.max_lateral.unwrap());
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{}: 1-thread {va} vs 4-thread {vb}",
            a.label
        );
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.binaries, b.binaries);
    }

    // Warm vs cold: identical verdicts, values within the gap contract.
    // (Node counts may differ — degenerate LPs admit multiple optimal
    // vertices, so branching orders can diverge — but answers may not.)
    let abs_gap = 1e-6;
    assert_eq!(warm1.rows.len(), cold1.rows.len());
    for (w, c) in warm1.rows.iter().zip(&cold1.rows) {
        assert_eq!(w.label, c.label);
        assert_eq!(w.max_lateral.is_some(), c.max_lateral.is_some());
        let (wv, cv) = (w.max_lateral.unwrap(), c.max_lateral.unwrap());
        assert!(
            (wv - cv).abs() <= 2.0 * abs_gap,
            "{}: warm {wv} vs cold {cv}",
            w.label
        );
        assert!(
            (w.upper_bound - c.upper_bound).abs() <= 2.0 * abs_gap,
            "{}: warm bound {} vs cold bound {}",
            w.label,
            w.upper_bound,
            c.upper_bound
        );
    }
    // The cold run by construction warm-starts nothing.
    for c in &cold1.rows {
        assert_eq!(c.warm_solves, 0, "{}: cold run reported warm solves", c.label);
        assert_eq!(c.pivots_saved, 0);
    }
    // The warm run actually exercises the warm path on these networks.
    let total_warm: usize = warm1.rows.iter().map(|r| r.warm_solves).sum();
    assert!(total_warm > 0, "warm path never taken in the smoke pipeline");
}
