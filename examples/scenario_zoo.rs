//! Tour of the named traffic presets, with live metrics.
//!
//! ```text
//! cargo run --release --example scenario_zoo
//! ```
//!
//! Each preset engineers a specific situation — a cut-in, a slow leader,
//! a platoon on the left — and the run prints the scene before/after
//! plus the traffic metrics the simulator's acceptance tests check.

use certnn_sim::metrics::observe;
use certnn_sim::presets;
use certnn_sim::render::render_scene;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let zoo: Vec<(&str, certnn_sim::simulation::Simulation)> = vec![
        ("cut-in from the right", presets::cut_in()?),
        ("slow leader (overtaking trigger)", presets::slow_leader()?),
        ("platoon abreast on the left", presets::left_platoon()?),
        ("dense congestion", presets::congestion(5)?),
    ];
    for (name, mut sim) in zoo {
        println!("=== {name} ===");
        println!("{}", render_scene(&sim, 60.0));
        let metrics = observe(&mut sim, 300); // 30 simulated seconds
        println!("after 30 s:");
        println!("{}", render_scene(&sim, 60.0));
        println!("{metrics}\n");
    }
    Ok(())
}
