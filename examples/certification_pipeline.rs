//! The case study end to end: certify an `I4×N` highway motion predictor.
//!
//! ```text
//! cargo run --release --example certification_pipeline -- [width]
//! ```
//!
//! `width` defaults to 6 (`I4×6`, comfortably verifiable on one core —
//! the paper's `I4×10` point takes a commercial solver); larger widths
//! show the verification-time growth of Table II. The run covers every
//! pillar:
//!
//! * validity — the raw simulator data is audited and sanitized,
//! * understandability — neurons are traced to input features and ReLU
//!   branch coverage is measured,
//! * correctness — the safety property is *formally verified*, not tested.

use certnn_core::pillars::render_matrix;
use certnn_core::pipeline::{CertificationPipeline, PipelineConfig};
use certnn_core::report::render_dossier;
use certnn_sim::features::FeatureExtractor;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let width: usize = std::env::args()
        .nth(1)
        .map(|w| w.parse())
        .transpose()?
        .unwrap_or(6);

    println!("{}", render_matrix());
    let config = PipelineConfig::case_study(width);
    println!("certifying an I4x{width} motion predictor (this trains + verifies)...\n");
    let report = CertificationPipeline::new(config).run()?;
    println!("{}", report.summary());

    // Understandability detail: the strongest neuron→feature links.
    let names = FeatureExtractor::names();
    println!("strongest neuron-to-feature links (first hidden layer):");
    let mut traces: Vec<_> = report.traceability.traces.iter().collect();
    traces.sort_by(|a, b| {
        let sa = a.dominant().map(|(_, s)| s.abs()).unwrap_or(0.0);
        let sb = b.dominant().map(|(_, s)| s.abs()).unwrap_or(0.0);
        sb.partial_cmp(&sa).expect("finite scores")
    });
    for t in traces.iter().take(5) {
        if let Some((f, score)) = t.dominant() {
            println!("  {} ↔ {}  (correlation {score:+.3})", t.neuron, names[f]);
        }
    }

    // Write the full certification dossier.
    let dossier = render_dossier(&report);
    let path = "target/certification_dossier.md";
    std::fs::create_dir_all("target")?;
    std::fs::write(path, dossier)?;
    println!("\nfull dossier written to {path}");
    Ok(())
}
