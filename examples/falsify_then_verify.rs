//! The attack-then-verify architecture: cheap gradient falsification
//! first, complete verification only when the attack fails.
//!
//! ```text
//! cargo run --release --example falsify_then_verify
//! ```
//!
//! This also demonstrates the paper's testing-vs-formal-analysis gap in
//! one run: the attack is a (clever) test generator, but only the
//! verifier can *prove* the bound.

use certnn_core::scenario::left_vehicle_spec;
use certnn_nn::gmm::{ActionDim, OutputLayout};
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_verify::attack::Falsifier;
use certnn_verify::property::LinearObjective;
use certnn_verify::verifier::{Verdict, Verifier};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let layout = OutputLayout::new(1);
    let net = Network::relu_mlp(FEATURE_COUNT, &[10, 10], layout.output_len(), 77)?;
    let spec = left_vehicle_spec();
    let objective = LinearObjective::output(layout.mean(0, ActionDim::LateralVelocity));

    // Stage 1: falsify.
    let t = Instant::now();
    let attack = Falsifier::new().attack(&net, &spec, &objective)?;
    println!(
        "attack: best lateral-velocity mean {:.4} m/s in {:.1?} ({} evaluations)",
        attack.best_value,
        t.elapsed(),
        attack.evaluations
    );

    for threshold in [attack.best_value - 0.1, attack.best_value + 0.5] {
        println!("\nproperty: lateral-velocity mean ≤ {threshold:.4} m/s");
        if attack.refutes(threshold) {
            println!("  REFUTED by the attack alone — no verifier run needed");
            continue;
        }
        println!("  attack failed to refute; escalating to complete verification...");
        let t = Instant::now();
        let (verdict, stats) = Verifier::new().prove_below(&net, &spec, &objective, threshold)?;
        match verdict {
            Verdict::Holds { bound } => println!(
                "  PROVED (bound {bound:.4}) in {:.1?} — something no amount of testing gives",
                t.elapsed()
            ),
            Verdict::Violated { value, .. } => println!(
                "  VIOLATED at {value:.4} — the verifier found what the attack missed ({} nodes)",
                stats.nodes
            ),
            Verdict::Unknown { upper_bound, .. } => {
                println!("  undecided within budget (bound {upper_bound:.4})")
            }
        }
    }
    Ok(())
}
