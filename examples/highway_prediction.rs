//! Figure 1 live: simulate a highway, query the trained motion predictor,
//! and render both panels of the paper's figure.
//!
//! ```text
//! cargo run --release --example highway_prediction
//! ```
//!
//! Left panel: top-down ASCII view of the traffic around the ego vehicle
//! (`E`). Right panel: the Gaussian-mixture density the predictor outputs
//! over (lateral velocity × longitudinal acceleration) — the "motion
//! suggested by the neural network".

use certnn_bench::figure1::{run_figure1, Figure1Config};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = Figure1Config {
        epochs: 12,
        ..Figure1Config::default()
    };
    println!(
        "training a {} component mixture predictor ({} epochs) and simulating...\n",
        config.mixture_components, config.epochs
    );
    let fig = run_figure1(&config)?;
    println!("{}", fig.to_text());

    let dominant = fig.gmm.dominant();
    let direction = if dominant.mean[0] > 0.3 {
        "switch towards the LEFT lane"
    } else if dominant.mean[0] < -0.3 {
        "switch towards the RIGHT lane"
    } else {
        "keep the current lane"
    };
    let accel = if dominant.mean[1] > 0.3 {
        "accelerate"
    } else if dominant.mean[1] < -0.3 {
        "decelerate"
    } else {
        "hold speed"
    };
    println!("dominant suggestion: {direction}, {accel}");
    Ok(())
}
