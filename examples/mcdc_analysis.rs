//! The paper's MC/DC argument, made concrete (Sec. II, "testing for
//! correctness claims").
//!
//! ```text
//! cargo run --release --example mcdc_analysis
//! ```
//!
//! * A `tanh` network has no branches: a single test discharges all
//!   MC/DC obligations.
//! * A ReLU network has one branch per neuron: obligations grow linearly
//!   but the reachable branch-pattern space grows exponentially, so
//!   pattern-complete testing is intractable — the reason the paper
//!   switches to formal analysis.

use certnn_linalg::{Matrix, Vector};
use certnn_nn::activation::Activation;
use certnn_nn::layer::DenseLayer;
use certnn_nn::network::Network;
use certnn_trace::mcdc::{obligation_count, pattern_space_size, BranchCoverage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The tanh case: one test suffices.
    let tanh_net = Network::new(vec![DenseLayer::new(
        Matrix::identity(4),
        Vector::zeros(4),
        Activation::Tanh,
    )?])?;
    let one_test = vec![Vector::from(vec![0.1, 0.2, 0.3, 0.4])];
    let cov = BranchCoverage::measure(&tanh_net, &one_test)?;
    println!(
        "tanh network: {} MC/DC obligation(s); coverage after ONE test: {:.0}%",
        obligation_count(&tanh_net),
        100.0 * cov.coverage()
    );

    // The ReLU case across the paper's architectures.
    println!("\nReLU networks (84 inputs, 4 hidden layers of N):");
    println!(
        "{:>6} {:>12} {:>18} {:>26}",
        "N", "obligations", "pattern space", "coverage w/ 500 random tests"
    );
    let mut rng = StdRng::seed_from_u64(0);
    let suite: Vec<Vector> = (0..500)
        .map(|_| (0..84).map(|_| rng.gen_range(-1.0..1.3)).collect())
        .collect();
    for n in [10usize, 20, 25, 40, 50, 60] {
        let net = Network::relu_mlp(84, &[n; 4], 5, 7)?;
        let cov = BranchCoverage::measure(&net, &suite)?;
        println!(
            "{:>6} {:>12} {:>17.0}ᵉ {:>19.1}% ({} patterns seen)",
            n,
            obligation_count(&net),
            pattern_space_size(&net).log2(),
            100.0 * cov.coverage(),
            cov.distinct_patterns,
        );
    }
    println!(
        "\n(pattern space shown as log2: I4x60 has 2^240 branch patterns — \
         exhaustive decision coverage is intractable, hence formal verification.)"
    );
    Ok(())
}
