//! Specification validity in action: audit raw driving data, watch the
//! validator catch planted violations, sanitize, and measure scenario
//! coverage (the paper's Sec. II (C) pillar as a workflow).
//!
//! ```text
//! cargo run --release --example data_audit
//! ```

use certnn_datacheck::coverage::{highway_cells, measure_coverage};
use certnn_datacheck::dataset_rule::{audit_dataset, standard_dataset_rules};
use certnn_datacheck::highway::{highway_validator, left_present_feature};
use certnn_linalg::Vector;
use certnn_sim::features::FEATURE_COUNT;
use certnn_sim::scenario::{generate_dataset, ScenarioConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Raw, uncurated simulator data.
    let config = ScenarioConfig {
        vehicles: 16,
        episode_seconds: 30.0,
        exclude_risky: false,
        ..ScenarioConfig::default()
    };
    let mut data = generate_dataset(&config)?;
    println!("generated {} raw samples", data.len());

    // Plant the kind of defects a real data pipeline produces.
    let mut risky = Vector::zeros(FEATURE_COUNT);
    risky[left_present_feature()] = 1.0;
    data.push((risky, Vector::from(vec![2.5, 0.0]))); // risky left command
    data.push((Vector::zeros(FEATURE_COUNT), Vector::from(vec![f64::NAN, 0.0])));
    let dup = data[0].clone();
    data.push(dup); // exact duplicate

    // Per-sample audit (safety rules, bounds, plausibility).
    let validator = highway_validator(1.0);
    let report = validator.audit(&data);
    println!("\nper-sample audit:\n{report}");

    // Whole-dataset audit (duplicates, constants, contradictions).
    let findings = audit_dataset(&data, &standard_dataset_rules());
    println!("dataset-level findings: {}", findings.len());
    for f in findings.iter().take(5) {
        println!("  {f}");
    }

    // Sanitize and re-check.
    let before = data.len();
    validator.sanitize(&mut data);
    println!("\nsanitized: {} -> {} samples", before, data.len());
    assert!(validator.audit(&data).is_clean());

    // Scenario coverage: does the clean data still exercise the property?
    let coverage = measure_coverage(&data, &highway_cells());
    println!("\n{coverage}");
    let under = coverage.under_covered(25);
    if under.is_empty() {
        println!("all scenario cells adequately covered — data accepted as specification");
    } else {
        for c in under {
            println!("UNDER-COVERED: {} ({} samples)", c.name, c.count);
        }
    }
    Ok(())
}
