//! Direct use of the verification engine: maximise an output, prove a
//! bound, and inspect a counterexample witness.
//!
//! ```text
//! cargo run --release --example verify_property
//! ```

use certnn_core::scenario::{
    describe_witness, left_vehicle_spec, max_lateral_velocity, prove_lateral_below,
};
use certnn_nn::gmm::OutputLayout;
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_verify::verifier::{Verdict, Verifier};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let layout = OutputLayout::new(2);
    let net = Network::relu_mlp(FEATURE_COUNT, &[12, 12], layout.output_len(), 42)?;
    let spec = left_vehicle_spec();
    let verifier = Verifier::new();

    println!("network: {}", net.label());
    println!("property scenario: a vehicle is abreast on the left\n");

    // Query 1: exact maximum (Table II rows 1-6).
    let result = max_lateral_velocity(&verifier, &net, layout, &spec)?;
    let max = result.max_lateral.expect("small query closes");
    println!(
        "max lateral-velocity mean: {max:.6} m/s  ({} B&B nodes, {} binaries, {:.2?})",
        result.stats.nodes, result.stats.binaries, result.stats.elapsed
    );

    // Query 2: the decision form (Table II last row).
    for threshold in [max + 0.5, max - 0.1] {
        let (verdict, stats) =
            prove_lateral_below(&verifier, &net, layout, &spec, threshold)?;
        match verdict {
            Verdict::Holds { bound } => println!(
                "prove ≤ {threshold:.3}: HOLDS (bound {bound:.4}) in {:.2?}",
                stats.elapsed
            ),
            Verdict::Violated { witness, value } => {
                println!(
                    "prove ≤ {threshold:.3}: VIOLATED — witness reaches {value:.4} in {:.2?}",
                    stats.elapsed
                );
                print!("{}", describe_witness(&witness, 6));
            }
            Verdict::Unknown { upper_bound, .. } => {
                println!("prove ≤ {threshold:.3}: UNKNOWN (bound {upper_bound:.4})")
            }
        }
    }
    Ok(())
}
