//! Quickstart: run the full certification methodology in one call.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This executes all five stages of the paper's methodology on a small
//! configuration — generate data, validate it, train a Gaussian-mixture
//! motion predictor, trace neurons to features, and formally verify the
//! "vehicle on the left" safety property — then prints the report.

use certnn_core::pillars::render_matrix;
use certnn_core::pipeline::{CertificationPipeline, PipelineConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("{}", render_matrix());

    let config = PipelineConfig::smoke_test();
    println!(
        "running the certification pipeline on an I{}x{} predictor...\n",
        config.hidden.len(),
        config.hidden[0]
    );
    let report = CertificationPipeline::new(config).run()?;
    println!("{}", report.summary());

    if let Some(max) = report.lateral.max_lateral {
        println!(
            "the formally verified worst case: with a vehicle abreast on the left,\n\
             this predictor will never suggest a lateral velocity above {max:.4} m/s."
        );
    }
    Ok(())
}
