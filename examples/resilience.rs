//! Maximum resilience (the quantity of the cited ATVA 2017 methodology):
//! how large an input perturbation does the motion predictor tolerate
//! before its lateral-velocity suggestion moves by more than δ?
//!
//! ```text
//! cargo run --release --example resilience
//! ```

use certnn_core::scenario::left_vehicle_spec;
use certnn_nn::gmm::{ActionDim, OutputLayout};
use certnn_nn::network::Network;
use certnn_sim::features::{FeatureExtractor, FEATURE_COUNT};
use certnn_sim::road::Road;
use certnn_sim::simulation::Simulation;
use certnn_verify::property::LinearObjective;
use certnn_verify::robustness::{maximum_resilience, verify_robust};
use certnn_verify::verifier::Verifier;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let layout = OutputLayout::new(1);
    let net = Network::relu_mlp(FEATURE_COUNT, &[10, 10], layout.output_len(), 5)?;
    let objective =
        LinearObjective::output(layout.mean(0, ActionDim::LateralVelocity));
    let domain = left_vehicle_spec();

    // Take a real scenario moment as the centre point, then force it into
    // the property scenario's pinned features.
    let mut sim = Simulation::random_traffic(Road::motorway(), 14, 11)?;
    sim.run(20.0);
    let mut centre = FeatureExtractor::new().extract(&sim, sim.ego_id())?;
    for (i, b) in domain.bounds().iter().enumerate() {
        centre[i] = centre[i].clamp(b.lo(), b.hi());
    }

    let verifier = Verifier::new();
    let delta = 0.5; // tolerated suggestion change (m/s)

    println!("network: {}", net.label());
    println!("question: how far can the scene change before the suggested");
    println!("lateral velocity moves by more than {delta} m/s?\n");

    for epsilon in [0.01, 0.05, 0.2] {
        let verdict =
            verify_robust(&verifier, &net, &domain, &centre, epsilon, &objective, delta)?;
        println!(
            "  ε = {epsilon:<5} -> {}",
            if verdict.is_robust() {
                "ROBUST".to_string()
            } else {
                format!("{verdict:?}").chars().take(60).collect::<String>()
            }
        );
    }

    let res = maximum_resilience(
        &verifier, &net, &domain, &centre, &objective, delta, 0.5, 0.01,
    )?;
    println!(
        "\nmaximum resilience: the suggestion is formally stable for every\n\
         perturbation up to ε = {:.3} (first fragile radius found: {}; {} MILP decisions)",
        res.robust_radius,
        res.fragile_radius
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "none".into()),
        res.queries
    );
    Ok(())
}
