//! Reproduction harness for the `certnn` workspace.
//!
//! This crate hosts the workspace-level runnable [examples](https://doc.rust-lang.org/cargo/guide/project-layout.html)
//! and cross-crate integration tests. It re-exports every member crate so
//! that examples can use a single dependency:
//!
//! ```
//! use certnn_repro::nn::activation::Activation;
//! assert_eq!(Activation::Relu.apply(-1.0), 0.0);
//! ```

pub use certnn_core as core;
pub use certnn_datacheck as datacheck;
pub use certnn_linalg as linalg;
pub use certnn_lp as lp;
pub use certnn_milp as milp;
pub use certnn_nn as nn;
pub use certnn_sim as sim;
pub use certnn_trace as trace;
pub use certnn_verify as verify;
