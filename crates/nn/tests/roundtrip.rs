//! Property-based tests: serialisation round-trips and gradient checks on
//! random architectures.

use certnn_linalg::Vector;
use certnn_nn::loss::{GmmNll, Loss, MseLoss};
use certnn_nn::network::Network;
use certnn_nn::serialize::{from_text, to_text};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn serialization_roundtrip_random_architectures(
        inputs in 1usize..6,
        hidden in prop::collection::vec(1usize..8, 1..4),
        outputs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let net = Network::relu_mlp(inputs, &hidden, outputs, seed).unwrap();
        let back = from_text(&to_text(&net)).unwrap();
        prop_assert_eq!(&net, &back);
    }

    #[test]
    fn backward_gradients_match_finite_differences(
        seed in any::<u64>(),
        x0 in -1.0f64..1.0,
        x1 in -1.0f64..1.0,
    ) {
        let net = Network::relu_mlp(2, &[5, 5], 1, seed).unwrap();
        let x = Vector::from(vec![x0, x1]);
        let trace = net.forward_trace(&x).unwrap();
        let (grads, _) = net.backward(&trace, &Vector::from(vec![1.0])).unwrap();
        let h = 1e-6;
        // Spot-check the first weight of each layer.
        #[allow(clippy::needless_range_loop)]
        for li in 0..net.layers().len() {
            let mut plus = net.clone();
            plus.layers_mut()[li].weights_mut()[(0, 0)] += h;
            let mut minus = net.clone();
            minus.layers_mut()[li].weights_mut()[(0, 0)] -= h;
            let fd = (plus.forward(&x).unwrap()[0] - minus.forward(&x).unwrap()[0]) / (2.0 * h);
            let an = grads[li].weights[(0, 0)];
            // ReLU kinks can make FD unreliable exactly at a breakpoint;
            // allow a loose bound and skip the rare near-kink cases.
            if (fd - an).abs() > 1e-4 {
                let z = net.forward_trace(&x).unwrap().pre_activations[li][0];
                prop_assume!(z.abs() > 1e-4);
                prop_assert!((fd - an).abs() < 1e-4, "layer {li}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn gmm_nll_gradient_is_descent_direction(
        seed in any::<u64>(),
        target0 in -1.0f64..1.0,
        target1 in -1.0f64..1.0,
    ) {
        let loss = GmmNll::new(2);
        let mut out = Vector::zeros(loss.layout().output_len());
        let mut s = seed;
        for i in 0..out.len() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            out[i] = ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 1.6;
        }
        let target = Vector::from(vec![target0, target1]);
        let l0 = loss.loss(&out, &target).unwrap();
        let g = loss.gradient(&out, &target).unwrap();
        let norm2 = g.dot(&g).unwrap();
        prop_assume!(norm2 > 1e-10);
        // A small step against the gradient must not increase the loss.
        let stepped = out.axpby(1.0, &g, -1e-4).unwrap();
        let l1 = loss.loss(&stepped, &target).unwrap();
        prop_assert!(l1 <= l0 + 1e-9, "loss rose from {l0} to {l1}");
    }

    #[test]
    fn mse_is_zero_iff_exact(
        vals in prop::collection::vec(-5.0f64..5.0, 1..6),
    ) {
        let v = Vector::from(vals.clone());
        let l = MseLoss::new();
        prop_assert!(l.loss(&v, &v).unwrap().abs() < 1e-15);
        let mut shifted = v.clone();
        shifted[0] += 1.0;
        prop_assert!(l.loss(&v, &shifted).unwrap() > 0.0);
    }
}
