//! Evaluation metrics over held-out data.
//!
//! Training loss alone does not belong in a certification report: the
//! pipeline evaluates predictors on held-out samples with the metrics
//! here, and the `certnn-bench` harness prints them next to the verified
//! bounds so statistical and formal evidence sit side by side.

use crate::gmm::{Gmm2, OutputLayout};
use crate::loss::{GmmNll, Loss};
use crate::network::Network;
use crate::train::Dataset;
use crate::NnError;

/// Regression/likelihood metrics of a predictor over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Root-mean-square error of the mixture mean against the target
    /// action, averaged over both action dimensions.
    pub rmse: f64,
    /// Mean negative log-likelihood of the targets under the mixture.
    pub mean_nll: f64,
    /// Mean absolute error of the lateral-velocity prediction alone.
    pub lateral_mae: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Evaluates a mixture-head predictor on a dataset.
///
/// # Errors
///
/// Returns [`NnError::Shape`] if the network, layout or samples disagree,
/// and [`NnError::EmptyArchitecture`] for an empty dataset.
pub fn evaluate_gmm(
    net: &Network,
    data: &Dataset,
    layout: OutputLayout,
) -> Result<EvalMetrics, NnError> {
    if data.is_empty() {
        return Err(NnError::EmptyArchitecture);
    }
    let nll_loss = GmmNll::new(layout.components());
    let mut sq_err = 0.0;
    let mut nll = 0.0;
    let mut lat_abs = 0.0;
    for (x, y) in data.iter() {
        let out = net.forward(x)?;
        let gmm = Gmm2::from_output(&out, layout)?;
        let mean = gmm.mean();
        sq_err += (mean[0] - y[0]).powi(2) + (mean[1] - y[1]).powi(2);
        lat_abs += (mean[0] - y[0]).abs();
        nll += nll_loss.loss(&out, y)?;
    }
    let n = data.len() as f64;
    Ok(EvalMetrics {
        rmse: (sq_err / (2.0 * n)).sqrt(),
        mean_nll: nll / n,
        lateral_mae: lat_abs / n,
        samples: data.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::ActionDim;
    use crate::train::{TrainConfig, Trainer};
    use certnn_linalg::Vector;

    fn constant_target_data(n: usize) -> Dataset {
        (0..n)
            .map(|i| {
                (
                    Vector::from(vec![i as f64 / n as f64]),
                    Vector::from(vec![0.6, -0.2]),
                )
            })
            .collect()
    }

    #[test]
    fn perfect_predictor_has_zero_rmse() {
        // Hand-build a single-component head that always outputs the target.
        let layout = OutputLayout::new(1);
        let mut net = Network::relu_mlp(1, &[4], layout.output_len(), 0).unwrap();
        // Train to convergence on the constant target.
        let data = constant_target_data(32);
        Trainer::new(TrainConfig {
            epochs: 300,
            batch_size: 8,
            optimizer: crate::train::Optimizer::adam(0.01),
            ..TrainConfig::default()
        })
        .train(&mut net, &data, &GmmNll::new(1))
        .unwrap();
        let m = evaluate_gmm(&net, &data, layout).unwrap();
        assert!(m.rmse < 0.1, "rmse {}", m.rmse);
        assert!(m.lateral_mae < 0.1, "mae {}", m.lateral_mae);
        assert_eq!(m.samples, 32);
        // Verify the mixture mean actually matches the target.
        let out = net.forward(&Vector::from(vec![0.5])).unwrap();
        let g = Gmm2::from_output(&out, layout).unwrap();
        assert!((g.mean()[ActionDim::LateralVelocity.index()] - 0.6).abs() < 0.15);
    }

    #[test]
    fn training_improves_all_metrics() {
        let layout = OutputLayout::new(1);
        let data = constant_target_data(32);
        let untrained = Network::relu_mlp(1, &[8], layout.output_len(), 5).unwrap();
        let before = evaluate_gmm(&untrained, &data, layout).unwrap();
        let mut net = untrained.clone();
        Trainer::new(TrainConfig {
            epochs: 150,
            batch_size: 8,
            optimizer: crate::train::Optimizer::adam(0.01),
            ..TrainConfig::default()
        })
        .train(&mut net, &data, &GmmNll::new(1))
        .unwrap();
        let after = evaluate_gmm(&net, &data, layout).unwrap();
        assert!(after.rmse < before.rmse);
        assert!(after.mean_nll < before.mean_nll);
    }

    #[test]
    fn empty_dataset_rejected() {
        let layout = OutputLayout::new(1);
        let net = Network::relu_mlp(1, &[4], layout.output_len(), 0).unwrap();
        assert!(evaluate_gmm(&net, &Dataset::new(), layout).is_err());
    }

    #[test]
    fn layout_mismatch_rejected() {
        let data = constant_target_data(4);
        let net = Network::relu_mlp(1, &[4], 5, 0).unwrap(); // 1-component head
        assert!(evaluate_gmm(&net, &data, OutputLayout::new(2)).is_err());
    }
}
