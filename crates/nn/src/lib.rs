//! From-scratch feedforward neural networks with Gaussian-mixture heads.
//!
//! This crate implements the model family of the paper's case study: the
//! highway motion predictor of Lenz et al. (IV 2017) is a fully connected
//! ReLU network with 84 inputs and a mixture-density output describing the
//! distribution over the ego vehicle's next action (lateral velocity ×
//! longitudinal acceleration). The paper's Table II verifies `I4×N`
//! instances — four hidden layers of `N` ReLU neurons each.
//!
//! Everything is implemented here directly on [`certnn_linalg`]:
//!
//! * [`activation::Activation`] — ReLU / tanh / identity with derivatives
//!   and sound interval transfer functions.
//! * [`layer::DenseLayer`] and [`network::Network`] — forward pass, full
//!   activation traces (consumed by `certnn-verify` and `certnn-trace`),
//!   and reverse-mode gradients.
//! * [`loss`] — mean-squared error and the negative log-likelihood of a
//!   diagonal bivariate Gaussian mixture ([`gmm::Gmm2`]).
//! * [`train`] — SGD / momentum / Adam training with optional
//!   [`hints::SafetyHint`] regularisation (the paper's Sec. IV (iii)
//!   "training with hints").
//! * [`serialize`] — a plain-text weight format so experiments are
//!   reproducible from checked-in artifacts.
//!
//! # Example
//!
//! ```
//! use certnn_nn::network::Network;
//! use certnn_linalg::Vector;
//!
//! # fn main() -> Result<(), certnn_nn::NnError> {
//! // An `I4×10` architecture: 84 inputs, 4 hidden ReLU layers of 10.
//! let net = Network::relu_mlp(84, &[10, 10, 10, 10], 5, 42)?;
//! let out = net.forward(&Vector::zeros(84))?;
//! assert_eq!(out.len(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod dataset_io;
pub mod gmm;
pub mod hints;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod serialize;
pub mod train;

use std::error::Error;
use std::fmt;

/// Error raised by network construction, evaluation or (de)serialisation.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Input or target dimension does not match the network.
    Shape {
        /// What was being computed.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        got: usize,
    },
    /// Layer dimensions do not chain (layer `i` outputs ≠ layer `i+1` inputs).
    LayerMismatch {
        /// Index of the later layer.
        layer: usize,
        /// Output width of the previous layer.
        prev_out: usize,
        /// Input width of the offending layer.
        this_in: usize,
    },
    /// An architecture description is empty or zero-width.
    EmptyArchitecture,
    /// A serialised network could not be parsed.
    Parse(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape { op, expected, got } => {
                write!(f, "{op}: expected dimension {expected}, got {got}")
            }
            NnError::LayerMismatch {
                layer,
                prev_out,
                this_in,
            } => write!(
                f,
                "layer {layer} expects {this_in} inputs but previous layer outputs {prev_out}"
            ),
            NnError::EmptyArchitecture => f.write_str("network must have at least one layer"),
            NnError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        let errors = [
            NnError::Shape {
                op: "forward",
                expected: 84,
                got: 3,
            },
            NnError::LayerMismatch {
                layer: 1,
                prev_out: 10,
                this_in: 20,
            },
            NnError::EmptyArchitecture,
            NnError::Parse("bad header".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
