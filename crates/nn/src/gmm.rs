//! Bivariate Gaussian mixture output heads.
//!
//! The case-study predictor outputs "the probability distribution over all
//! possible actions for a vehicle, characterized as a Gaussian mixture
//! model" over two action dimensions: lateral velocity (positive = towards
//! the left lane) and longitudinal acceleration. A network with a
//! `K`-component head has `5·K` output neurons laid out by
//! [`OutputLayout`]:
//!
//! | slice            | meaning                               |
//! |------------------|---------------------------------------|
//! | `[0, K)`         | mixture logits (softmax → weights)    |
//! | `[K, 3K)`        | component means, `(v_lat, a_lon)` pairs |
//! | `[3K, 5K)`       | log standard deviations, pairs        |
//!
//! The verification objective of Table II — "the mean value of the
//! probability distribution [over lateral velocity] should be limited" —
//! reads the `v_lat` *mean* neurons, which are affine outputs of the last
//! hidden layer and therefore MILP-encodable.

use crate::NnError;
use certnn_linalg::Vector;
use std::f64::consts::PI;
use std::fmt;

/// Action dimensions of the motion predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionDim {
    /// Lateral velocity (m/s, positive towards the left lane).
    LateralVelocity,
    /// Longitudinal acceleration (m/s²).
    LongitudinalAcceleration,
}

impl ActionDim {
    /// Index of the dimension within a mean/std pair.
    pub fn index(&self) -> usize {
        match self {
            ActionDim::LateralVelocity => 0,
            ActionDim::LongitudinalAcceleration => 1,
        }
    }
}

/// Maps mixture parameters to output-neuron indices for a `K`-component
/// bivariate mixture head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutputLayout {
    components: usize,
}

impl OutputLayout {
    /// Layout for `components` mixture components.
    ///
    /// # Panics
    ///
    /// Panics if `components == 0`.
    pub fn new(components: usize) -> Self {
        assert!(components > 0, "mixture needs at least one component");
        Self { components }
    }

    /// Number of mixture components `K`.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Total number of output neurons (`5·K`).
    pub fn output_len(&self) -> usize {
        5 * self.components
    }

    /// Output index of component `k`'s mixture logit.
    ///
    /// # Panics
    ///
    /// Panics if `k >= K`.
    pub fn logit(&self, k: usize) -> usize {
        assert!(k < self.components);
        k
    }

    /// Output index of component `k`'s mean along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= K`.
    pub fn mean(&self, k: usize, dim: ActionDim) -> usize {
        assert!(k < self.components);
        self.components + 2 * k + dim.index()
    }

    /// Output index of component `k`'s log standard deviation along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= K`.
    pub fn log_std(&self, k: usize, dim: ActionDim) -> usize {
        assert!(k < self.components);
        3 * self.components + 2 * k + dim.index()
    }

    /// All output indices holding a lateral-velocity mean — the neurons the
    /// safety property of Table II constrains.
    pub fn lateral_mean_indices(&self) -> Vec<usize> {
        (0..self.components)
            .map(|k| self.mean(k, ActionDim::LateralVelocity))
            .collect()
    }
}

/// One component of a bivariate diagonal Gaussian mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmComponent {
    /// Mixture weight (softmax of logits; weights sum to 1).
    pub weight: f64,
    /// Mean `(v_lat, a_lon)`.
    pub mean: [f64; 2],
    /// Standard deviation `(v_lat, a_lon)`, strictly positive.
    pub std: [f64; 2],
}

/// A bivariate diagonal Gaussian mixture over `(v_lat, a_lon)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm2 {
    components: Vec<GmmComponent>,
}

impl Gmm2 {
    /// Decodes a mixture from raw network outputs using `layout`.
    ///
    /// Log standard deviations are clamped to `[-6, 3]` before
    /// exponentiation so untrained networks still decode to finite
    /// densities.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `output.len() != layout.output_len()`.
    pub fn from_output(output: &Vector, layout: OutputLayout) -> Result<Self, NnError> {
        if output.len() != layout.output_len() {
            return Err(NnError::Shape {
                op: "gmm decode",
                expected: layout.output_len(),
                got: output.len(),
            });
        }
        let k = layout.components();
        // Softmax with max-subtraction for stability.
        let max_logit = (0..k)
            .map(|i| output[layout.logit(i)])
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = (0..k)
            .map(|i| (output[layout.logit(i)] - max_logit).exp())
            .collect();
        let z: f64 = exps.iter().sum();
        let components = (0..k)
            .map(|i| GmmComponent {
                weight: exps[i] / z,
                mean: [
                    output[layout.mean(i, ActionDim::LateralVelocity)],
                    output[layout.mean(i, ActionDim::LongitudinalAcceleration)],
                ],
                std: [
                    output[layout.log_std(i, ActionDim::LateralVelocity)]
                        .clamp(-6.0, 3.0)
                        .exp(),
                    output[layout.log_std(i, ActionDim::LongitudinalAcceleration)]
                        .clamp(-6.0, 3.0)
                        .exp(),
                ],
            })
            .collect();
        Ok(Self { components })
    }

    /// The components.
    pub fn components(&self) -> &[GmmComponent] {
        &self.components
    }

    /// Probability density at action `(v_lat, a_lon)`.
    #[allow(clippy::needless_range_loop)] // two fixed dims, indexed on purpose
    pub fn pdf(&self, action: [f64; 2]) -> f64 {
        self.components
            .iter()
            .map(|c| {
                let mut p = c.weight;
                for d in 0..2 {
                    let z = (action[d] - c.mean[d]) / c.std[d];
                    p *= (-0.5 * z * z).exp() / (c.std[d] * (2.0 * PI).sqrt());
                }
                p
            })
            .sum()
    }

    /// The component with the largest mixture weight.
    pub fn dominant(&self) -> &GmmComponent {
        self.components
            .iter()
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"))
            .expect("nonempty mixture")
    }

    /// Mixture mean `(v_lat, a_lon)` (weights-weighted component means).
    pub fn mean(&self) -> [f64; 2] {
        let mut m = [0.0; 2];
        for c in &self.components {
            m[0] += c.weight * c.mean[0];
            m[1] += c.weight * c.mean[1];
        }
        m
    }

    /// Largest lateral-velocity component mean — the quantity the safety
    /// property bounds ("never suggests a large left velocity").
    pub fn max_lateral_mean(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.mean[0])
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl fmt::Display for Gmm2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Gmm2 ({} components)", self.components.len())?;
        for (i, c) in self.components.iter().enumerate() {
            writeln!(
                f,
                "  #{i}: w={:.3} mean=({:+.3}, {:+.3}) std=({:.3}, {:.3})",
                c.weight, c.mean[0], c.mean[1], c.std[0], c.std[1]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout3() -> OutputLayout {
        OutputLayout::new(3)
    }

    #[test]
    fn layout_indices_partition_the_output() {
        let l = layout3();
        assert_eq!(l.output_len(), 15);
        let mut seen = [false; 15];
        for k in 0..3 {
            for idx in [
                l.logit(k),
                l.mean(k, ActionDim::LateralVelocity),
                l.mean(k, ActionDim::LongitudinalAcceleration),
                l.log_std(k, ActionDim::LateralVelocity),
                l.log_std(k, ActionDim::LongitudinalAcceleration),
            ] {
                assert!(!seen[idx], "index {idx} assigned twice");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lateral_mean_indices_match_layout() {
        let l = layout3();
        assert_eq!(l.lateral_mean_indices(), vec![3, 5, 7]);
    }

    #[test]
    fn decode_weights_sum_to_one() {
        let l = layout3();
        let mut out = Vector::zeros(15);
        out[0] = 2.0;
        out[1] = -1.0;
        out[2] = 0.5;
        let g = Gmm2::from_output(&out, l).unwrap();
        let total: f64 = g.components().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(g.components()[0].weight > g.components()[1].weight);
    }

    #[test]
    fn decode_validates_length() {
        assert!(Gmm2::from_output(&Vector::zeros(7), layout3()).is_err());
    }

    #[test]
    fn pdf_integrates_to_about_one_on_a_grid() {
        let l = OutputLayout::new(1);
        let mut out = Vector::zeros(5);
        out[l.mean(0, ActionDim::LateralVelocity)] = 0.3;
        out[l.mean(0, ActionDim::LongitudinalAcceleration)] = -0.2;
        // log std 0 -> std 1.
        let g = Gmm2::from_output(&out, l).unwrap();
        let step = 0.1;
        let mut total = 0.0;
        let mut a = -6.0;
        while a < 6.0 {
            let mut b = -6.0;
            while b < 6.0 {
                total += g.pdf([a, b]) * step * step;
                b += step;
            }
            a += step;
        }
        assert!((total - 1.0).abs() < 0.02, "integral {total}");
    }

    #[test]
    fn dominant_and_means() {
        let l = layout3();
        let mut out = Vector::zeros(15);
        out[l.logit(1)] = 5.0; // dominant component 1
        out[l.mean(0, ActionDim::LateralVelocity)] = -1.0;
        out[l.mean(1, ActionDim::LateralVelocity)] = 0.5;
        out[l.mean(2, ActionDim::LateralVelocity)] = 2.0;
        let g = Gmm2::from_output(&out, l).unwrap();
        assert!((g.dominant().mean[0] - 0.5).abs() < 1e-12);
        assert!((g.max_lateral_mean() - 2.0).abs() < 1e-12);
        // Mixture mean is dominated by component 1.
        assert!((g.mean()[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn extreme_log_std_is_clamped() {
        let l = OutputLayout::new(1);
        let mut out = Vector::zeros(5);
        out[l.log_std(0, ActionDim::LateralVelocity)] = 1e6;
        let g = Gmm2::from_output(&out, l).unwrap();
        assert!(g.components()[0].std[0].is_finite());
        assert!(g.pdf([0.0, 0.0]).is_finite());
    }

    #[test]
    fn display_lists_components() {
        let g = Gmm2::from_output(&Vector::zeros(5), OutputLayout::new(1)).unwrap();
        assert!(g.to_string().contains("#0"));
    }
}
