//! Mini-batch training: datasets, optimisers, trainer loop.

use crate::hints::SafetyHint;
use crate::layer::LayerGradient;
use crate::loss::Loss;
use crate::network::Network;
use crate::NnError;
use certnn_linalg::Vector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An in-memory supervised dataset of `(input, target)` pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    samples: Vec<(Vector, Vector)>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from samples.
    pub fn from_samples(samples: Vec<(Vector, Vector)>) -> Self {
        Self { samples }
    }

    /// Adds one sample.
    pub fn push(&mut self, input: Vector, target: Vector) {
        self.samples.push((input, target));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over `(input, target)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (Vector, Vector)> {
        self.samples.iter()
    }

    /// Sample at `index`, or `None` if out of range.
    pub fn get(&self, index: usize) -> Option<&(Vector, Vector)> {
        self.samples.get(index)
    }

    /// Splits off the last `fraction` of the samples as a held-out set.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn split(mut self, fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let held = (self.samples.len() as f64 * fraction).round() as usize;
        let cut = self.samples.len() - held;
        let tail = self.samples.split_off(cut);
        (self, Dataset { samples: tail })
    }

    /// Retains only the samples for which `keep` returns `true`, returning
    /// the number removed. Used by `certnn-datacheck` sanitizers.
    pub fn retain<F: FnMut(&Vector, &Vector) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.samples.len();
        self.samples.retain(|(i, t)| keep(i, t));
        before - self.samples.len()
    }
}

impl FromIterator<(Vector, Vector)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (Vector, Vector)>>(iter: I) -> Self {
        Self {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Vector, Vector)> for Dataset {
    fn extend<I: IntoIterator<Item = (Vector, Vector)>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

/// Gradient-descent update rules.
#[derive(Debug, Clone, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient (e.g. 0.9).
        beta: f64,
    },
    /// Adam (Kingma & Ba 2015) with the usual defaults.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay (e.g. 0.9).
        beta1: f64,
        /// Second-moment decay (e.g. 0.999).
        beta2: f64,
        /// Numerical floor.
        eps: f64,
    },
}

impl Optimizer {
    /// Adam with standard hyper-parameters and the given learning rate.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-parameter optimiser state (moment estimates).
#[derive(Debug, Clone)]
struct OptState {
    m: Vec<LayerGradient>,
    v: Vec<LayerGradient>,
    t: u64,
}

impl OptState {
    fn zeros_like(net: &Network) -> Self {
        let zeros: Vec<LayerGradient> = net.layers().iter().map(LayerGradient::zeros_like).collect();
        Self {
            m: zeros.clone(),
            v: zeros,
            t: 0,
        }
    }
}

/// Per-epoch learning-rate schedule (multiplies the optimiser's base
/// learning rate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply by `factor` every `every` epochs.
    Step {
        /// Epoch interval.
        every: usize,
        /// Multiplicative factor per interval (e.g. 0.5).
        factor: f64,
    },
    /// Cosine decay from 1 to `floor` across all configured epochs.
    Cosine {
        /// Final multiplier (e.g. 0.01).
        floor: f64,
    },
}

impl LrSchedule {
    /// Multiplier for `epoch` (0-based) out of `total` epochs.
    pub fn multiplier(&self, epoch: usize, total: usize) -> f64 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, factor } => {
                factor.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine { floor } => {
                let t = if total <= 1 {
                    0.0
                } else {
                    epoch as f64 / (total - 1) as f64
                };
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f64::consts::PI * t).cos())
            }
        }
    }
}

/// Training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Update rule.
    pub optimizer: Optimizer,
    /// Global gradient-norm clip (∞-norm per parameter tensor); `None`
    /// disables clipping.
    pub grad_clip: Option<f64>,
    /// Decoupled L2 weight decay per update (AdamW-style; applied to
    /// weights only, not biases). Besides its statistical role, weight
    /// decay shrinks the network's Lipschitz constant and therefore the
    /// formally verified worst-case outputs.
    pub weight_decay: f64,
    /// Shuffle seed (training is deterministic given this seed).
    pub seed: u64,
    /// Safety hints added to the loss (paper Sec. IV (iii)).
    pub hints: Vec<SafetyHint>,
    /// Virtual hint inputs (Abu-Mostafa 1995: hints as *virtual
    /// examples*). These inputs carry no regression target — each batch
    /// additionally evaluates the hints on a slice of them, so the rule
    /// is enforced across the property region rather than only where
    /// the data happens to lie. Ignored when `hints` is empty.
    pub hint_inputs: Vec<Vector>,
    /// Learning-rate schedule applied per epoch.
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            batch_size: 32,
            optimizer: Optimizer::adam(1e-3),
            grad_clip: Some(5.0),
            weight_decay: 0.0,
            seed: 0,
            hints: Vec::new(),
            hint_inputs: Vec::new(),
            schedule: LrSchedule::Constant,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch (data loss + hint penalties).
    pub epoch_losses: Vec<f64>,
    /// Mean hint penalty per epoch (zero when no hints are configured).
    pub epoch_hint_penalties: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's mean loss, or `+∞` if no epochs ran.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Mini-batch trainer.
///
/// # Example
///
/// ```
/// use certnn_nn::network::Network;
/// use certnn_nn::train::{Dataset, TrainConfig, Trainer};
/// use certnn_nn::loss::MseLoss;
/// use certnn_linalg::Vector;
///
/// # fn main() -> Result<(), certnn_nn::NnError> {
/// // Learn y = 2x on a handful of points.
/// let data: Dataset = (0..16)
///     .map(|i| {
///         let x = i as f64 / 8.0 - 1.0;
///         (Vector::from(vec![x]), Vector::from(vec![2.0 * x]))
///     })
///     .collect();
/// let mut net = Network::relu_mlp(1, &[16], 1, 3)?;
/// let config = TrainConfig {
///     epochs: 400,
///     optimizer: certnn_nn::train::Optimizer::adam(0.01),
///     ..Default::default()
/// };
/// let report = Trainer::new(config).train(&mut net, &data, &MseLoss::new())?;
/// assert!(report.final_loss() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` in place on `data` with loss `loss`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if any sample's dimensions do not match
    /// the network or loss, and [`NnError::EmptyArchitecture`] if the
    /// dataset is empty.
    pub fn train(
        &self,
        net: &mut Network,
        data: &Dataset,
        loss: &dyn Loss,
    ) -> Result<TrainReport, NnError> {
        if data.is_empty() {
            return Err(NnError::EmptyArchitecture);
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut state = OptState::zeros_like(net);
        let mut report = TrainReport::default();
        let batch = self.config.batch_size.max(1);
        let mut hint_cursor = 0usize;
        // Per batch, evaluate the hints on this many virtual inputs.
        let hint_slice = (batch / 2).max(1);

        for epoch in 0..self.config.epochs {
            let lr_mult = self.config.schedule.multiplier(epoch, self.config.epochs);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut epoch_hint = 0.0;
            for chunk in order.chunks(batch) {
                let mut grads: Vec<LayerGradient> =
                    net.layers().iter().map(LayerGradient::zeros_like).collect();
                for &idx in chunk {
                    let (input, target) = data.get(idx).expect("index in range");
                    let trace = net.forward_trace(input)?;
                    let output = trace.output().clone();
                    let data_loss = loss.loss(&output, target)?;
                    let mut dl = loss.gradient(&output, target)?;
                    let mut hint_pen = 0.0;
                    for hint in &self.config.hints {
                        hint_pen += hint.penalty(input, &output);
                        hint.accumulate_gradient(input, &output, &mut dl);
                    }
                    epoch_loss += data_loss + hint_pen;
                    epoch_hint += hint_pen;
                    let (sample_grads, _) = net.backward(&trace, &dl)?;
                    for (acc, g) in grads.iter_mut().zip(&sample_grads) {
                        acc.accumulate(g, 1.0 / chunk.len() as f64);
                    }
                }
                // Virtual-example hints: penalty-only gradients on inputs
                // drawn from the property region.
                if !self.config.hints.is_empty() && !self.config.hint_inputs.is_empty() {
                    let n = self.config.hint_inputs.len();
                    let take = hint_slice.min(n);
                    for _ in 0..take {
                        let input = &self.config.hint_inputs[hint_cursor % n];
                        hint_cursor += 1;
                        let trace = net.forward_trace(input)?;
                        let output = trace.output().clone();
                        let mut dl = Vector::zeros(output.len());
                        let mut pen = 0.0;
                        for hint in &self.config.hints {
                            pen += hint.penalty(input, &output);
                            hint.accumulate_gradient(input, &output, &mut dl);
                        }
                        if pen > 0.0 {
                            epoch_loss += pen;
                            epoch_hint += pen;
                            let (sample_grads, _) = net.backward(&trace, &dl)?;
                            for (acc, g) in grads.iter_mut().zip(&sample_grads) {
                                acc.accumulate(g, 1.0 / take as f64);
                            }
                        }
                    }
                }
                if let Some(clip) = self.config.grad_clip {
                    for g in &mut grads {
                        clip_in_place(g, clip);
                    }
                }
                self.apply(net, &grads, &mut state, lr_mult);
                if self.config.weight_decay > 0.0 {
                    let keep = 1.0 - self.config.weight_decay;
                    for layer in net.layers_mut() {
                        for w in layer.weights_mut().as_mut_slice() {
                            *w *= keep;
                        }
                    }
                }
            }
            report.epoch_losses.push(epoch_loss / data.len() as f64);
            report
                .epoch_hint_penalties
                .push(epoch_hint / data.len() as f64);
        }
        Ok(report)
    }

    fn apply(
        &self,
        net: &mut Network,
        grads: &[LayerGradient],
        state: &mut OptState,
        lr_mult: f64,
    ) {
        match self.config.optimizer {
            Optimizer::Sgd { lr } => {
                let lr = lr * lr_mult;
                for (layer, g) in net.layers_mut().iter_mut().zip(grads) {
                    layer
                        .weights_mut()
                        .add_scaled(&g.weights, -lr)
                        .expect("shape");
                    let step = g.bias.scaled(-lr);
                    *layer.bias_mut() += &step;
                }
            }
            Optimizer::Momentum { lr, beta } => {
                let lr = lr * lr_mult;
                for ((layer, g), m) in net.layers_mut().iter_mut().zip(grads).zip(&mut state.m) {
                    // m = beta m + g; w -= lr m.
                    let mut new_m = m.weights.map(|v| v * beta);
                    new_m.add_scaled(&g.weights, 1.0).expect("shape");
                    m.weights = new_m;
                    m.bias = m.bias.axpby(beta, &g.bias, 1.0).expect("shape");
                    layer
                        .weights_mut()
                        .add_scaled(&m.weights, -lr)
                        .expect("shape");
                    let step = m.bias.scaled(-lr);
                    *layer.bias_mut() += &step;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let lr = lr * lr_mult;
                state.t += 1;
                let t = state.t as f64;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for (((layer, g), m), v) in net
                    .layers_mut()
                    .iter_mut()
                    .zip(grads)
                    .zip(&mut state.m)
                    .zip(&mut state.v)
                {
                    // First and second moments, elementwise.
                    for (idx, gw) in g.weights.as_slice().iter().enumerate() {
                        let mw = &mut m.weights.as_mut_slice()[idx];
                        *mw = beta1 * *mw + (1.0 - beta1) * gw;
                        let vw = &mut v.weights.as_mut_slice()[idx];
                        *vw = beta2 * *vw + (1.0 - beta2) * gw * gw;
                        let mhat = *mw / bc1;
                        let vhat = *vw / bc2;
                        layer.weights_mut().as_mut_slice()[idx] -=
                            lr * mhat / (vhat.sqrt() + eps);
                    }
                    for (idx, gb) in g.bias.as_slice().iter().enumerate() {
                        let mb = &mut m.bias.as_mut_slice()[idx];
                        *mb = beta1 * *mb + (1.0 - beta1) * gb;
                        let vb = &mut v.bias.as_mut_slice()[idx];
                        *vb = beta2 * *vb + (1.0 - beta2) * gb * gb;
                        let mhat = *mb / bc1;
                        let vhat = *vb / bc2;
                        layer.bias_mut().as_mut_slice()[idx] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
    }
}

/// Clamps every gradient entry into `[-clip, clip]`.
fn clip_in_place(g: &mut LayerGradient, clip: f64) {
    for w in g.weights.as_mut_slice() {
        *w = w.clamp(-clip, clip);
    }
    for b in g.bias.as_mut_slice() {
        *b = b.clamp(-clip, clip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{GmmNll, MseLoss};

    fn linear_dataset(n: usize) -> Dataset {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64 * 2.0 - 1.0;
                (
                    Vector::from(vec![x, -x]),
                    Vector::from(vec![3.0 * x + 0.5]),
                )
            })
            .collect()
    }

    #[test]
    fn dataset_split_and_retain() {
        let data = linear_dataset(10);
        let (train, test) = data.clone().split(0.2);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        let mut d = data;
        let removed = d.retain(|input, _| input[0] >= 0.0);
        assert!(removed > 0);
        assert!(d.iter().all(|(i, _)| i[0] >= 0.0));
    }

    #[test]
    fn sgd_learns_linear_function() {
        let data = linear_dataset(32);
        let mut net = Network::relu_mlp(2, &[16], 1, 5).unwrap();
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 8,
            optimizer: Optimizer::Sgd { lr: 0.05 },
            ..Default::default()
        };
        let report = Trainer::new(cfg).train(&mut net, &data, &MseLoss::new()).unwrap();
        assert!(
            report.final_loss() < 0.02,
            "final loss {}",
            report.final_loss()
        );
        // Loss must broadly decrease.
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn adam_learns_faster_than_needed_threshold() {
        let data = linear_dataset(32);
        let mut net = Network::relu_mlp(2, &[16], 1, 6).unwrap();
        let cfg = TrainConfig {
            epochs: 150,
            batch_size: 8,
            optimizer: Optimizer::adam(0.01),
            ..Default::default()
        };
        let report = Trainer::new(cfg).train(&mut net, &data, &MseLoss::new()).unwrap();
        assert!(report.final_loss() < 0.01, "{}", report.final_loss());
    }

    #[test]
    fn momentum_optimizer_trains() {
        let data = linear_dataset(32);
        let mut net = Network::relu_mlp(2, &[12], 1, 7).unwrap();
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 8,
            optimizer: Optimizer::Momentum { lr: 0.02, beta: 0.9 },
            ..Default::default()
        };
        let report = Trainer::new(cfg).train(&mut net, &data, &MseLoss::new()).unwrap();
        assert!(report.final_loss() < 0.05, "{}", report.final_loss());
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let data = linear_dataset(16);
        let run = |seed| {
            let mut net = Network::relu_mlp(2, &[8], 1, 9).unwrap();
            let cfg = TrainConfig {
                epochs: 10,
                seed,
                ..Default::default()
            };
            Trainer::new(cfg)
                .train(&mut net, &data, &MseLoss::new())
                .unwrap()
                .final_loss()
        };
        assert_eq!(run(1), run(1));
        // Different shuffle order gives (almost surely) different loss.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn schedules_produce_expected_multipliers() {
        assert_eq!(LrSchedule::Constant.multiplier(7, 10), 1.0);
        let step = LrSchedule::Step { every: 3, factor: 0.5 };
        assert_eq!(step.multiplier(0, 10), 1.0);
        assert_eq!(step.multiplier(3, 10), 0.5);
        assert_eq!(step.multiplier(6, 10), 0.25);
        let cos = LrSchedule::Cosine { floor: 0.1 };
        assert!((cos.multiplier(0, 11) - 1.0).abs() < 1e-12);
        assert!((cos.multiplier(10, 11) - 0.1).abs() < 1e-12);
        let mid = cos.multiplier(5, 11);
        assert!(mid > 0.1 && mid < 1.0);
    }

    #[test]
    fn cosine_schedule_training_converges() {
        let data = linear_dataset(32);
        let mut net = Network::relu_mlp(2, &[16], 1, 5).unwrap();
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 8,
            optimizer: Optimizer::adam(0.02),
            schedule: LrSchedule::Cosine { floor: 0.05 },
            ..Default::default()
        };
        let report = Trainer::new(cfg).train(&mut net, &data, &MseLoss::new()).unwrap();
        assert!(report.final_loss() < 0.05, "{}", report.final_loss());
    }

    #[test]
    fn weight_decay_shrinks_weight_norms() {
        let data = linear_dataset(32);
        let run = |decay| {
            let mut net = Network::relu_mlp(2, &[16], 1, 5).unwrap();
            let cfg = TrainConfig {
                epochs: 100,
                weight_decay: decay,
                ..Default::default()
            };
            Trainer::new(cfg)
                .train(&mut net, &data, &MseLoss::new())
                .unwrap();
            net.layers()
                .iter()
                .map(|l| l.weights().frobenius_norm())
                .sum::<f64>()
        };
        let plain = run(0.0);
        let decayed = run(1e-3);
        assert!(
            decayed < plain,
            "decay did not shrink weights: {plain} -> {decayed}"
        );
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let mut net = Network::relu_mlp(2, &[4], 1, 0).unwrap();
        let err = Trainer::new(TrainConfig::default()).train(
            &mut net,
            &Dataset::new(),
            &MseLoss::new(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn hint_reduces_guarded_output() {
        // Targets push output up to 2.0 everywhere; the hint caps it at 0.5
        // whenever feature 0 >= 0.5. With a strong hint the trained network
        // must compromise below the uncapped value on guarded inputs.
        let data: Dataset = (0..64)
            .map(|i| {
                let guard = if i % 2 == 0 { 1.0 } else { 0.0 };
                (
                    Vector::from(vec![guard, (i as f64 / 64.0) - 0.5]),
                    Vector::from(vec![2.0]),
                )
            })
            .collect();
        let hint = SafetyHint {
            guard_feature: 0,
            guard_threshold: 0.5,
            output_index: 0,
            max_value: 0.5,
            weight: 10.0,
        };
        let train_with = |hints: Vec<SafetyHint>| {
            let mut net = Network::relu_mlp(2, &[16], 1, 21).unwrap();
            let cfg = TrainConfig {
                epochs: 300,
                batch_size: 16,
                optimizer: Optimizer::adam(0.01),
                hints,
                ..Default::default()
            };
            Trainer::new(cfg)
                .train(&mut net, &data, &MseLoss::new())
                .unwrap();
            net
        };
        let plain = train_with(vec![]);
        let hinted = train_with(vec![hint]);
        let guarded_input = Vector::from(vec![1.0, 0.0]);
        let plain_out = plain.forward(&guarded_input).unwrap()[0];
        let hinted_out = hinted.forward(&guarded_input).unwrap()[0];
        assert!(
            hinted_out < plain_out - 0.3,
            "hint had no effect: plain {plain_out}, hinted {hinted_out}"
        );
    }

    #[test]
    fn virtual_example_hints_cap_off_distribution_behaviour() {
        // Data pushes the output to 2.0 only on UNGUARDED inputs; the
        // guarded region is never in the data. Without virtual examples
        // the hint never fires; with them it caps the guarded region.
        let data: Dataset = (0..64)
            .map(|i| {
                (
                    Vector::from(vec![0.0, (i as f64 / 64.0) - 0.5]),
                    Vector::from(vec![2.0]),
                )
            })
            .collect();
        let hint = SafetyHint {
            guard_feature: 0,
            guard_threshold: 0.5,
            output_index: 0,
            max_value: 0.3,
            weight: 10.0,
        };
        let virtual_inputs: Vec<Vector> = (0..32)
            .map(|i| Vector::from(vec![1.0, (i as f64 / 32.0) - 0.5]))
            .collect();
        let train_with = |hint_inputs: Vec<Vector>| {
            let mut net = Network::relu_mlp(2, &[16], 1, 22).unwrap();
            let cfg = TrainConfig {
                epochs: 300,
                batch_size: 16,
                optimizer: Optimizer::adam(0.01),
                hints: vec![hint],
                hint_inputs,
                ..Default::default()
            };
            let report = Trainer::new(cfg)
                .train(&mut net, &data, &MseLoss::new())
                .unwrap();
            (net, report)
        };
        let (plain, plain_report) = train_with(vec![]);
        let (hinted, hinted_report) = train_with(virtual_inputs);
        // Without virtual examples the hint never fires (guard absent
        // from the data)...
        assert!(plain_report.epoch_hint_penalties.iter().all(|&p| p == 0.0));
        // ...with them it fires at least early in training.
        assert!(hinted_report.epoch_hint_penalties[0] > 0.0);
        // And the guarded region is now capped.
        let guarded = Vector::from(vec![1.0, 0.1]);
        let plain_out = plain.forward(&guarded).unwrap()[0];
        let hinted_out = hinted.forward(&guarded).unwrap()[0];
        assert!(
            hinted_out < plain_out - 0.3,
            "virtual hints had no effect: {plain_out} -> {hinted_out}"
        );
    }

    #[test]
    fn gmm_head_trains_towards_targets() {
        // Single-component mixture should move its mean towards the data.
        let data: Dataset = (0..32)
            .map(|i| {
                let x = i as f64 / 32.0;
                (Vector::from(vec![x]), Vector::from(vec![0.8, -0.4]))
            })
            .collect();
        let loss = GmmNll::new(1);
        let mut net = Network::relu_mlp(1, &[12], loss.layout().output_len(), 17).unwrap();
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 8,
            optimizer: Optimizer::adam(0.01),
            ..Default::default()
        };
        let report = Trainer::new(cfg).train(&mut net, &data, &loss).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
        let out = net.forward(&Vector::from(vec![0.5])).unwrap();
        let g = crate::gmm::Gmm2::from_output(&out, loss.layout()).unwrap();
        let m = g.mean();
        assert!((m[0] - 0.8).abs() < 0.15, "v_lat mean {}", m[0]);
        assert!((m[1] + 0.4).abs() < 0.15, "a_lon mean {}", m[1]);
    }
}
