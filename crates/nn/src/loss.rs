//! Loss functions and their gradients with respect to network outputs.

use crate::gmm::{ActionDim, OutputLayout};
use crate::NnError;
use certnn_linalg::Vector;
use std::f64::consts::PI;

/// A differentiable loss over (network output, target) pairs.
///
/// Implementations return both the scalar loss and its gradient with
/// respect to the raw network output; [`crate::train::Trainer`] chains that
/// gradient through [`crate::network::Network::backward`].
pub trait Loss {
    /// Scalar loss value.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if output/target dimensions are invalid
    /// for this loss.
    fn loss(&self, output: &Vector, target: &Vector) -> Result<f64, NnError>;

    /// Gradient of the loss w.r.t. the network output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if output/target dimensions are invalid
    /// for this loss.
    fn gradient(&self, output: &Vector, target: &Vector) -> Result<Vector, NnError>;
}

/// Mean squared error `(1/n)·Σ (out_i − target_i)²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }
}

impl Loss for MseLoss {
    fn loss(&self, output: &Vector, target: &Vector) -> Result<f64, NnError> {
        if output.len() != target.len() {
            return Err(NnError::Shape {
                op: "mse",
                expected: output.len(),
                got: target.len(),
            });
        }
        let n = output.len().max(1) as f64;
        Ok(output
            .iter()
            .zip(target.iter())
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f64>()
            / n)
    }

    fn gradient(&self, output: &Vector, target: &Vector) -> Result<Vector, NnError> {
        if output.len() != target.len() {
            return Err(NnError::Shape {
                op: "mse gradient",
                expected: output.len(),
                got: target.len(),
            });
        }
        let n = output.len().max(1) as f64;
        Ok(output
            .iter()
            .zip(target.iter())
            .map(|(o, t)| 2.0 * (o - t) / n)
            .collect())
    }
}

/// Negative log-likelihood of a bivariate diagonal Gaussian mixture head
/// (the mixture-density-network loss of Bishop 1994, specialised to the
/// two action dimensions of the motion predictor).
///
/// The target is the observed action `(v_lat, a_lon)`; the output is the
/// raw `5K` head described by [`OutputLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmmNll {
    layout: OutputLayout,
}

impl GmmNll {
    /// NLL for a `components`-component head.
    ///
    /// # Panics
    ///
    /// Panics if `components == 0`.
    pub fn new(components: usize) -> Self {
        Self {
            layout: OutputLayout::new(components),
        }
    }

    /// The output layout this loss expects.
    pub fn layout(&self) -> OutputLayout {
        self.layout
    }

    /// Log density of one component at the target (log space throughout).
    fn component_log_density(&self, output: &Vector, k: usize, target: &Vector) -> f64 {
        let mut log_n = 0.0;
        for dim in [ActionDim::LateralVelocity, ActionDim::LongitudinalAcceleration] {
            let mu = output[self.layout.mean(k, dim)];
            let s = output[self.layout.log_std(k, dim)];
            let sigma = s.exp();
            let z = (target[dim.index()] - mu) / sigma;
            log_n += -0.5 * z * z - s - 0.5 * (2.0 * PI).ln();
        }
        log_n
    }

    /// Responsibilities `r_k` and the total log-likelihood, computed with
    /// log-sum-exp for stability.
    fn responsibilities(&self, output: &Vector, target: &Vector) -> (Vec<f64>, f64) {
        let k = self.layout.components();
        let max_logit = (0..k)
            .map(|i| output[self.layout.logit(i)])
            .fold(f64::NEG_INFINITY, f64::max);
        let log_pi: Vec<f64> = {
            let exps: Vec<f64> = (0..k)
                .map(|i| (output[self.layout.logit(i)] - max_logit).exp())
                .collect();
            let z: f64 = exps.iter().sum();
            (0..k)
                .map(|i| output[self.layout.logit(i)] - max_logit - z.ln())
                .collect()
        };
        let joint: Vec<f64> = (0..k)
            .map(|i| log_pi[i] + self.component_log_density(output, i, target))
            .collect();
        let m = joint.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let z: f64 = joint.iter().map(|j| (j - m).exp()).sum();
        let log_lik = m + z.ln();
        let r: Vec<f64> = joint.iter().map(|j| (j - log_lik).exp()).collect();
        (r, log_lik)
    }
}

impl Loss for GmmNll {
    fn loss(&self, output: &Vector, target: &Vector) -> Result<f64, NnError> {
        if output.len() != self.layout.output_len() {
            return Err(NnError::Shape {
                op: "gmm nll",
                expected: self.layout.output_len(),
                got: output.len(),
            });
        }
        if target.len() != 2 {
            return Err(NnError::Shape {
                op: "gmm nll target",
                expected: 2,
                got: target.len(),
            });
        }
        let (_, log_lik) = self.responsibilities(output, target);
        Ok(-log_lik)
    }

    fn gradient(&self, output: &Vector, target: &Vector) -> Result<Vector, NnError> {
        // Validate via loss().
        self.loss(output, target)?;
        let kk = self.layout.components();
        let (r, _) = self.responsibilities(output, target);
        // Softmax weights (needed for the logit gradient).
        let max_logit = (0..kk)
            .map(|i| output[self.layout.logit(i)])
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = (0..kk)
            .map(|i| (output[self.layout.logit(i)] - max_logit).exp())
            .collect();
        let z: f64 = exps.iter().sum();
        let pi: Vec<f64> = exps.iter().map(|e| e / z).collect();

        let mut g = Vector::zeros(self.layout.output_len());
        for k in 0..kk {
            // dL/dα_k = π_k − r_k   (Bishop, mixture density networks).
            g[self.layout.logit(k)] = pi[k] - r[k];
            for dim in [ActionDim::LateralVelocity, ActionDim::LongitudinalAcceleration] {
                let mu = output[self.layout.mean(k, dim)];
                let s = output[self.layout.log_std(k, dim)];
                let sigma = s.exp();
                let t = target[dim.index()];
                // dL/dμ = r_k (μ − t)/σ².
                g[self.layout.mean(k, dim)] = r[k] * (mu - t) / (sigma * sigma);
                // dL/ds = r_k (1 − (t − μ)²/σ²)  with s = log σ.
                let zd = (t - mu) / sigma;
                g[self.layout.log_std(k, dim)] = r[k] * (1.0 - zd * zd);
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_gradient() {
        let o = Vector::from(vec![1.0, 2.0]);
        let t = Vector::from(vec![0.0, 4.0]);
        let l = MseLoss::new();
        assert!((l.loss(&o, &t).unwrap() - 2.5).abs() < 1e-12); // (1 + 4)/2
        let g = l.gradient(&o, &t).unwrap();
        assert!(g.approx_eq(&Vector::from(vec![1.0, -2.0]), 1e-12));
        assert!(l.loss(&o, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let o = Vector::from(vec![0.4, -0.7, 1.3]);
        let t = Vector::from(vec![0.1, 0.1, 0.1]);
        let l = MseLoss::new();
        let g = l.gradient(&o, &t).unwrap();
        let h = 1e-6;
        for i in 0..3 {
            let mut op = o.clone();
            op[i] += h;
            let mut om = o.clone();
            om[i] -= h;
            let fd = (l.loss(&op, &t).unwrap() - l.loss(&om, &t).unwrap()) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn gmm_nll_decreases_when_mean_approaches_target() {
        let l = GmmNll::new(2);
        let layout = l.layout();
        let target = Vector::from(vec![1.0, -0.5]);
        let mut far = Vector::zeros(layout.output_len());
        far[layout.mean(0, ActionDim::LateralVelocity)] = -3.0;
        let mut near = far.clone();
        near[layout.mean(0, ActionDim::LateralVelocity)] = 1.0;
        near[layout.mean(0, ActionDim::LongitudinalAcceleration)] = -0.5;
        assert!(l.loss(&near, &target).unwrap() < l.loss(&far, &target).unwrap());
    }

    #[test]
    fn gmm_nll_gradient_matches_finite_difference() {
        let l = GmmNll::new(3);
        let layout = l.layout();
        let target = Vector::from(vec![0.7, -0.3]);
        // A generic, asymmetric output point.
        let mut o = Vector::zeros(layout.output_len());
        for i in 0..o.len() {
            o[i] = ((i as f64) * 0.37).sin() * 0.8;
        }
        let g = l.gradient(&o, &target).unwrap();
        let h = 1e-6;
        for i in 0..o.len() {
            let mut op = o.clone();
            op[i] += h;
            let mut om = o.clone();
            om[i] -= h;
            let fd = (l.loss(&op, &target).unwrap() - l.loss(&om, &target).unwrap()) / (2.0 * h);
            assert!(
                (fd - g[i]).abs() < 1e-5,
                "output {i}: fd {fd} vs analytic {}",
                g[i]
            );
        }
    }

    #[test]
    fn gmm_nll_validates_shapes() {
        let l = GmmNll::new(2);
        assert!(l.loss(&Vector::zeros(3), &Vector::zeros(2)).is_err());
        assert!(l.loss(&Vector::zeros(10), &Vector::zeros(3)).is_err());
    }

    #[test]
    fn gmm_nll_is_finite_for_extreme_outputs() {
        let l = GmmNll::new(2);
        let layout = l.layout();
        let mut o = Vector::zeros(layout.output_len());
        o[layout.logit(0)] = 50.0;
        o[layout.logit(1)] = -50.0;
        let target = Vector::from(vec![0.0, 0.0]);
        assert!(l.loss(&o, &target).unwrap().is_finite());
        assert!(l.gradient(&o, &target).unwrap().iter().all(|g| g.is_finite()));
    }
}
