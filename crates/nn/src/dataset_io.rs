//! Plain-text (de)serialisation of datasets.
//!
//! Experiment datasets can be frozen to disk and checked in, so a
//! certification run is reproducible from artifacts rather than from the
//! simulator's code path. One line per sample:
//!
//! ```text
//! certnn-dataset v1 inputs=84 targets=2
//! 0.75 0.76 … | 0.0 -0.3
//! ```

use crate::train::Dataset;
use crate::NnError;
use certnn_linalg::Vector;

/// Serialises a dataset to the text format.
///
/// # Errors
///
/// Returns [`NnError::EmptyArchitecture`] for an empty dataset (the
/// header needs the dimensions) and [`NnError::Shape`] if samples have
/// inconsistent dimensions.
pub fn dataset_to_text(data: &Dataset) -> Result<String, NnError> {
    let Some((x0, y0)) = data.get(0) else {
        return Err(NnError::EmptyArchitecture);
    };
    let (nx, ny) = (x0.len(), y0.len());
    let mut out = String::with_capacity(data.len() * nx * 8);
    out.push_str(&format!("certnn-dataset v1 inputs={nx} targets={ny}\n"));
    for (i, (x, y)) in data.iter().enumerate() {
        if x.len() != nx || y.len() != ny {
            return Err(NnError::Shape {
                op: "dataset sample",
                expected: nx,
                got: x.len().max(i),
            });
        }
        for (k, v) in x.iter().enumerate() {
            if k > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{v:?}"));
        }
        out.push_str(" |");
        for v in y.iter() {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parses a dataset from the text format.
///
/// # Errors
///
/// Returns [`NnError::Parse`] on malformed input.
pub fn dataset_from_text(text: &str) -> Result<Dataset, NnError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| NnError::Parse("missing header".into()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("certnn-dataset") || parts.next() != Some("v1") {
        return Err(NnError::Parse(format!("bad header `{header}`")));
    }
    let parse_dim = |tok: Option<&str>, key: &str| -> Result<usize, NnError> {
        tok.and_then(|t| t.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| NnError::Parse(format!("missing {key}<n> in header")))
    };
    let nx = parse_dim(parts.next(), "inputs=")?;
    let ny = parse_dim(parts.next(), "targets=")?;

    let mut data = Dataset::new();
    for (lineno, line) in lines.enumerate() {
        let (xs, ys) = line
            .split_once('|')
            .ok_or_else(|| NnError::Parse(format!("line {}: missing `|`", lineno + 2)))?;
        let parse_vec = |s: &str, expect: usize, what: &str| -> Result<Vector, NnError> {
            let vals: Result<Vec<f64>, _> =
                s.split_whitespace().map(str::parse::<f64>).collect();
            let vals =
                vals.map_err(|_| NnError::Parse(format!("line {}: bad float", lineno + 2)))?;
            if vals.len() != expect {
                return Err(NnError::Parse(format!(
                    "line {}: {what} has {} values, expected {expect}",
                    lineno + 2,
                    vals.len()
                )));
            }
            Ok(Vector::from(vals))
        };
        data.push(parse_vec(xs, nx, "input")?, parse_vec(ys, ny, "target")?);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        (0..10)
            .map(|i| {
                let x = i as f64 / 3.0;
                (
                    Vector::from(vec![x, -x, 0.1 + 0.2]),
                    Vector::from(vec![2.0 * x]),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_exact() {
        let data = sample_dataset();
        let text = dataset_to_text(&data).unwrap();
        let back = dataset_from_text(&text).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn header_carries_dimensions() {
        let text = dataset_to_text(&sample_dataset()).unwrap();
        assert!(text.starts_with("certnn-dataset v1 inputs=3 targets=1\n"));
    }

    #[test]
    fn empty_dataset_rejected_on_save() {
        assert!(dataset_to_text(&Dataset::new()).is_err());
    }

    #[test]
    fn malformed_inputs_rejected_on_load() {
        assert!(dataset_from_text("").is_err());
        assert!(dataset_from_text("wrong v1 inputs=1 targets=1\n").is_err());
        assert!(dataset_from_text("certnn-dataset v1 inputs=1 targets=1\n1.0 2.0\n").is_err());
        assert!(
            dataset_from_text("certnn-dataset v1 inputs=2 targets=1\n1.0 | 2.0\n").is_err(),
            "wrong input arity must fail"
        );
        assert!(
            dataset_from_text("certnn-dataset v1 inputs=1 targets=1\nx | 2.0\n").is_err(),
            "non-numeric must fail"
        );
    }

    #[test]
    fn inconsistent_sample_dimensions_rejected_on_save() {
        let mut data = sample_dataset();
        data.push(Vector::zeros(5), Vector::zeros(1));
        assert!(dataset_to_text(&data).is_err());
    }
}
