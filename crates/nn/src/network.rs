//! Feedforward networks: forward passes, traces and gradients.

use crate::activation::Activation;
use crate::layer::{DenseLayer, LayerGradient};
use crate::NnError;
use certnn_linalg::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A feedforward network: a chain of [`DenseLayer`]s.
///
/// The paper's case-study family `I4×N` is constructed with
/// [`Network::relu_mlp`]: four hidden ReLU layers of width `N` and a linear
/// output layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<DenseLayer>,
}

/// Full record of one forward pass: inputs, every pre-activation and every
/// post-activation. Consumed by backpropagation, by the MC/DC analysis in
/// `certnn-trace` (ReLU branch outcomes) and by counterexample checking in
/// `certnn-verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace {
    /// The network input.
    pub input: Vector,
    /// Pre-activation `z = W·a + b` per layer.
    pub pre_activations: Vec<Vector>,
    /// Post-activation `a = act(z)` per layer (last entry = network output).
    pub activations: Vec<Vector>,
}

impl ForwardTrace {
    /// The network output (post-activation of the last layer).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (cannot happen for traces produced by
    /// [`Network::forward_trace`]).
    pub fn output(&self) -> &Vector {
        self.activations.last().expect("nonempty trace")
    }
}

impl Network {
    /// Creates a network from layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyArchitecture`] for an empty list, or
    /// [`NnError::LayerMismatch`] if consecutive layer widths do not chain.
    pub fn new(layers: Vec<DenseLayer>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::EmptyArchitecture);
        }
        for i in 1..layers.len() {
            if layers[i - 1].outputs() != layers[i].inputs() {
                return Err(NnError::LayerMismatch {
                    layer: i,
                    prev_out: layers[i - 1].outputs(),
                    this_in: layers[i].inputs(),
                });
            }
        }
        Ok(Self { layers })
    }

    /// Creates the paper's `I⟨hidden.len()⟩×N` architecture: `inputs` →
    /// hidden ReLU layers of the given widths → a linear layer of
    /// `outputs` neurons. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyArchitecture`] if `inputs`, `outputs` or any
    /// hidden width is zero.
    pub fn relu_mlp(
        inputs: usize,
        hidden: &[usize],
        outputs: usize,
        seed: u64,
    ) -> Result<Self, NnError> {
        if inputs == 0 || outputs == 0 || hidden.contains(&0) {
            return Err(NnError::EmptyArchitecture);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = inputs;
        for &w in hidden {
            layers.push(DenseLayer::random(prev, w, Activation::Relu, &mut rng));
            prev = w;
        }
        layers.push(DenseLayer::random(
            prev,
            outputs,
            Activation::Identity,
            &mut rng,
        ));
        Self::new(layers)
    }

    /// The layers, input-first.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable access to the layers (used by optimisers).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("nonempty").outputs()
    }

    /// Total number of hidden ReLU neurons (the quantity that drives MILP
    /// verification hardness).
    pub fn num_relu_neurons(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.activation() == Activation::Relu)
            .map(|l| l.outputs())
            .sum()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Architecture label in the paper's notation, e.g. `I4×10` for four
    /// hidden layers of ten neurons.
    pub fn label(&self) -> String {
        let hidden: Vec<usize> = self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.outputs())
            .collect();
        if !hidden.is_empty() && hidden.iter().all(|&w| w == hidden[0]) {
            format!("I{}x{}", hidden.len(), hidden[0])
        } else {
            let widths: Vec<String> = hidden.iter().map(|w| w.to_string()).collect();
            format!("I[{}]", widths.join(","))
        }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != self.inputs()`.
    pub fn forward(&self, x: &Vector) -> Result<Vector, NnError> {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.forward(&a)?;
        }
        Ok(a)
    }

    /// Forward pass recording every pre- and post-activation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != self.inputs()`.
    pub fn forward_trace(&self, x: &Vector) -> Result<ForwardTrace, NnError> {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = Vec::with_capacity(self.layers.len());
        let mut a = x.clone();
        for layer in &self.layers {
            let z = layer.pre_activation(&a)?;
            a = z.map(|v| layer.activation().apply(v));
            pre.push(z);
            post.push(a.clone());
        }
        Ok(ForwardTrace {
            input: x.clone(),
            pre_activations: pre,
            activations: post,
        })
    }

    /// Gradients of a scalar loss with respect to every layer's
    /// *post-activations*, given the loss gradient at the output.
    ///
    /// Entry `l` of the result has the width of layer `l`; the last entry
    /// equals `dl_dout`. Used by gradient-guided branching in
    /// `certnn-verify` and by attribution analyses.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] under the same conditions as
    /// [`Network::backward`].
    pub fn activation_gradients(
        &self,
        trace: &ForwardTrace,
        dl_dout: &Vector,
    ) -> Result<Vec<Vector>, NnError> {
        if dl_dout.len() != self.outputs() {
            return Err(NnError::Shape {
                op: "activation gradients",
                expected: self.outputs(),
                got: dl_dout.len(),
            });
        }
        if trace.pre_activations.len() != self.layers.len() {
            return Err(NnError::Shape {
                op: "activation gradients trace",
                expected: self.layers.len(),
                got: trace.pre_activations.len(),
            });
        }
        let mut grads = vec![Vector::zeros(0); self.layers.len()];
        let mut delta = dl_dout.clone();
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            grads[idx] = delta.clone();
            let z = &trace.pre_activations[idx];
            let dz: Vector = z
                .iter()
                .zip(delta.iter())
                .map(|(&zi, &di)| di * layer.activation().derivative(zi))
                .collect();
            delta = layer
                .weights()
                .mul_vector_transposed(&dz)
                .map_err(|_| NnError::Shape {
                    op: "activation gradients chain",
                    expected: layer.outputs(),
                    got: dz.len(),
                })?;
        }
        Ok(grads)
    }

    /// Reverse-mode gradients of a scalar loss, given the gradient of the
    /// loss w.r.t. the network output (`dl_dout`) and the forward trace of
    /// the same input.
    ///
    /// Returns per-layer parameter gradients (input-first order) and the
    /// gradient w.r.t. the network input (useful for attribution in
    /// `certnn-trace`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `dl_dout.len() != self.outputs()` or
    /// the trace does not match the architecture.
    pub fn backward(
        &self,
        trace: &ForwardTrace,
        dl_dout: &Vector,
    ) -> Result<(Vec<LayerGradient>, Vector), NnError> {
        if dl_dout.len() != self.outputs() {
            return Err(NnError::Shape {
                op: "backward output gradient",
                expected: self.outputs(),
                got: dl_dout.len(),
            });
        }
        if trace.pre_activations.len() != self.layers.len() {
            return Err(NnError::Shape {
                op: "backward trace",
                expected: self.layers.len(),
                got: trace.pre_activations.len(),
            });
        }
        let mut grads: Vec<LayerGradient> = Vec::with_capacity(self.layers.len());
        let mut delta = dl_dout.clone();
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let z = &trace.pre_activations[idx];
            // delta_z = delta ⊙ act'(z)
            let dz: Vector = z
                .iter()
                .zip(delta.iter())
                .map(|(&zi, &di)| di * layer.activation().derivative(zi))
                .collect();
            let layer_input: &Vector = if idx == 0 {
                &trace.input
            } else {
                &trace.activations[idx - 1]
            };
            let gw = Matrix::outer(&dz, layer_input);
            let gb = dz.clone();
            grads.push(LayerGradient {
                weights: gw,
                bias: gb,
            });
            delta = layer
                .weights()
                .mul_vector_transposed(&dz)
                .map_err(|_| NnError::Shape {
                    op: "backward chain",
                    expected: layer.outputs(),
                    got: dz.len(),
                })?;
        }
        grads.reverse();
        Ok((grads, delta))
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} -> ", self.label(), self.inputs())?;
        for l in &self.layers {
            write!(f, "{}[{}] ", l.outputs(), l.activation())?;
        }
        write!(f, ") {} params", self.num_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        // 2 -> 3 relu -> 1 identity, fixed weights.
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap(),
            Vector::from(vec![0.0, -0.5, 0.25]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, -2.0, 0.5]]).unwrap(),
            Vector::from(vec![0.1]),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    #[test]
    fn forward_matches_manual_computation() {
        let net = tiny();
        let x = Vector::from(vec![1.0, 2.0]);
        // z1 = [1, 1.5, 3.25] all positive -> a1 = z1.
        // out = 1*1 - 2*1.5 + 0.5*3.25 + 0.1 = 1 - 3 + 1.625 + 0.1 = -0.275.
        let y = net.forward(&x).unwrap();
        assert!((y[0] + 0.275).abs() < 1e-12);
    }

    #[test]
    fn trace_records_all_layers() {
        let net = tiny();
        let t = net.forward_trace(&Vector::from(vec![-1.0, 0.0])).unwrap();
        assert_eq!(t.pre_activations.len(), 2);
        assert_eq!(t.activations.len(), 2);
        // z1 = [-1, -0.5, -0.75] -> a1 = zeros.
        assert!(t.activations[0].approx_eq(&Vector::zeros(3), 1e-12));
        assert_eq!(t.output().len(), 1);
        assert!((t.output()[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn layer_mismatch_detected() {
        let l1 = DenseLayer::random(
            2,
            3,
            Activation::Relu,
            &mut StdRng::seed_from_u64(0),
        );
        let l2 = DenseLayer::random(
            4,
            1,
            Activation::Identity,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(matches!(
            Network::new(vec![l1, l2]),
            Err(NnError::LayerMismatch { .. })
        ));
        assert!(matches!(
            Network::new(vec![]),
            Err(NnError::EmptyArchitecture)
        ));
    }

    #[test]
    fn relu_mlp_builds_paper_architectures() {
        let net = Network::relu_mlp(84, &[10, 10, 10, 10], 5, 7).unwrap();
        assert_eq!(net.inputs(), 84);
        assert_eq!(net.outputs(), 5);
        assert_eq!(net.num_relu_neurons(), 40);
        assert_eq!(net.label(), "I4x10");
        assert!(Network::relu_mlp(0, &[10], 5, 7).is_err());
        assert!(Network::relu_mlp(84, &[0], 5, 7).is_err());
    }

    #[test]
    fn relu_mlp_is_seed_deterministic() {
        let a = Network::relu_mlp(4, &[8, 8], 2, 11).unwrap();
        let b = Network::relu_mlp(4, &[8, 8], 2, 11).unwrap();
        let c = Network::relu_mlp(4, &[8, 8], 2, 12).unwrap();
        let x = Vector::from(vec![0.3, -0.2, 0.9, 0.1]);
        assert!(a
            .forward(&x)
            .unwrap()
            .approx_eq(&b.forward(&x).unwrap(), 0.0));
        assert!(!a
            .forward(&x)
            .unwrap()
            .approx_eq(&c.forward(&x).unwrap(), 1e-9));
    }

    #[test]
    fn backward_matches_finite_differences() {
        // Scalar loss L = output[0]; check dL/dW numerically.
        let net = Network::relu_mlp(3, &[4, 4], 2, 99).unwrap();
        let x = Vector::from(vec![0.5, -0.3, 0.8]);
        let trace = net.forward_trace(&x).unwrap();
        let dl = Vector::from(vec![1.0, 0.0]);
        let (grads, dx) = net.backward(&trace, &dl).unwrap();

        let h = 1e-6;
        // Check several weight entries in every layer.
        for (li, layer) in net.layers().iter().enumerate() {
            for &(r, c) in &[(0usize, 0usize), (1, 2)] {
                if r >= layer.outputs() || c >= layer.inputs() {
                    continue;
                }
                let mut plus = net.clone();
                plus.layers_mut()[li].weights_mut()[(r, c)] += h;
                let mut minus = net.clone();
                minus.layers_mut()[li].weights_mut()[(r, c)] -= h;
                let fd = (plus.forward(&x).unwrap()[0] - minus.forward(&x).unwrap()[0]) / (2.0 * h);
                let an = grads[li].weights[(r, c)];
                assert!(
                    (fd - an).abs() < 1e-5,
                    "layer {li} W[{r},{c}]: fd {fd} vs analytic {an}"
                );
            }
            // And a bias entry.
            let mut plus = net.clone();
            plus.layers_mut()[li].bias_mut()[0] += h;
            let mut minus = net.clone();
            minus.layers_mut()[li].bias_mut()[0] -= h;
            let fd = (plus.forward(&x).unwrap()[0] - minus.forward(&x).unwrap()[0]) / (2.0 * h);
            assert!((fd - grads[li].bias[0]).abs() < 1e-5, "layer {li} bias");
        }
        // Input gradient.
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (net.forward(&xp).unwrap()[0] - net.forward(&xm).unwrap()[0]) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-5, "input {i}");
        }
    }

    #[test]
    fn activation_gradients_match_finite_differences() {
        // Perturbing a hidden activation by h changes the output by
        // approximately grad * h; check via an ablation-style surrogate:
        // compare against input-gradient chain on a smooth path.
        let net = Network::relu_mlp(3, &[5, 4], 2, 123).unwrap();
        let x = Vector::from(vec![0.4, -0.2, 0.7]);
        let trace = net.forward_trace(&x).unwrap();
        let seed = Vector::from(vec![1.0, -2.0]);
        let grads = net.activation_gradients(&trace, &seed).unwrap();
        assert_eq!(grads.len(), 3); // two hidden layers + linear output
        assert_eq!(grads[0].len(), 5);
        // Last layer's gradient is the seed itself.
        assert!(grads[2].approx_eq(&seed, 0.0));
        // Check layer-0 gradients by finite differences on a truncated
        // network: f(a) = seed · out(layers[1..](a)).
        let tail = Network::new(net.layers()[1..].to_vec()).unwrap();
        let a0 = trace.activations[0].clone();
        let h = 1e-6;
        for j in 0..5 {
            let mut plus = a0.clone();
            plus[j] += h;
            let mut minus = a0.clone();
            minus[j] -= h;
            let fp = seed.dot(&tail.forward(&plus).unwrap()).unwrap();
            let fm = seed.dot(&tail.forward(&minus).unwrap()).unwrap();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - grads[0][j]).abs() < 1e-5,
                "neuron {j}: fd {fd} vs {}",
                grads[0][j]
            );
        }
    }

    #[test]
    fn backward_validates_shapes() {
        let net = tiny();
        let t = net.forward_trace(&Vector::from(vec![1.0, 1.0])).unwrap();
        assert!(net.backward(&t, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn display_contains_label() {
        let net = Network::relu_mlp(84, &[20, 20, 20, 20], 5, 0).unwrap();
        assert!(net.to_string().contains("I4x20"));
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
