//! Training with hints (safety-rule regularisation).
//!
//! The paper's concluding remark (iii) proposes "training under known
//! properties on the target function (known as hints [Abu-Mostafa 1995]),
//! such as safety rules". A [`SafetyHint`] is the simplest useful instance:
//! a guarded output cap. Whenever a training input satisfies the guard
//! (e.g. *a vehicle is present on the left*), the hint adds a quadratic
//! penalty on the amount by which a designated output neuron (e.g. the
//! lateral-velocity mean) exceeds its permitted maximum.
//!
//! The `hints_ablation` bench in `certnn-bench` sweeps the hint weight and
//! re-verifies the trained networks, quantifying how much the hint tightens
//! the formally verified maximum.

use certnn_linalg::Vector;

/// A guarded output-cap hint: if `input[guard_feature] ≥ guard_threshold`
/// then penalise `weight · max(0, output[output_index] − max_value)²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyHint {
    /// Input feature that encodes the guard (e.g. "vehicle on left" flag).
    pub guard_feature: usize,
    /// Guard activates when the feature is at least this value.
    pub guard_threshold: f64,
    /// Output neuron the cap applies to.
    pub output_index: usize,
    /// Permitted maximum for the output under the guard.
    pub max_value: f64,
    /// Penalty weight λ (0 disables the hint).
    pub weight: f64,
}

impl SafetyHint {
    /// Returns `true` if the guard fires for `input`.
    ///
    /// # Panics
    ///
    /// Panics if `guard_feature` is out of range for `input`.
    pub fn active(&self, input: &Vector) -> bool {
        input[self.guard_feature] >= self.guard_threshold
    }

    /// Penalty value for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `guard_feature`/`output_index` are out of range.
    pub fn penalty(&self, input: &Vector, output: &Vector) -> f64 {
        if !self.active(input) {
            return 0.0;
        }
        let excess = (output[self.output_index] - self.max_value).max(0.0);
        self.weight * excess * excess
    }

    /// Adds the penalty's gradient w.r.t. the network output onto `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `guard_feature`/`output_index` are out of range.
    pub fn accumulate_gradient(&self, input: &Vector, output: &Vector, grad: &mut Vector) {
        if !self.active(input) {
            return;
        }
        let excess = (output[self.output_index] - self.max_value).max(0.0);
        grad[self.output_index] += 2.0 * self.weight * excess;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint() -> SafetyHint {
        SafetyHint {
            guard_feature: 1,
            guard_threshold: 0.5,
            output_index: 0,
            max_value: 1.0,
            weight: 2.0,
        }
    }

    #[test]
    fn guard_controls_activation() {
        let h = hint();
        assert!(h.active(&Vector::from(vec![0.0, 1.0])));
        assert!(!h.active(&Vector::from(vec![0.0, 0.0])));
    }

    #[test]
    fn penalty_is_zero_within_cap() {
        let h = hint();
        let input = Vector::from(vec![0.0, 1.0]);
        assert_eq!(h.penalty(&input, &Vector::from(vec![0.5])), 0.0);
        assert_eq!(h.penalty(&input, &Vector::from(vec![1.0])), 0.0);
    }

    #[test]
    fn penalty_grows_quadratically_above_cap() {
        let h = hint();
        let input = Vector::from(vec![0.0, 1.0]);
        // excess 2 -> 2 * 2² = 8.
        assert!((h.penalty(&input, &Vector::from(vec![3.0])) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let h = hint();
        let input = Vector::from(vec![0.0, 1.0]);
        for &v in &[0.2, 1.5, 4.0] {
            let out = Vector::from(vec![v]);
            let mut g = Vector::zeros(1);
            h.accumulate_gradient(&input, &out, &mut g);
            let eps = 1e-6;
            let fd = (h.penalty(&input, &Vector::from(vec![v + eps]))
                - h.penalty(&input, &Vector::from(vec![v - eps])))
                / (2.0 * eps);
            assert!((g[0] - fd).abs() < 1e-5, "at {v}: {} vs {fd}", g[0]);
        }
    }

    #[test]
    fn inactive_guard_contributes_nothing() {
        let h = hint();
        let input = Vector::from(vec![0.0, 0.0]);
        let mut g = Vector::zeros(1);
        h.accumulate_gradient(&input, &Vector::from(vec![9.0]), &mut g);
        assert_eq!(g[0], 0.0);
    }
}
