//! Fully connected layers.

use crate::activation::Activation;
use crate::NnError;
use certnn_linalg::{init, Matrix, Vector};
use rand::Rng;

/// A dense (fully connected) layer `y = act(W·x + b)`.
///
/// Weights are stored row-major with one row per output neuron, which is
/// also the orientation the MILP encoder in `certnn-verify` consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vector,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `bias.len() != weights.rows()`.
    pub fn new(weights: Matrix, bias: Vector, activation: Activation) -> Result<Self, NnError> {
        if bias.len() != weights.rows() {
            return Err(NnError::Shape {
                op: "layer bias",
                expected: weights.rows(),
                got: bias.len(),
            });
        }
        Ok(Self {
            weights,
            bias,
            activation,
        })
    }

    /// Creates a randomly initialised layer (He for ReLU, Xavier otherwise).
    pub fn random<R: Rng + ?Sized>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let scheme = match activation {
            Activation::Relu => init::Scheme::He,
            _ => init::Scheme::Xavier,
        };
        Self {
            weights: init::matrix(outputs, inputs, scheme, rng),
            bias: Vector::zeros(outputs),
            activation,
        }
    }

    /// Number of inputs the layer accepts.
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of outputs (neurons).
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix (`outputs × inputs`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access to the weight matrix (used by optimisers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// Mutable access to the bias vector (used by optimisers).
    pub fn bias_mut(&mut self) -> &mut Vector {
        &mut self.bias
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Pre-activation `W·x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != self.inputs()`.
    pub fn pre_activation(&self, x: &Vector) -> Result<Vector, NnError> {
        let z = self.weights.mul_vector(x).map_err(|_| NnError::Shape {
            op: "layer forward",
            expected: self.inputs(),
            got: x.len(),
        })?;
        Ok(&z + &self.bias)
    }

    /// Full forward pass `act(W·x + b)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != self.inputs()`.
    pub fn forward(&self, x: &Vector) -> Result<Vector, NnError> {
        let z = self.pre_activation(x)?;
        Ok(z.map(|v| self.activation.apply(v)))
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }
}

/// Gradients of a layer's parameters for one backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradient {
    /// Gradient of the loss w.r.t. the weights.
    pub weights: Matrix,
    /// Gradient of the loss w.r.t. the bias.
    pub bias: Vector,
}

impl LayerGradient {
    /// Zero gradient matching `layer`'s shapes.
    pub fn zeros_like(layer: &DenseLayer) -> Self {
        Self {
            weights: Matrix::zeros(layer.outputs(), layer.inputs()),
            bias: Vector::zeros(layer.outputs()),
        }
    }

    /// Accumulates another gradient scaled by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn accumulate(&mut self, other: &LayerGradient, scale: f64) {
        self.weights
            .add_scaled(&other.weights, scale)
            .expect("gradient shape mismatch");
        let scaled = other.bias.scaled(scale);
        self.bias += &scaled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> DenseLayer {
        DenseLayer::new(
            Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.5]]).unwrap(),
            Vector::from(vec![0.0, -1.0]),
            Activation::Relu,
        )
        .unwrap()
    }

    #[test]
    fn forward_applies_affine_then_relu() {
        let l = layer();
        let y = l.forward(&Vector::from(vec![2.0, 1.0])).unwrap();
        // z = [2-1, 1+0.5-1] = [1, 0.5]; relu unchanged.
        assert!(y.approx_eq(&Vector::from(vec![1.0, 0.5]), 1e-12));
        let y2 = l.forward(&Vector::from(vec![-2.0, 1.0])).unwrap();
        // z = [-3, -1.5] -> relu zeros.
        assert!(y2.approx_eq(&Vector::zeros(2), 1e-12));
    }

    #[test]
    fn bias_shape_validated() {
        let bad = DenseLayer::new(
            Matrix::zeros(2, 3),
            Vector::zeros(3),
            Activation::Identity,
        );
        assert!(matches!(bad, Err(NnError::Shape { .. })));
    }

    #[test]
    fn forward_shape_validated() {
        let l = layer();
        assert!(matches!(
            l.forward(&Vector::zeros(3)),
            Err(NnError::Shape { .. })
        ));
    }

    #[test]
    fn random_layer_has_declared_shape_and_zero_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = DenseLayer::random(5, 7, Activation::Relu, &mut rng);
        assert_eq!(l.inputs(), 5);
        assert_eq!(l.outputs(), 7);
        assert!(l.bias().approx_eq(&Vector::zeros(7), 0.0));
        assert_eq!(l.num_params(), 42);
    }

    #[test]
    fn gradient_accumulation() {
        let l = layer();
        let mut g = LayerGradient::zeros_like(&l);
        let mut other = LayerGradient::zeros_like(&l);
        other.weights[(0, 0)] = 2.0;
        other.bias[1] = 4.0;
        g.accumulate(&other, 0.5);
        assert_eq!(g.weights[(0, 0)], 1.0);
        assert_eq!(g.bias[1], 2.0);
    }
}
