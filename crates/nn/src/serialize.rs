//! Plain-text (de)serialisation of networks.
//!
//! The format is deliberately simple and diff-friendly so trained
//! experiment artifacts can be checked into a repository:
//!
//! ```text
//! certnn-network v1
//! layers 2
//! layer 3 2 relu        # outputs inputs activation
//! w 1 0 -1 0 1 1        # row-major weights
//! b 0 -0.5 0.25
//! layer 1 3 identity
//! w 1 -2 0.5
//! b 0.1
//! ```

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::network::Network;
use crate::NnError;
use certnn_linalg::{Matrix, Vector};

/// Serialises a network to the plain-text format.
pub fn to_text(net: &Network) -> String {
    let mut out = String::new();
    out.push_str("certnn-network v1\n");
    out.push_str(&format!("layers {}\n", net.layers().len()));
    for layer in net.layers() {
        out.push_str(&format!(
            "layer {} {} {}\n",
            layer.outputs(),
            layer.inputs(),
            layer.activation()
        ));
        out.push('w');
        for v in layer.weights().as_slice() {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
        out.push('b');
        for v in layer.bias().as_slice() {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
    out
}

/// Parses a network from the plain-text format.
///
/// # Errors
///
/// Returns [`NnError::Parse`] on any malformed input, and the usual
/// construction errors if the parsed layers do not chain.
pub fn from_text(text: &str) -> Result<Network, NnError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| parse_err("missing header"))?;
    if header.trim() != "certnn-network v1" {
        return Err(parse_err(&format!("bad header `{header}`")));
    }
    let count_line = lines.next().ok_or_else(|| parse_err("missing layer count"))?;
    let n_layers: usize = count_line
        .trim()
        .strip_prefix("layers ")
        .ok_or_else(|| parse_err("missing `layers` line"))?
        .parse()
        .map_err(|_| parse_err("bad layer count"))?;
    let mut layers = Vec::with_capacity(n_layers);
    for i in 0..n_layers {
        let spec = lines
            .next()
            .ok_or_else(|| parse_err(&format!("missing layer {i} spec")))?;
        let mut parts = spec.split_whitespace();
        if parts.next() != Some("layer") {
            return Err(parse_err(&format!("layer {i}: expected `layer` line")));
        }
        let outputs: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(&format!("layer {i}: bad outputs")))?;
        let inputs: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(&format!("layer {i}: bad inputs")))?;
        let activation: Activation = parts
            .next()
            .ok_or_else(|| parse_err(&format!("layer {i}: missing activation")))?
            .parse()?;
        let w_line = lines
            .next()
            .ok_or_else(|| parse_err(&format!("layer {i}: missing weights")))?;
        let weights = parse_floats(w_line, 'w', outputs * inputs, i)?;
        let b_line = lines
            .next()
            .ok_or_else(|| parse_err(&format!("layer {i}: missing bias")))?;
        let bias = parse_floats(b_line, 'b', outputs, i)?;
        let weights = Matrix::from_flat(outputs, inputs, weights)
            .map_err(|e| parse_err(&format!("layer {i}: {e}")))?;
        layers.push(DenseLayer::new(weights, Vector::from(bias), activation)?);
    }
    Network::new(layers)
}

fn parse_floats(line: &str, tag: char, expected: usize, layer: usize) -> Result<Vec<f64>, NnError> {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some(t) if t.len() == 1 && t.starts_with(tag) => {}
        _ => return Err(parse_err(&format!("layer {layer}: expected `{tag}` line"))),
    }
    let values: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
    let values = values.map_err(|_| parse_err(&format!("layer {layer}: bad float")))?;
    if values.len() != expected {
        return Err(parse_err(&format!(
            "layer {layer}: expected {expected} values on `{tag}`, got {}",
            values.len()
        )));
    }
    Ok(values)
}

fn parse_err(msg: &str) -> NnError {
    NnError::Parse(msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Vector;

    #[test]
    fn roundtrip_preserves_network_exactly() {
        let net = Network::relu_mlp(6, &[5, 4], 3, 31).unwrap();
        let text = to_text(&net);
        let back = from_text(&text).unwrap();
        assert_eq!(net, back);
        // And the function computed is identical.
        let x = Vector::from(vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]);
        assert!(net
            .forward(&x)
            .unwrap()
            .approx_eq(&back.forward(&x).unwrap(), 0.0));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(from_text("something else\n").is_err());
        assert!(from_text("").is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let net = Network::relu_mlp(2, &[3], 1, 0).unwrap();
        let text = to_text(&net);
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(from_text(&truncated).is_err());
    }

    #[test]
    fn wrong_value_count_rejected() {
        let text = "certnn-network v1\nlayers 1\nlayer 1 2 relu\nw 1.0\nb 0.0\n";
        let err = from_text(text).unwrap_err();
        assert!(err.to_string().contains("expected 2 values"));
    }

    #[test]
    fn unknown_activation_rejected() {
        let text = "certnn-network v1\nlayers 1\nlayer 1 1 swish\nw 1.0\nb 0.0\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn exact_float_bits_survive_roundtrip() {
        // `{:?}` prints the shortest representation that parses back
        // exactly; verify on an awkward constant.
        let w = Matrix::from_flat(1, 1, vec![0.1 + 0.2]).unwrap();
        let layer = DenseLayer::new(w, Vector::from(vec![1.0 / 3.0]), Activation::Identity).unwrap();
        let net = Network::new(vec![layer]).unwrap();
        let back = from_text(&to_text(&net)).unwrap();
        assert_eq!(net, back);
    }
}
