//! Activation functions.
//!
//! The paper's discussion of testing (Sec. II) hinges on the activation
//! choice: `tanh` has no branches (MC/DC trivially satisfiable with a
//! single test), while ReLU introduces one if-then-else per neuron (MC/DC
//! intractable, but exactly encodable as a mixed-integer constraint). The
//! verification path therefore supports ReLU and identity exactly, and
//! `certnn-trace` measures branch coverage only on ReLU layers.

use certnn_linalg::Interval;
use std::fmt;

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)` — piecewise linear, MILP-encodable.
    #[default]
    Relu,
    /// Hyperbolic tangent — smooth, branch-free.
    Tanh,
    /// Identity (used for linear output layers).
    Identity,
}

impl Activation {
    /// Applies the function to a scalar.
    ///
    /// # Example
    ///
    /// ```
    /// use certnn_nn::activation::Activation;
    /// assert_eq!(Activation::Relu.apply(-3.0), 0.0);
    /// assert_eq!(Activation::Identity.apply(-3.0), -3.0);
    /// ```
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative at `x` (for ReLU the subgradient convention `f'(0) = 0`).
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Sound interval transfer function: the image of `input` under the
    /// activation (exact for these monotone functions).
    pub fn interval(&self, input: Interval) -> Interval {
        match self {
            Activation::Relu => input.relu(),
            Activation::Tanh => input.tanh(),
            Activation::Identity => input,
        }
    }

    /// `true` if the function introduces a branch per neuron (relevant for
    /// the MC/DC analysis of `certnn-trace`).
    pub fn has_branch(&self) -> bool {
        matches!(self, Activation::Relu)
    }

    /// `true` if the function is piecewise linear and therefore exactly
    /// MILP-encodable by `certnn-verify`.
    pub fn is_piecewise_linear(&self) -> bool {
        matches!(self, Activation::Relu | Activation::Identity)
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        })
    }
}

impl std::str::FromStr for Activation {
    type Err = crate::NnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "relu" => Ok(Activation::Relu),
            "tanh" => Ok(Activation::Tanh),
            "identity" => Ok(Activation::Identity),
            other => Err(crate::NnError::Parse(format!(
                "unknown activation `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values_and_derivative() {
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.derivative(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-2.0), 0.0);
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-6;
            let fd = (Activation::Tanh.apply(x + h) - Activation::Tanh.apply(x - h)) / (2.0 * h);
            assert!((Activation::Tanh.derivative(x) - fd).abs() < 1e-8);
        }
    }

    #[test]
    fn interval_transfer_is_sound_on_samples() {
        let iv = Interval::new(-1.5, 0.75);
        for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
            let out = act.interval(iv);
            let mut x = iv.lo();
            while x <= iv.hi() {
                assert!(out.contains(act.apply(x)), "{act} at {x}");
                x += 0.05;
            }
        }
    }

    #[test]
    fn branch_and_linearity_flags() {
        assert!(Activation::Relu.has_branch());
        assert!(!Activation::Tanh.has_branch());
        assert!(Activation::Relu.is_piecewise_linear());
        assert!(!Activation::Tanh.is_piecewise_linear());
        assert!(Activation::Identity.is_piecewise_linear());
    }

    #[test]
    fn parse_roundtrip() {
        for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
            let s = act.to_string();
            assert_eq!(s.parse::<Activation>().unwrap(), act);
        }
        assert!("gelu".parse::<Activation>().is_err());
    }
}
