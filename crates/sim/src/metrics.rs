//! Traffic-quality metrics: validating the simulator itself.
//!
//! The substitution argument of DESIGN.md rests on the synthetic traffic
//! being *plausible*; these metrics quantify that. They are recorded over
//! a run and checked by tests (no collisions, sane headways, realistic
//! lane-change rates) — the simulator's own acceptance test, in the
//! spirit of the paper's specification-validity pillar.

use crate::simulation::Simulation;
use certnn_linalg::stats::Summary;
use std::fmt;

/// Aggregated observations over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct TrafficMetrics {
    /// Speed observations across all vehicles and steps (m/s).
    pub speed: Summary,
    /// Bumper-to-bumper gap to the same-lane leader (m), when one exists.
    pub leader_gap: Summary,
    /// Time headway to the leader (s), when moving.
    pub time_headway: Summary,
    /// Completed lane changes observed.
    pub lane_changes: usize,
    /// Steps observed.
    pub steps: usize,
    /// Vehicle-steps with a same-lane gap below 1 m (near-collisions).
    pub near_collisions: usize,
}

impl TrafficMetrics {
    /// Lane changes per vehicle per minute of simulated time.
    pub fn lane_change_rate(&self, vehicles: usize, dt: f64) -> f64 {
        let minutes = self.steps as f64 * dt / 60.0;
        if minutes <= 0.0 || vehicles == 0 {
            return 0.0;
        }
        self.lane_changes as f64 / vehicles as f64 / minutes
    }
}

impl fmt::Display for TrafficMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "traffic metrics over {} steps: speed {:.1}±{:.1} m/s, leader gap {:.1} m (min {:.1}), headway {:.2} s, {} lane changes, {} near-collisions",
            self.steps,
            self.speed.mean(),
            self.speed.std_dev(),
            self.leader_gap.mean(),
            self.leader_gap.min(),
            self.time_headway.mean(),
            self.lane_changes,
            self.near_collisions
        )
    }
}

/// Steps `sim` for `steps` iterations, recording metrics.
pub fn observe(sim: &mut Simulation, steps: usize) -> TrafficMetrics {
    let mut m = TrafficMetrics::default();
    let mut prev_lanes: Vec<(usize, bool)> = sim
        .vehicles()
        .iter()
        .map(|v| (v.lane, v.is_changing_lane()))
        .collect();
    for _ in 0..steps {
        sim.step();
        m.steps += 1;
        for (k, v) in sim.vehicles().iter().enumerate() {
            m.speed.push(v.v);
            // A completed change: was changing, now settled.
            let (_, was_changing) = prev_lanes[k];
            if was_changing && !v.is_changing_lane() {
                m.lane_changes += 1;
            }
            prev_lanes[k] = (v.lane, v.is_changing_lane());
        }
        let min_gap = sim.min_same_lane_gap();
        if min_gap.is_finite() {
            m.leader_gap.push(min_gap);
            if min_gap < 1.0 {
                m.near_collisions += 1;
            }
        }
        // Ego headway as the representative probe.
        if let Ok(ego) = sim.vehicle(sim.ego_id()) {
            if ego.v > 1.0 {
                if let Some((veh, dx)) = {
                    // Leader = nearest forward in ego's lane beyond the side window.
                    let lane = ego.lane;
                    let id = sim
                        .vehicles()
                        .iter()
                        .position(|v| v.id() == sim.ego_id())
                        .expect("ego exists");
                    sim_nearest_front(sim, id, lane)
                } {
                    let _ = veh;
                    m.time_headway.push(dx / ego.v);
                }
            }
        }
    }
    m
}

/// Nearest strictly-forward neighbour of vehicle index `idx` in `lane`.
fn sim_nearest_front(
    sim: &Simulation,
    idx: usize,
    lane: usize,
) -> Option<(usize, f64)> {
    let me = &sim.vehicles()[idx];
    let road = sim.road();
    let mut best: Option<(usize, f64)> = None;
    for (i, other) in sim.vehicles().iter().enumerate() {
        if i == idx || other.lane != lane {
            continue;
        }
        let dx = road.forward_gap(me.s, other.s);
        if dx <= 0.0 || dx > 0.5 * road.length() {
            continue;
        }
        match best {
            Some((_, b)) if dx >= b => {}
            _ => best = Some((i, dx)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::Road;
    use crate::simulation::Simulation;

    #[test]
    fn metrics_of_dense_traffic_are_plausible() {
        let mut sim = Simulation::random_traffic(Road::motorway(), 24, 9).unwrap();
        let m = observe(&mut sim, 1200); // 2 simulated minutes
        println!("{m}");
        // No near-collisions whatsoever.
        assert_eq!(m.near_collisions, 0);
        // Speeds in a sane motorway band.
        assert!(m.speed.mean() > 10.0 && m.speed.mean() < 40.0);
        // Headways: humans drive ~1–3 s; IDM with T=1.2 should land there.
        assert!(
            m.time_headway.mean() > 0.5 && m.time_headway.mean() < 10.0,
            "headway {}",
            m.time_headway.mean()
        );
        // Some overtaking happens, but not constant weaving.
        let rate = m.lane_change_rate(24, 0.1);
        assert!(rate < 4.0, "implausible weaving: {rate} changes/vehicle/min");
    }

    #[test]
    fn empty_observation_is_neutral() {
        let mut sim = Simulation::random_traffic(Road::motorway(), 5, 1).unwrap();
        let m = observe(&mut sim, 0);
        assert_eq!(m.steps, 0);
        assert_eq!(m.lane_change_rate(5, 0.1), 0.0);
    }

    #[test]
    fn lane_changes_are_counted() {
        // A slow leader forces the ego to overtake within the window.
        let mut sim = crate::presets::slow_leader().unwrap();
        let m = observe(&mut sim, 600);
        assert!(m.lane_changes >= 1, "no overtake recorded: {m}");
    }
}
