//! Vehicles and their kinematic state.

use std::collections::VecDeque;

/// Number of past speed samples kept per vehicle (the ego "speed profile"
/// block of the 84-feature input).
pub const SPEED_HISTORY: usize = 8;

/// A vehicle on the road.
///
/// Lateral movement is modelled as a continuous lane-change manoeuvre: the
/// vehicle keeps a `lane` (its target lane) and a `lateral_offset` in lane
/// widths relative to that lane's centre, which decays to zero during a
/// change.
#[derive(Debug, Clone, PartialEq)]
pub struct Vehicle {
    id: usize,
    /// Current (target) lane index, 0 = rightmost.
    pub lane: usize,
    /// Longitudinal position along the road loop (m).
    pub s: f64,
    /// Longitudinal speed (m/s).
    pub v: f64,
    /// Longitudinal acceleration set by the driver model (m/s²).
    pub a: f64,
    /// Lateral offset from the centre of `lane`, in lane widths
    /// (negative = coming from the right, positive = coming from the left).
    pub lateral_offset: f64,
    /// Lateral velocity in lane widths per second (positive = leftwards).
    pub lateral_velocity: f64,
    /// Vehicle length (m).
    pub length: f64,
    /// Driver's desired cruising speed (m/s).
    pub desired_speed: f64,
    /// Seconds until another lane change is permitted.
    pub lane_change_cooldown: f64,
    speed_history: VecDeque<f64>,
}

impl Vehicle {
    /// Creates a vehicle at rest-state defaults in `lane` at position `s`
    /// with speed `v`.
    pub fn new(id: usize, lane: usize, s: f64, v: f64) -> Self {
        let mut speed_history = VecDeque::with_capacity(SPEED_HISTORY);
        for _ in 0..SPEED_HISTORY {
            speed_history.push_back(v);
        }
        Self {
            id,
            lane,
            s,
            v,
            a: 0.0,
            lateral_offset: 0.0,
            lateral_velocity: 0.0,
            length: 4.5,
            desired_speed: v.max(1.0),
            lane_change_cooldown: 0.0,
            speed_history,
        }
    }

    /// Unique id within the simulation.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Past speeds, oldest first (always [`SPEED_HISTORY`] entries).
    pub fn speed_history(&self) -> impl Iterator<Item = f64> + '_ {
        self.speed_history.iter().copied()
    }

    /// Pushes the current speed into the history ring.
    pub fn record_speed(&mut self) {
        if self.speed_history.len() == SPEED_HISTORY {
            self.speed_history.pop_front();
        }
        self.speed_history.push_back(self.v);
    }

    /// `true` while a lane-change manoeuvre is still in progress.
    pub fn is_changing_lane(&self) -> bool {
        self.lateral_offset.abs() > 1e-3
    }

    /// Starts a lane change towards `target_lane`, adjusting the lateral
    /// offset so the vehicle's physical position is continuous.
    ///
    /// A change to the left (higher index) sets a negative offset (the
    /// vehicle is still to the right of its new lane's centre) and a
    /// positive lateral velocity.
    pub fn begin_lane_change(&mut self, target_lane: usize, duration: f64) {
        let delta = target_lane as f64 - self.lane as f64;
        self.lateral_offset = -delta;
        self.lateral_velocity = delta / duration.max(0.1);
        self.lane = target_lane;
    }

    /// Effective continuous lane coordinate (lane index + offset).
    pub fn lane_position(&self) -> f64 {
        self.lane as f64 + self.lateral_offset
    }

    /// `true` if the vehicle physically occupies `lane`: its target lane
    /// always, plus the origin lane while a change is still in progress
    /// (the body straddles both).
    pub fn occupies_lane(&self, lane: usize) -> bool {
        if self.lane == lane {
            return true;
        }
        if !self.is_changing_lane() {
            return false;
        }
        // Origin lane: one step opposite the direction of travel.
        let origin = if self.lateral_velocity > 0.0 {
            self.lane.checked_sub(1)
        } else {
            Some(self.lane + 1)
        };
        origin == Some(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vehicle_has_full_history() {
        let v = Vehicle::new(0, 1, 10.0, 25.0);
        assert_eq!(v.speed_history().count(), SPEED_HISTORY);
        assert!(v.speed_history().all(|s| s == 25.0));
    }

    #[test]
    fn history_ring_evicts_oldest() {
        let mut v = Vehicle::new(0, 0, 0.0, 10.0);
        v.v = 11.0;
        v.record_speed();
        v.v = 12.0;
        v.record_speed();
        let h: Vec<f64> = v.speed_history().collect();
        assert_eq!(h.len(), SPEED_HISTORY);
        assert_eq!(h[SPEED_HISTORY - 1], 12.0);
        assert_eq!(h[SPEED_HISTORY - 2], 11.0);
        assert_eq!(h[0], 10.0);
    }

    #[test]
    fn lane_change_left_is_positive_lateral_velocity() {
        let mut v = Vehicle::new(0, 0, 0.0, 20.0);
        v.begin_lane_change(1, 2.0);
        assert_eq!(v.lane, 1);
        assert!(v.lateral_velocity > 0.0);
        assert!(v.lateral_offset < 0.0);
        // Physical position is continuous: still at the old lane's centre.
        assert!((v.lane_position() - 0.0).abs() < 1e-12);
        assert!(v.is_changing_lane());
    }

    #[test]
    fn changing_vehicle_occupies_both_lanes() {
        let mut v = Vehicle::new(0, 0, 0.0, 20.0);
        assert!(v.occupies_lane(0));
        assert!(!v.occupies_lane(1));
        v.begin_lane_change(1, 2.0);
        assert!(v.occupies_lane(1), "target lane");
        assert!(v.occupies_lane(0), "origin lane while changing");
        assert!(!v.occupies_lane(2));
        // Right change: origin is lane+1.
        let mut r = Vehicle::new(1, 2, 0.0, 20.0);
        r.begin_lane_change(1, 2.0);
        assert!(r.occupies_lane(1) && r.occupies_lane(2));
    }

    #[test]
    fn lane_change_right_is_negative_lateral_velocity() {
        let mut v = Vehicle::new(0, 2, 0.0, 20.0);
        v.begin_lane_change(1, 2.0);
        assert!(v.lateral_velocity < 0.0);
        assert!((v.lane_position() - 2.0).abs() < 1e-12);
    }
}
