//! Scenario generation: turning simulations into supervised datasets.
//!
//! The recorded pairs `(84-feature vector, expert action)` play the role of
//! the proprietary driving data the paper's predictor was trained on. The
//! expert action is whatever the IDM+MOBIL driver actually did, so by
//! construction the data contains no manoeuvre that violates MOBIL's
//! safety criterion — mirroring the paper's "we validated that the
//! training data never contains such inputs" (Sec. III).

use crate::features::{slot_index, FeatureExtractor, Orientation, SlotFeature};
use crate::road::Road;
use crate::simulation::Simulation;
use crate::SimError;
use certnn_linalg::Vector;

/// Configuration for dataset generation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Road the episodes run on.
    pub road: Road,
    /// Vehicles per episode.
    pub vehicles: usize,
    /// Simulated seconds per episode.
    pub episode_seconds: f64,
    /// Warm-up seconds discarded before sampling starts.
    pub warmup_seconds: f64,
    /// Record a sample every this many integration steps.
    pub sample_every: usize,
    /// One episode per seed; seeds also shuffle the traffic.
    pub seeds: Vec<u64>,
    /// Drop samples that violate the safety rule ("left occupied" together
    /// with a ≥ 1 m/s leftward command). This is the data curation the
    /// paper performs before training; switch it off to hand raw data to
    /// `certnn-datacheck` and watch the validator catch the violations.
    pub exclude_risky: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            road: Road::motorway(),
            vehicles: 18,
            episode_seconds: 60.0,
            warmup_seconds: 5.0,
            sample_every: 5,
            seeds: (0..4).collect(),
            exclude_risky: true,
        }
    }
}

/// Generates `(features, action)` pairs by running the configured episodes
/// and recording *every* vehicle from its own ego perspective.
///
/// The action target is `[lateral velocity (m/s), longitudinal
/// acceleration (m/s²)]`, matching the two dimensions of the predictor's
/// Gaussian-mixture head.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration cannot be simulated
/// (overcrowded road, invalid parameters).
pub fn generate_dataset(config: &ScenarioConfig) -> Result<Vec<(Vector, Vector)>, SimError> {
    let extractor = FeatureExtractor::new();
    let mut samples = Vec::new();
    for &seed in &config.seeds {
        let mut sim = Simulation::random_traffic(config.road.clone(), config.vehicles, seed)?;
        sim.run(config.warmup_seconds);
        let dt = 0.1;
        let steps = (config.episode_seconds / dt).round() as usize;
        for step in 0..steps {
            sim.step();
            if step % config.sample_every.max(1) != 0 {
                continue;
            }
            for v in 0..sim.vehicles().len() {
                let id = sim.vehicles()[v].id();
                let features = extractor.extract(&sim, id)?;
                let action = sim.expert_action(id)?;
                let action = Vector::from(vec![action[0], action[1]]);
                if config.exclude_risky && left_occupied(&features) && moves_left(&action, 1.0) {
                    continue;
                }
                samples.push((features, action));
            }
        }
    }
    Ok(samples)
}

/// `true` if the feature vector reports a vehicle abreast on the left —
/// the guard of the paper's safety property.
pub fn left_occupied(features: &Vector) -> bool {
    features[slot_index(Orientation::SideLeft, SlotFeature::Present)] >= 0.5
}

/// `true` if the recorded action commands a leftward lateral velocity of at
/// least `threshold` m/s.
pub fn moves_left(action: &Vector, threshold: f64) -> bool {
    action[0] >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_COUNT;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            vehicles: 12,
            episode_seconds: 10.0,
            warmup_seconds: 1.0,
            sample_every: 10,
            seeds: vec![1, 2],
            ..Default::default()
        }
    }

    #[test]
    fn dataset_has_expected_shape_and_size() {
        let cfg = small_config();
        let data = generate_dataset(&cfg).unwrap();
        // At most 100 steps / 10 sampled * 12 vehicles * 2 seeds = 240
        // (curation may drop a few risky samples).
        assert!(data.len() <= 240);
        assert!(data.len() > 200, "unexpectedly many samples dropped");
        for (x, y) in &data {
            assert_eq!(x.len(), FEATURE_COUNT);
            assert_eq!(y.len(), 2);
        }
    }

    #[test]
    fn raw_data_is_superset_of_curated_data() {
        let mut raw_cfg = small_config();
        raw_cfg.exclude_risky = false;
        let raw = generate_dataset(&raw_cfg).unwrap();
        let curated = generate_dataset(&small_config()).unwrap();
        assert!(raw.len() >= curated.len());
        assert_eq!(raw.len(), 240);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = generate_dataset(&cfg).unwrap();
        let b = generate_dataset(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for ((xa, ya), (xb, yb)) in a.iter().zip(&b) {
            assert!(xa.approx_eq(xb, 0.0));
            assert!(ya.approx_eq(yb, 0.0));
        }
    }

    #[test]
    fn expert_data_contains_no_risky_left_moves() {
        // The headline data-validity property: no sample may combine an
        // occupied left side with a strong leftward command.
        let data = generate_dataset(&small_config()).unwrap();
        for (x, y) in &data {
            if left_occupied(x) {
                assert!(
                    !moves_left(y, 1.0),
                    "risky sample: left occupied but v_lat = {}",
                    y[0]
                );
            }
        }
    }

    #[test]
    fn actions_are_physically_bounded() {
        let data = generate_dataset(&small_config()).unwrap();
        for (_, y) in &data {
            assert!(y[0].abs() < 5.0, "lateral velocity {}", y[0]);
            assert!(y[1].abs() < 6.0, "acceleration {}", y[1]);
        }
    }

    #[test]
    fn overcrowded_config_errors() {
        let cfg = ScenarioConfig {
            vehicles: 100_000,
            ..small_config()
        };
        assert!(generate_dataset(&cfg).is_err());
    }
}
