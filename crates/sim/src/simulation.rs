//! The traffic simulation loop.

use crate::idm::Idm;
use crate::mobil::{LaneContext, Mobil};
use crate::road::Road;
use crate::vehicle::Vehicle;
use crate::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Integration step (s).
    pub dt: f64,
    /// Duration of a lane-change manoeuvre (s).
    pub lane_change_duration: f64,
    /// Cooldown between lane changes of one vehicle (s).
    pub lane_change_cooldown: f64,
    /// Hard cap on speed as a multiple of the limit.
    pub speed_cap_factor: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dt: 0.1,
            lane_change_duration: 2.5,
            lane_change_cooldown: 5.0,
            speed_cap_factor: 1.25,
        }
    }
}

/// A running multi-vehicle highway simulation.
///
/// Vehicle `0` is the **ego** vehicle whose feature vector the motion
/// predictor consumes; all vehicles (ego included) are driven by IDM +
/// MOBIL, so recorded ego actions form safe "expert" training data.
#[derive(Debug, Clone)]
pub struct Simulation {
    road: Road,
    vehicles: Vec<Vehicle>,
    idm: Idm,
    mobil: Mobil,
    config: SimConfig,
    time: f64,
    ego_id: usize,
}

impl Simulation {
    /// Creates a simulation from explicit vehicles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if any vehicle references a
    /// lane the road does not have, and [`SimError::Overcrowded`] if there
    /// are no vehicles.
    pub fn new(road: Road, vehicles: Vec<Vehicle>) -> Result<Self, SimError> {
        if vehicles.is_empty() {
            return Err(SimError::Overcrowded {
                requested: 0,
                capacity: 0,
            });
        }
        for v in &vehicles {
            if !road.has_lane(v.lane) {
                return Err(SimError::InvalidParameter {
                    name: "vehicle lane",
                    value: v.lane as f64,
                });
            }
        }
        let idm = Idm::default().with_friction(road.surface().friction());
        Ok(Self {
            road,
            vehicles,
            idm,
            mobil: Mobil::default(),
            config: SimConfig::default(),
            time: 0.0,
            ego_id: 0,
        })
    }

    /// Creates a simulation with `n` vehicles placed pseudo-randomly
    /// (deterministic in `seed`). Vehicle 0 is the ego.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Overcrowded`] if `n` vehicles cannot keep at
    /// least ~12 m of spacing per lane.
    pub fn random_traffic(road: Road, n: usize, seed: u64) -> Result<Self, SimError> {
        let capacity = ((road.length() / 14.0).floor() as usize) * road.lanes();
        if n == 0 || n > capacity {
            return Err(SimError::Overcrowded {
                requested: n,
                capacity,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vehicles = Vec::with_capacity(n);
        // Even placement per lane with jitter keeps initial gaps safe.
        let per_lane = n.div_ceil(road.lanes());
        let spacing = road.length() / per_lane as f64;
        let mut id = 0;
        'outer: for lane in 0..road.lanes() {
            for k in 0..per_lane {
                if id >= n {
                    break 'outer;
                }
                let jitter = rng.gen_range(-0.2..0.2) * spacing.min(20.0);
                let s = road.wrap(k as f64 * spacing + jitter);
                let v = rng.gen_range(0.6..0.95) * road.speed_limit();
                let mut veh = Vehicle::new(id, lane, s, v);
                veh.desired_speed = rng.gen_range(0.75..1.05) * road.speed_limit();
                vehicles.push(veh);
                id += 1;
            }
        }
        Self::new(road, vehicles)
    }

    /// The road.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// All vehicles.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Looks up a vehicle by id.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownVehicle`] if the id does not exist.
    pub fn vehicle(&self, id: usize) -> Result<&Vehicle, SimError> {
        self.vehicles
            .iter()
            .find(|v| v.id() == id)
            .ok_or(SimError::UnknownVehicle(id))
    }

    /// Id of the ego vehicle.
    pub fn ego_id(&self) -> usize {
        self.ego_id
    }

    /// Simulated time (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The IDM parameters in effect (already friction-scaled).
    pub fn idm(&self) -> &Idm {
        &self.idm
    }

    /// Mutable access to the simulation configuration.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.config
    }

    /// Nearest leader of `vehicle_idx` in `lane`: `(gap, speed)` with the
    /// bumper-to-bumper gap, or `None` if the lane is empty ahead.
    fn leader_in_lane(&self, vehicle_idx: usize, lane: usize) -> Option<(f64, f64)> {
        let me = &self.vehicles[vehicle_idx];
        let mut best: Option<(f64, f64)> = None;
        for (i, other) in self.vehicles.iter().enumerate() {
            if i == vehicle_idx || !other.occupies_lane(lane) {
                continue;
            }
            let centre_gap = self.road.forward_gap(me.s, other.s);
            if centre_gap <= 0.0 {
                continue;
            }
            let gap = centre_gap - 0.5 * (me.length + other.length);
            match best {
                Some((g, _)) if gap >= g => {}
                _ => best = Some((gap, other.v)),
            }
        }
        best
    }

    /// Nearest follower of `vehicle_idx` in `lane` (gap, speed).
    fn follower_in_lane(&self, vehicle_idx: usize, lane: usize) -> Option<(f64, f64)> {
        let me = &self.vehicles[vehicle_idx];
        let mut best: Option<(f64, f64)> = None;
        for (i, other) in self.vehicles.iter().enumerate() {
            if i == vehicle_idx || !other.occupies_lane(lane) {
                continue;
            }
            let centre_gap = self.road.forward_gap(other.s, me.s);
            if centre_gap <= 0.0 {
                continue;
            }
            let gap = centre_gap - 0.5 * (me.length + other.length);
            match best {
                Some((g, _)) if gap >= g => {}
                _ => best = Some((gap, other.v)),
            }
        }
        best
    }

    /// Lane context (leader + follower) of a vehicle in `lane`.
    pub(crate) fn lane_context(&self, vehicle_idx: usize, lane: usize) -> LaneContext {
        LaneContext {
            leader: self.leader_in_lane(vehicle_idx, lane),
            follower: self.follower_in_lane(vehicle_idx, lane),
        }
    }

    /// Neighbour query used by the feature extractor: nearest vehicle in
    /// `lane` whose signed centre distance `dx = s_other − s_ego` (wrapped
    /// into `(-L/2, L/2]`) satisfies the predicate, minimising `|dx|`.
    pub(crate) fn nearest_where<F: Fn(f64) -> bool>(
        &self,
        vehicle_idx: usize,
        lane: usize,
        pred: F,
    ) -> Option<(&Vehicle, f64)> {
        let me = &self.vehicles[vehicle_idx];
        let half = 0.5 * self.road.length();
        let mut best: Option<(&Vehicle, f64)> = None;
        for (i, other) in self.vehicles.iter().enumerate() {
            if i == vehicle_idx || !other.occupies_lane(lane) {
                continue;
            }
            let mut dx = self.road.forward_gap(me.s, other.s);
            if dx > half {
                dx -= self.road.length();
            }
            if !pred(dx) {
                continue;
            }
            match best {
                Some((_, bx)) if dx.abs() >= bx.abs() => {}
                _ => best = Some((other, dx)),
            }
        }
        best
    }

    /// Advances the simulation by one configured time step.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by vehicle
    pub fn step(&mut self) {
        let dt = self.config.dt;
        let n = self.vehicles.len();

        // 1. Longitudinal accelerations from IDM (using current state).
        let mut accels = vec![0.0; n];
        for i in 0..n {
            let v = &self.vehicles[i];
            let ctx = self.lane_context(i, v.lane);
            accels[i] = match ctx.leader {
                Some((gap, lv)) => self
                    .idm
                    .acceleration(v.v, v.desired_speed, gap, v.v - lv),
                None => self.idm.acceleration(v.v, v.desired_speed, f64::INFINITY, 0.0),
            };
        }

        // 2. Lane-change decisions via MOBIL (one change may start per step).
        let mut changes: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            let v = &self.vehicles[i];
            if v.is_changing_lane() || v.lane_change_cooldown > 0.0 {
                continue;
            }
            let current = self.lane_context(i, v.lane);
            // Prefer moving right (keep-right rule), then left (overtake).
            let mut candidates: Vec<(usize, bool)> = Vec::new();
            if v.lane > 0 {
                candidates.push((v.lane - 1, true));
            }
            if v.lane + 1 < self.road.lanes() {
                candidates.push((v.lane + 1, false));
            }
            for (target, to_right) in candidates {
                // Never initiate a change while any vehicle is abreast in
                // the target lane (within ±12 m), regardless of MOBIL's
                // gap-based criteria — this is the manoeuvre-level analogue
                // of the paper's safety property.
                if self.nearest_where(i, target, |dx| dx.abs() <= 12.0).is_some() {
                    continue;
                }
                let ctx = self.lane_context(i, target);
                let d = self
                    .mobil
                    .evaluate(&self.idm, v.v, v.desired_speed, current, ctx, to_right);
                if d.advisable {
                    changes.push((i, target));
                    break;
                }
            }
        }
        // Apply sequentially, re-checking the abreast veto against changes
        // already applied this step: two vehicles may otherwise swap into
        // the same spot simultaneously.
        for (i, target) in changes {
            if self.nearest_where(i, target, |dx| dx.abs() <= 12.0).is_some() {
                continue;
            }
            let duration = self.config.lane_change_duration;
            let cooldown = self.config.lane_change_cooldown;
            let v = &mut self.vehicles[i];
            v.begin_lane_change(target, duration);
            v.lane_change_cooldown = cooldown;
        }

        // 3. Integrate.
        let cap = self.road.speed_limit() * self.config.speed_cap_factor;
        let length = self.road.length();
        for (i, v) in self.vehicles.iter_mut().enumerate() {
            v.a = accels[i];
            v.v = (v.v + v.a * dt).clamp(0.0, cap);
            v.s = {
                let mut s = v.s + v.v * dt;
                s %= length;
                if s < 0.0 {
                    s += length;
                }
                s
            };
            if v.is_changing_lane() {
                let step = v.lateral_velocity * dt;
                v.lateral_offset += step;
                // The manoeuvre ends when the offset crosses zero.
                if v.lateral_offset.abs() < 1e-3
                    || v.lateral_offset.signum() == v.lateral_velocity.signum()
                {
                    v.lateral_offset = 0.0;
                    v.lateral_velocity = 0.0;
                }
            }
            v.lane_change_cooldown = (v.lane_change_cooldown - dt).max(0.0);
            v.record_speed();
        }
        self.time += dt;
    }

    /// Runs the simulation for `seconds` of simulated time.
    pub fn run(&mut self, seconds: f64) {
        let steps = (seconds / self.config.dt).round() as usize;
        for _ in 0..steps {
            self.step();
        }
    }

    /// The "expert action" the ego (or any vehicle) is currently taking:
    /// `(lateral velocity in m/s, longitudinal acceleration in m/s²)`.
    /// This is the regression target of the motion predictor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownVehicle`] if the id does not exist.
    pub fn expert_action(&self, id: usize) -> Result<[f64; 2], SimError> {
        let v = self.vehicle(id)?;
        Ok([v.lateral_velocity * self.road.lane_width(), v.a])
    }

    /// Minimum bumper-to-bumper gap between same-lane vehicles — a sanity
    /// probe used by tests to confirm IDM keeps traffic collision-free.
    pub fn min_same_lane_gap(&self) -> f64 {
        let mut min_gap = f64::INFINITY;
        for i in 0..self.vehicles.len() {
            if let Some((gap, _)) = self.leader_in_lane(i, self.vehicles[i].lane) {
                min_gap = min_gap.min(gap);
            }
        }
        min_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::SurfaceCondition;

    fn sim(n: usize, seed: u64) -> Simulation {
        Simulation::random_traffic(Road::motorway(), n, seed).unwrap()
    }

    #[test]
    fn random_traffic_respects_capacity() {
        assert!(Simulation::random_traffic(Road::motorway(), 10_000, 0).is_err());
        assert!(Simulation::random_traffic(Road::motorway(), 0, 0).is_err());
        let s = sim(20, 1);
        assert_eq!(s.vehicles().len(), 20);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = sim(15, 42);
        let mut b = sim(15, 42);
        a.run(10.0);
        b.run(10.0);
        for (va, vb) in a.vehicles().iter().zip(b.vehicles()) {
            assert_eq!(va.s, vb.s);
            assert_eq!(va.v, vb.v);
            assert_eq!(va.lane, vb.lane);
        }
    }

    #[test]
    fn no_collisions_over_long_run() {
        let mut s = sim(25, 7);
        for _ in 0..600 {
            s.step();
            assert!(
                s.min_same_lane_gap() > 0.0,
                "collision at t={:.1}s",
                s.time()
            );
        }
    }

    #[test]
    fn speeds_stay_in_physical_range() {
        let mut s = sim(20, 3);
        s.run(60.0);
        let cap = s.road().speed_limit() * 1.25 + 1e-9;
        for v in s.vehicles() {
            assert!(v.v >= 0.0 && v.v <= cap, "speed {} out of range", v.v);
        }
    }

    #[test]
    fn lane_changes_happen_and_respect_road() {
        // Dense traffic with varied desired speeds triggers overtaking.
        let mut s = sim(30, 11);
        s.run(120.0);
        for v in s.vehicles() {
            assert!(s.road().has_lane(v.lane));
        }
        // At least one vehicle should have moved laterally at some point;
        // verify indirectly via cooldowns or offsets having been touched.
        let total_lane_mass: usize = s.vehicles().iter().map(|v| v.lane).sum();
        assert!(total_lane_mass > 0, "all traffic collapsed to lane 0");
    }

    #[test]
    fn icy_road_reduces_accelerations() {
        let road =
            Road::new(3, 3.5, 500.0, 33.0, SurfaceCondition::Icy).unwrap();
        let icy = Simulation::random_traffic(road, 10, 5).unwrap();
        let dry = sim(10, 5);
        assert!(icy.idm().max_accel < dry.idm().max_accel);
    }

    #[test]
    fn expert_action_shape_and_lane_change_sign() {
        let road = Road::motorway();
        let mut v0 = Vehicle::new(0, 0, 0.0, 25.0);
        v0.begin_lane_change(1, 2.0);
        let v1 = Vehicle::new(1, 2, 100.0, 25.0);
        let s = Simulation::new(road, vec![v0, v1]).unwrap();
        let a = s.expert_action(0).unwrap();
        assert!(a[0] > 0.0, "left change must have positive lateral velocity");
        assert!(s.expert_action(99).is_err());
    }

    #[test]
    fn time_advances_by_dt() {
        let mut s = sim(5, 0);
        s.step();
        assert!((s.time() - 0.1).abs() < 1e-12);
        s.run(1.0);
        assert!((s.time() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn lane_change_completes_and_clears_offset() {
        let road = Road::motorway();
        let mut v0 = Vehicle::new(0, 0, 0.0, 25.0);
        v0.desired_speed = 25.0;
        let mut s = Simulation::new(road, vec![v0]).unwrap();
        s.vehicles[0].begin_lane_change(1, 2.0);
        s.vehicles[0].lane_change_cooldown = 100.0; // suppress keep-right return
        s.run(5.0);
        assert!(!s.vehicles()[0].is_changing_lane());
        assert_eq!(s.vehicles()[0].lane, 1);
        assert_eq!(s.vehicles()[0].lateral_velocity, 0.0);
    }
}
