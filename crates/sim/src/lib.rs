//! Multi-lane highway traffic simulation with ego-centric feature
//! extraction.
//!
//! The paper's case study verifies a motion predictor trained on highway
//! driving data (Lenz et al., IV 2017) that is not publicly available. This
//! crate is the substitution documented in `DESIGN.md`: a synthetic highway
//! that produces the same *kind* of data — an 84-dimensional ego-centric
//! feature vector and expert driving actions — so the rest of the pipeline
//! (training, data validation, traceability, formal verification) runs
//! end-to-end.
//!
//! * [`road::Road`] — a circular multi-lane carriageway with a road-surface
//!   condition.
//! * [`idm::Idm`] — the Intelligent Driver Model for longitudinal control.
//! * [`mobil::Mobil`] — the MOBIL lane-change policy (its safety criterion
//!   is what keeps the generated data free of risky manoeuvres, which the
//!   paper's Sec. II (C) requires of training data).
//! * [`simulation::Simulation`] — steps vehicles, records speed histories.
//! * [`features::FeatureExtractor`] — the 84-input encoding: ego profile
//!   (12), eight surrounding-vehicle slots × 8 features (64), road
//!   condition (8). Every feature has a name and a physical range; the
//!   ranges become the verification input box.
//! * [`scenario`] — dataset generation (features → expert action pairs).
//! * [`render`] — ASCII reproductions of Figure 1 (scene + action density).
//!
//! # Example
//!
//! ```
//! use certnn_sim::road::{Road, SurfaceCondition};
//! use certnn_sim::simulation::Simulation;
//! use certnn_sim::features::FeatureExtractor;
//!
//! # fn main() -> Result<(), certnn_sim::SimError> {
//! let road = Road::new(3, 3.5, 500.0, 33.0, SurfaceCondition::Dry)?;
//! let mut sim = Simulation::random_traffic(road, 12, 7)?;
//! sim.run(5.0);
//! let features = FeatureExtractor::new().extract(&sim, sim.ego_id())?;
//! assert_eq!(features.len(), 84);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod idm;
pub mod metrics;
pub mod mobil;
pub mod presets;
pub mod render;
pub mod road;
pub mod scenario;
pub mod simulation;
pub mod vehicle;

use std::error::Error;
use std::fmt;

/// Error raised by simulator construction or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A road or simulation parameter is out of its physical range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Too many vehicles for the road (no collision-free placement).
    Overcrowded {
        /// Requested vehicle count.
        requested: usize,
        /// Maximum that fits.
        capacity: usize,
    },
    /// A vehicle id does not exist in the simulation.
    UnknownVehicle(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, value } => {
                write!(f, "invalid {name}: {value}")
            }
            SimError::Overcrowded { requested, capacity } => {
                write!(f, "{requested} vehicles requested but only {capacity} fit")
            }
            SimError::UnknownVehicle(id) => write!(f, "unknown vehicle id {id}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::InvalidParameter {
            name: "lanes",
            value: 0.0,
        };
        assert!(e.to_string().contains("lanes"));
        assert!(SimError::UnknownVehicle(3).to_string().contains('3'));
    }
}
