//! The Intelligent Driver Model (Treiber, Hennecke & Helbing 2000).
//!
//! IDM is the longitudinal controller of every simulated vehicle. It
//! produces smooth, collision-free car-following behaviour, which makes the
//! recorded expert data satisfy the paper's data-validity requirement by
//! construction.

/// IDM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Idm {
    /// Maximum acceleration `a` (m/s²).
    pub max_accel: f64,
    /// Comfortable braking deceleration `b` (m/s², positive).
    pub comfortable_brake: f64,
    /// Minimum standstill gap `s₀` (m).
    pub min_gap: f64,
    /// Desired time headway `T` (s).
    pub time_headway: f64,
    /// Free-flow acceleration exponent `δ`.
    pub exponent: f64,
}

impl Default for Idm {
    fn default() -> Self {
        Self {
            max_accel: 1.5,
            comfortable_brake: 2.0,
            min_gap: 2.0,
            time_headway: 1.2,
            exponent: 4.0,
        }
    }
}

impl Idm {
    /// IDM parameters scaled by road friction: lower grip reduces both the
    /// available acceleration and the comfortable braking, and stretches
    /// the desired headway.
    pub fn with_friction(self, friction: f64) -> Self {
        let f = friction.clamp(0.05, 1.0);
        Self {
            max_accel: self.max_accel * f,
            comfortable_brake: self.comfortable_brake * f,
            time_headway: self.time_headway / f.sqrt(),
            ..self
        }
    }

    /// Desired dynamic gap `s*` at speed `v` with closing speed `dv`
    /// (positive when approaching the leader).
    pub fn desired_gap(&self, v: f64, dv: f64) -> f64 {
        let interaction =
            v * dv / (2.0 * (self.max_accel * self.comfortable_brake).sqrt());
        (self.min_gap + v * self.time_headway + interaction).max(self.min_gap)
    }

    /// Longitudinal acceleration for a vehicle at speed `v` with desired
    /// speed `v0`, bumper gap `gap` to its leader and closing speed `dv`.
    /// Pass `gap = f64::INFINITY` for free driving.
    pub fn acceleration(&self, v: f64, v0: f64, gap: f64, dv: f64) -> f64 {
        let free = 1.0 - (v / v0.max(0.1)).powf(self.exponent);
        let interaction = if gap.is_finite() {
            let s_star = self.desired_gap(v, dv);
            (s_star / gap.max(0.1)).powi(2)
        } else {
            0.0
        };
        self.max_accel * (free - interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_road_accelerates_below_desired_speed() {
        let idm = Idm::default();
        let a = idm.acceleration(10.0, 30.0, f64::INFINITY, 0.0);
        assert!(a > 0.0);
    }

    #[test]
    fn at_desired_speed_acceleration_vanishes() {
        let idm = Idm::default();
        let a = idm.acceleration(30.0, 30.0, f64::INFINITY, 0.0);
        assert!(a.abs() < 1e-9);
    }

    #[test]
    fn above_desired_speed_decelerates() {
        let idm = Idm::default();
        assert!(idm.acceleration(35.0, 30.0, f64::INFINITY, 0.0) < 0.0);
    }

    #[test]
    fn close_leader_forces_braking() {
        let idm = Idm::default();
        let a = idm.acceleration(25.0, 30.0, 5.0, 0.0);
        assert!(a < -1.0, "expected hard braking, got {a}");
    }

    #[test]
    fn approaching_leader_brakes_harder_than_following() {
        let idm = Idm::default();
        let following = idm.acceleration(25.0, 30.0, 30.0, 0.0);
        let approaching = idm.acceleration(25.0, 30.0, 30.0, 10.0);
        assert!(approaching < following);
    }

    #[test]
    fn desired_gap_grows_with_speed() {
        let idm = Idm::default();
        assert!(idm.desired_gap(30.0, 0.0) > idm.desired_gap(10.0, 0.0));
        assert!(idm.desired_gap(0.0, 0.0) >= idm.min_gap);
    }

    #[test]
    fn friction_scaling_reduces_authority() {
        let dry = Idm::default();
        let icy = Idm::default().with_friction(0.25);
        assert!(icy.max_accel < dry.max_accel);
        assert!(icy.comfortable_brake < dry.comfortable_brake);
        assert!(icy.time_headway > dry.time_headway);
    }
}
