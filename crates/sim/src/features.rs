//! The 84-dimensional ego-centric feature encoding.
//!
//! The paper's predictor "takes three categories of inputs: (i) its own
//! speed profile, (ii) parameters of its nearest surrounding vehicles for
//! each orientation, and (iii) the road condition. The total number of
//! input variables to the network is 84." This module fixes a concrete
//! layout with exactly those three blocks:
//!
//! | indices  | block                                              |
//! |----------|----------------------------------------------------|
//! | `0..12`  | ego profile: 8 speed-history samples, acceleration, lane, lateral offset, desired speed |
//! | `12..76` | 8 orientation slots × 8 features per nearest vehicle |
//! | `76..84` | road condition: lanes, lane width, friction, limit, density, adjacency flags, reserved |
//!
//! All features are normalised to `[-1, 1]`-ish physical ranges (see
//! [`FeatureExtractor::bounds`]); those ranges double as the input box of
//! the verification queries. The safety property of Table II constrains the
//! slot ([`Orientation::SideLeft`], [`SlotFeature::Present`]).

use crate::simulation::Simulation;
use crate::SimError;
use certnn_linalg::{Interval, Vector};

/// Total number of input features.
pub const FEATURE_COUNT: usize = 84;

/// Start of the surrounding-vehicle block.
pub const SURROUND_BASE: usize = 12;

/// Start of the road-condition block.
pub const ROAD_BASE: usize = 76;

/// Number of features per surrounding-vehicle slot.
pub const SLOT_WIDTH: usize = 8;

/// The eight neighbour orientations around the ego vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Nearest leader in the ego's lane.
    FrontSame,
    /// Nearest follower in the ego's lane.
    RearSame,
    /// Nearest leader in the lane to the left.
    FrontLeft,
    /// Vehicle abreast of the ego in the lane to the left.
    SideLeft,
    /// Nearest follower in the lane to the left.
    RearLeft,
    /// Nearest leader in the lane to the right.
    FrontRight,
    /// Vehicle abreast of the ego in the lane to the right.
    SideRight,
    /// Nearest follower in the lane to the right.
    RearRight,
}

impl Orientation {
    /// All orientations in slot order.
    pub const ALL: [Orientation; 8] = [
        Orientation::FrontSame,
        Orientation::RearSame,
        Orientation::FrontLeft,
        Orientation::SideLeft,
        Orientation::RearLeft,
        Orientation::FrontRight,
        Orientation::SideRight,
        Orientation::RearRight,
    ];

    /// Slot position (0–7).
    pub fn index(&self) -> usize {
        Orientation::ALL
            .iter()
            .position(|o| o == self)
            .expect("orientation in ALL")
    }

    /// Short name used in feature labels.
    pub fn name(&self) -> &'static str {
        match self {
            Orientation::FrontSame => "front",
            Orientation::RearSame => "rear",
            Orientation::FrontLeft => "front_left",
            Orientation::SideLeft => "side_left",
            Orientation::RearLeft => "rear_left",
            Orientation::FrontRight => "front_right",
            Orientation::SideRight => "side_right",
            Orientation::RearRight => "rear_right",
        }
    }
}

/// The eight per-slot features of a surrounding vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotFeature {
    /// 1 if a vehicle occupies this slot, else 0.
    Present,
    /// Signed centre distance `Δs / 100 m`, clamped to `[-1, 1]`.
    Dx,
    /// Relative speed `(v_other − v_ego) / limit`, clamped to `[-1, 1]`.
    Dv,
    /// Other vehicle's speed `/ limit`.
    Speed,
    /// Time headway `Δs / v_ego`, clamped to `[0, 5]` and divided by 5.
    Headway,
    /// Other vehicle's length `/ 10 m`.
    Length,
    /// Other vehicle's lateral offset (lane widths).
    LateralOffset,
    /// 1 if the other vehicle is mid lane-change.
    Changing,
}

impl SlotFeature {
    /// All slot features in layout order.
    pub const ALL: [SlotFeature; 8] = [
        SlotFeature::Present,
        SlotFeature::Dx,
        SlotFeature::Dv,
        SlotFeature::Speed,
        SlotFeature::Headway,
        SlotFeature::Length,
        SlotFeature::LateralOffset,
        SlotFeature::Changing,
    ];

    /// Offset within a slot (0–7).
    pub fn offset(&self) -> usize {
        SlotFeature::ALL
            .iter()
            .position(|f| f == self)
            .expect("feature in ALL")
    }

    /// Short name used in feature labels.
    pub fn name(&self) -> &'static str {
        match self {
            SlotFeature::Present => "present",
            SlotFeature::Dx => "dx",
            SlotFeature::Dv => "dv",
            SlotFeature::Speed => "speed",
            SlotFeature::Headway => "headway",
            SlotFeature::Length => "length",
            SlotFeature::LateralOffset => "lat_offset",
            SlotFeature::Changing => "changing",
        }
    }
}

/// Global index of a slot feature.
pub fn slot_index(orientation: Orientation, feature: SlotFeature) -> usize {
    SURROUND_BASE + orientation.index() * SLOT_WIDTH + feature.offset()
}

/// Extracts the 84-feature input vector for a vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureExtractor {
    /// Longitudinal window (m) within which a neighbour counts as "abreast"
    /// (the side slots).
    pub side_window: f64,
    /// Distance normaliser (m) for `Dx`.
    pub gap_norm: f64,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self {
            side_window: 10.0,
            gap_norm: 100.0,
        }
    }
}

impl FeatureExtractor {
    /// Creates an extractor with default windows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the feature vector for vehicle `id` in `sim`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownVehicle`] if `id` does not exist.
    pub fn extract(&self, sim: &Simulation, id: usize) -> Result<Vector, SimError> {
        let ego = sim.vehicle(id)?;
        let ego_idx = sim
            .vehicles()
            .iter()
            .position(|v| v.id() == id)
            .expect("vehicle found above");
        let road = sim.road();
        let limit = road.speed_limit();
        let mut x = Vector::zeros(FEATURE_COUNT);

        // Ego block.
        for (k, s) in ego.speed_history().enumerate() {
            x[k] = s / limit;
        }
        x[8] = (ego.a / 4.0).clamp(-2.0, 1.0);
        x[9] = if road.lanes() > 1 {
            ego.lane as f64 / (road.lanes() - 1) as f64
        } else {
            0.0
        };
        x[10] = ego.lateral_offset.clamp(-1.0, 1.0);
        x[11] = ego.desired_speed / limit;

        // Surrounding block.
        let side = self.side_window;
        for orientation in Orientation::ALL {
            let lane: Option<usize> = match orientation {
                Orientation::FrontSame | Orientation::RearSame => Some(ego.lane),
                Orientation::FrontLeft | Orientation::SideLeft | Orientation::RearLeft => {
                    (ego.lane + 1 < road.lanes()).then_some(ego.lane + 1)
                }
                Orientation::FrontRight | Orientation::SideRight | Orientation::RearRight => {
                    ego.lane.checked_sub(1)
                }
            };
            let found = lane.and_then(|l| match orientation {
                Orientation::FrontSame | Orientation::FrontLeft | Orientation::FrontRight => {
                    sim.nearest_where(ego_idx, l, |dx| dx > side)
                }
                Orientation::RearSame | Orientation::RearLeft | Orientation::RearRight => {
                    sim.nearest_where(ego_idx, l, |dx| dx < -side)
                }
                Orientation::SideLeft | Orientation::SideRight => {
                    sim.nearest_where(ego_idx, l, |dx| dx.abs() <= side)
                }
            });
            let base = slot_index(orientation, SlotFeature::Present);
            match found {
                Some((other, dx)) => {
                    x[base + SlotFeature::Present.offset()] = 1.0;
                    x[base + SlotFeature::Dx.offset()] = (dx / self.gap_norm).clamp(-1.0, 1.0);
                    x[base + SlotFeature::Dv.offset()] =
                        ((other.v - ego.v) / limit).clamp(-1.0, 1.0);
                    x[base + SlotFeature::Speed.offset()] = other.v / limit;
                    x[base + SlotFeature::Headway.offset()] = if ego.v > 0.5 && dx > 0.0 {
                        (dx / ego.v).clamp(0.0, 5.0) / 5.0
                    } else {
                        0.0
                    };
                    x[base + SlotFeature::Length.offset()] = other.length / 10.0;
                    x[base + SlotFeature::LateralOffset.offset()] =
                        other.lateral_offset.clamp(-1.0, 1.0);
                    x[base + SlotFeature::Changing.offset()] =
                        if other.is_changing_lane() { 1.0 } else { 0.0 };
                }
                None => {
                    // Neutral defaults: empty slot, "far away" distance.
                    let default_dx = match orientation {
                        Orientation::FrontSame
                        | Orientation::FrontLeft
                        | Orientation::FrontRight => 1.0,
                        Orientation::RearSame
                        | Orientation::RearLeft
                        | Orientation::RearRight => -1.0,
                        _ => 0.0,
                    };
                    x[base + SlotFeature::Dx.offset()] = default_dx;
                }
            }
        }

        // Road block.
        x[ROAD_BASE] = road.lanes() as f64 / 5.0;
        x[ROAD_BASE + 1] = road.lane_width() / 5.0;
        x[ROAD_BASE + 2] = road.surface().friction();
        x[ROAD_BASE + 3] = limit / 50.0;
        x[ROAD_BASE + 4] =
            (sim.vehicles().len() as f64 * 10.0 / (road.length() * road.lanes() as f64))
                .clamp(0.0, 1.0);
        x[ROAD_BASE + 5] = if ego.lane + 1 < road.lanes() { 1.0 } else { 0.0 };
        x[ROAD_BASE + 6] = if ego.lane > 0 { 1.0 } else { 0.0 };
        x[ROAD_BASE + 7] = 0.0; // reserved

        Ok(x)
    }

    /// Names of all 84 features, layout order.
    pub fn names() -> Vec<String> {
        let mut names = Vec::with_capacity(FEATURE_COUNT);
        for k in 0..8 {
            names.push(format!("ego.speed_hist[{k}]"));
        }
        names.push("ego.accel".into());
        names.push("ego.lane".into());
        names.push("ego.lat_offset".into());
        names.push("ego.desired_speed".into());
        for orientation in Orientation::ALL {
            for feature in SlotFeature::ALL {
                names.push(format!("{}.{}", orientation.name(), feature.name()));
            }
        }
        for n in [
            "road.lanes",
            "road.lane_width",
            "road.friction",
            "road.speed_limit",
            "road.density",
            "road.has_left_lane",
            "road.has_right_lane",
            "road.reserved",
        ] {
            names.push(n.into());
        }
        names
    }

    /// Physical range of every feature — the sound input box used by the
    /// verification queries and the data validator.
    pub fn bounds() -> Vec<Interval> {
        let mut b = Vec::with_capacity(FEATURE_COUNT);
        for _ in 0..8 {
            b.push(Interval::new(0.0, 1.3)); // speed history
        }
        b.push(Interval::new(-2.0, 1.0)); // accel
        b.push(Interval::new(0.0, 1.0)); // lane
        b.push(Interval::new(-1.0, 1.0)); // lat offset
        b.push(Interval::new(0.0, 1.3)); // desired speed
        for _ in Orientation::ALL {
            b.push(Interval::new(0.0, 1.0)); // present
            b.push(Interval::new(-1.0, 1.0)); // dx
            b.push(Interval::new(-1.0, 1.0)); // dv
            b.push(Interval::new(0.0, 1.3)); // speed
            b.push(Interval::new(0.0, 1.0)); // headway
            b.push(Interval::new(0.0, 1.0)); // length
            b.push(Interval::new(-1.0, 1.0)); // lat offset
            b.push(Interval::new(0.0, 1.0)); // changing
        }
        b.push(Interval::new(0.0, 1.0)); // lanes
        b.push(Interval::new(0.0, 1.0)); // lane width
        b.push(Interval::new(0.0, 1.0)); // friction
        b.push(Interval::new(0.0, 1.0)); // speed limit
        b.push(Interval::new(0.0, 1.0)); // density
        b.push(Interval::new(0.0, 1.0)); // has left
        b.push(Interval::new(0.0, 1.0)); // has right
        b.push(Interval::new(0.0, 0.0)); // reserved
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::Road;
    use crate::simulation::Simulation;
    use crate::vehicle::Vehicle;

    fn two_vehicle_sim(other_lane: usize, other_s: f64) -> Simulation {
        let road = Road::motorway();
        let ego = Vehicle::new(0, 1, 100.0, 25.0);
        let other = Vehicle::new(1, other_lane, other_s, 25.0);
        Simulation::new(road, vec![ego, other]).unwrap()
    }

    #[test]
    fn layout_constants_are_consistent() {
        assert_eq!(SURROUND_BASE + 8 * SLOT_WIDTH, ROAD_BASE);
        assert_eq!(ROAD_BASE + 8, FEATURE_COUNT);
        assert_eq!(FeatureExtractor::names().len(), FEATURE_COUNT);
        assert_eq!(FeatureExtractor::bounds().len(), FEATURE_COUNT);
    }

    #[test]
    fn slot_index_covers_surround_block_bijectively() {
        let mut seen = [false; FEATURE_COUNT];
        for o in Orientation::ALL {
            for f in SlotFeature::ALL {
                let idx = slot_index(o, f);
                assert!((SURROUND_BASE..ROAD_BASE).contains(&idx));
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 64);
    }

    #[test]
    fn vehicle_abreast_on_left_sets_side_left_slot() {
        // Other vehicle in lane 2 (left of ego's lane 1), 3 m ahead.
        let sim = two_vehicle_sim(2, 103.0);
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(x[slot_index(Orientation::SideLeft, SlotFeature::Present)], 1.0);
        assert!((x[slot_index(Orientation::SideLeft, SlotFeature::Dx)] - 0.03).abs() < 1e-9);
        // No one in the other slots.
        assert_eq!(x[slot_index(Orientation::FrontSame, SlotFeature::Present)], 0.0);
        assert_eq!(x[slot_index(Orientation::SideRight, SlotFeature::Present)], 0.0);
    }

    #[test]
    fn leader_ahead_sets_front_same_slot() {
        let sim = two_vehicle_sim(1, 150.0);
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(x[slot_index(Orientation::FrontSame, SlotFeature::Present)], 1.0);
        assert!((x[slot_index(Orientation::FrontSame, SlotFeature::Dx)] - 0.5).abs() < 1e-9);
        // Headway: 50 m at 25 m/s = 2 s -> 0.4 after /5.
        assert!(
            (x[slot_index(Orientation::FrontSame, SlotFeature::Headway)] - 0.4).abs() < 1e-9
        );
    }

    #[test]
    fn follower_behind_sets_rear_slot_with_negative_dx() {
        let sim = two_vehicle_sim(1, 60.0);
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(x[slot_index(Orientation::RearSame, SlotFeature::Present)], 1.0);
        assert!(x[slot_index(Orientation::RearSame, SlotFeature::Dx)] < 0.0);
    }

    #[test]
    fn empty_slots_have_neutral_defaults() {
        let road = Road::motorway();
        let ego = Vehicle::new(0, 1, 100.0, 25.0);
        let sim = Simulation::new(road, vec![ego, Vehicle::new(1, 1, 350.0, 25.0)]).unwrap();
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(x[slot_index(Orientation::SideLeft, SlotFeature::Present)], 0.0);
        assert_eq!(x[slot_index(Orientation::FrontLeft, SlotFeature::Dx)], 1.0);
        assert_eq!(x[slot_index(Orientation::RearRight, SlotFeature::Dx)], -1.0);
        assert_eq!(x[slot_index(Orientation::SideLeft, SlotFeature::Dx)], 0.0);
    }

    #[test]
    fn leftmost_lane_has_no_left_slots_and_flag_cleared() {
        let road = Road::motorway();
        let ego = Vehicle::new(0, 2, 100.0, 25.0); // leftmost lane
        let other = Vehicle::new(1, 2, 103.0, 25.0); // would-be side... same lane
        let sim = Simulation::new(road, vec![ego, other]).unwrap();
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(x[slot_index(Orientation::SideLeft, SlotFeature::Present)], 0.0);
        assert_eq!(x[ROAD_BASE + 5], 0.0); // has_left_lane
        assert_eq!(x[ROAD_BASE + 6], 1.0); // has_right_lane
    }

    #[test]
    fn features_lie_within_declared_bounds() {
        let mut sim = Simulation::random_traffic(Road::motorway(), 25, 13).unwrap();
        sim.run(30.0);
        let bounds = FeatureExtractor::bounds();
        let ex = FeatureExtractor::new();
        for v in 0..sim.vehicles().len() {
            let id = sim.vehicles()[v].id();
            let x = ex.extract(&sim, id).unwrap();
            for (i, (&xi, b)) in x.as_slice().iter().zip(&bounds).enumerate() {
                assert!(
                    b.widened(1e-9).contains(xi),
                    "feature {i} ({}) = {xi} outside {b}",
                    FeatureExtractor::names()[i]
                );
            }
        }
    }

    #[test]
    fn ego_block_reflects_state() {
        let sim = two_vehicle_sim(0, 300.0);
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        let limit = sim.road().speed_limit();
        assert!((x[0] - 25.0 / limit).abs() < 1e-9); // history
        assert!((x[9] - 0.5).abs() < 1e-9); // lane 1 of 3 -> 0.5
        assert!((x[11] - 25.0 / limit).abs() < 1e-9); // desired speed
    }

    #[test]
    fn unknown_vehicle_errors() {
        let sim = two_vehicle_sim(0, 300.0);
        assert!(FeatureExtractor::new().extract(&sim, 42).is_err());
    }
}
