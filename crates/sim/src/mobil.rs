//! The MOBIL lane-change model (Kesting, Treiber & Helbing 2007).
//!
//! MOBIL decides lane changes by comparing IDM accelerations before and
//! after a hypothetical change:
//!
//! * **Safety criterion** — the new follower must not be forced to brake
//!   harder than `b_safe`. This is the property that keeps generated
//!   training data free of risky manoeuvres (paper Sec. II (C)).
//! * **Incentive criterion** — the ego's gain, plus `politeness` times the
//!   followers' gains, must exceed `threshold` (optionally biased towards
//!   the rightmost lane by `keep_right_bias`).
//!
//! The rule set is the *asymmetric* (European) variant: politeness only
//! applies to changes towards the right (cooperative merging back);
//! overtaking to the left is decided on the ego's own gain alone. The
//! symmetric variant lets a slow leader "politely" yield into the
//! overtaking lane, which deadlocks into lane ping-pong on a two-vehicle
//! road.

use crate::idm::Idm;

/// MOBIL parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mobil {
    /// Politeness factor `p` (0 = selfish, 1 = altruistic).
    pub politeness: f64,
    /// Acceleration-gain threshold to bother changing (m/s²).
    pub threshold: f64,
    /// Maximum braking imposed on the new follower (m/s², positive).
    pub safe_braking: f64,
    /// Bias towards the right lane (m/s²), European keep-right rule.
    pub keep_right_bias: f64,
}

impl Default for Mobil {
    fn default() -> Self {
        Self {
            politeness: 0.3,
            threshold: 0.15,
            safe_braking: 3.0,
            keep_right_bias: 0.2,
        }
    }
}

/// Longitudinal context of one lane as seen by the ego: the leader and
/// follower gaps/speeds (`None` = lane empty in that direction).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneContext {
    /// Bumper gap to the leader (m) and leader speed (m/s).
    pub leader: Option<(f64, f64)>,
    /// Bumper gap to the follower (m) and follower speed (m/s).
    pub follower: Option<(f64, f64)>,
}

/// Outcome of a MOBIL evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneChangeDecision {
    /// Whether the change passes both criteria.
    pub advisable: bool,
    /// Whether the change passes the safety criterion alone.
    pub safe: bool,
    /// Ego acceleration advantage of the change (m/s²).
    pub incentive: f64,
}

impl Mobil {
    /// Evaluates a change for a vehicle with speed `v` and desired speed
    /// `v0`, from its current lane (`current`) into a target lane
    /// (`target`), using `idm` for all hypothetical accelerations.
    /// `to_right` applies the keep-right bias in favour of the change.
    pub fn evaluate(
        &self,
        idm: &Idm,
        v: f64,
        v0: f64,
        current: LaneContext,
        target: LaneContext,
        to_right: bool,
    ) -> LaneChangeDecision {
        let acc = |ctx: Option<(f64, f64)>, speed: f64, desired: f64| match ctx {
            Some((gap, leader_v)) => idm.acceleration(speed, desired, gap, speed - leader_v),
            None => idm.acceleration(speed, desired, f64::INFINITY, 0.0),
        };

        // Safety: new follower after the change (we become its leader).
        let safe = match target.follower {
            Some((gap, fv)) => {
                // Follower's deceleration with us ahead at gap `gap`.
                let a_new = idm.acceleration(fv, fv.max(v0), gap, fv - v);
                a_new >= -self.safe_braking
            }
            None => true,
        } && target.leader.is_none_or(|(gap, _)| gap > idm.min_gap);

        // Ego incentive.
        let a_now = acc(current.leader, v, v0);
        let a_then = acc(target.leader, v, v0);
        let bias = if to_right {
            self.keep_right_bias
        } else {
            -self.keep_right_bias
        };

        // Politeness: followers' gains (old follower gains room, new
        // follower loses some). Asymmetric rule: only right changes are
        // cooperative; left (overtaking) changes are selfish.
        let politeness = if to_right { self.politeness } else { 0.0 };
        let follower_delta = {
            let old_gain = match current.follower {
                Some((gap, fv)) => {
                    let now = idm.acceleration(fv, fv.max(v0), gap, fv - v);
                    let then = idm.acceleration(fv, fv.max(v0), f64::INFINITY, 0.0);
                    then - now
                }
                None => 0.0,
            };
            let new_loss = match target.follower {
                Some((gap, fv)) => {
                    let now = idm.acceleration(fv, fv.max(v0), f64::INFINITY, 0.0);
                    let then = idm.acceleration(fv, fv.max(v0), gap, fv - v);
                    then - now
                }
                None => 0.0,
            };
            old_gain + new_loss
        };

        let incentive = a_then - a_now + politeness * follower_delta + bias;
        LaneChangeDecision {
            advisable: safe && incentive > self.threshold,
            safe,
            incentive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free() -> LaneContext {
        LaneContext::default()
    }

    #[test]
    fn blocked_lane_motivates_overtaking() {
        let mobil = Mobil {
            keep_right_bias: 0.0,
            ..Mobil::default()
        };
        let idm = Idm::default();
        // Slow leader 15 m ahead; target lane empty.
        let current = LaneContext {
            leader: Some((15.0, 15.0)),
            follower: None,
        };
        let d = mobil.evaluate(&idm, 25.0, 30.0, current, free(), false);
        assert!(d.safe);
        assert!(d.advisable, "incentive {}", d.incentive);
    }

    #[test]
    fn no_reason_to_change_on_empty_road() {
        let mobil = Mobil {
            keep_right_bias: 0.0,
            ..Mobil::default()
        };
        let idm = Idm::default();
        let d = mobil.evaluate(&idm, 30.0, 30.0, free(), free(), false);
        assert!(d.safe);
        assert!(!d.advisable);
    }

    #[test]
    fn close_follower_in_target_lane_vetoes_change() {
        let mobil = Mobil::default();
        let idm = Idm::default();
        let current = LaneContext {
            leader: Some((10.0, 10.0)),
            follower: None,
        };
        // Fast follower right behind in the target lane.
        let target = LaneContext {
            leader: None,
            follower: Some((3.0, 33.0)),
        };
        let d = mobil.evaluate(&idm, 25.0, 30.0, current, target, false);
        assert!(!d.safe);
        assert!(!d.advisable);
    }

    #[test]
    fn tiny_gap_to_target_leader_is_unsafe() {
        let mobil = Mobil::default();
        let idm = Idm::default();
        let target = LaneContext {
            leader: Some((1.0, 20.0)),
            follower: None,
        };
        let d = mobil.evaluate(&idm, 25.0, 30.0, free(), target, false);
        assert!(!d.safe);
    }

    #[test]
    fn keep_right_bias_prefers_right() {
        let mobil = Mobil::default();
        let idm = Idm::default();
        let to_right = mobil.evaluate(&idm, 30.0, 30.0, free(), free(), true);
        let to_left = mobil.evaluate(&idm, 30.0, 30.0, free(), free(), false);
        assert!(to_right.incentive > to_left.incentive);
        assert!(to_right.advisable, "bias should pull back right");
    }

    #[test]
    fn politeness_discourages_cutting_in_to_the_right() {
        let idm = Idm::default();
        let current = LaneContext {
            leader: Some((12.0, 12.0)),
            follower: None,
        };
        // A follower in the target lane at a safe but uncomfortable gap.
        let target = LaneContext {
            leader: None,
            follower: Some((18.0, 30.0)),
        };
        let selfish = Mobil {
            politeness: 0.0,
            keep_right_bias: 0.0,
            ..Mobil::default()
        };
        let polite = Mobil {
            politeness: 1.0,
            keep_right_bias: 0.0,
            ..Mobil::default()
        };
        let ds = selfish.evaluate(&idm, 22.0, 30.0, current, target, true);
        let dp = polite.evaluate(&idm, 22.0, 30.0, current, target, true);
        assert!(dp.incentive < ds.incentive);
    }

    #[test]
    fn left_changes_are_selfish_regardless_of_politeness() {
        // Asymmetric rule: a slow leader must never be "polite" into the
        // overtaking lane just to clear the way for its follower.
        let idm = Idm::default();
        let current = LaneContext {
            leader: None,
            follower: Some((20.0, 30.0)), // fast follower crawling behind us
        };
        let polite = Mobil {
            politeness: 1.0,
            keep_right_bias: 0.0,
            ..Mobil::default()
        };
        let d = polite.evaluate(&idm, 18.0, 18.0, current, LaneContext::default(), false);
        assert!(
            !d.advisable,
            "slow leader yielded left: incentive {}",
            d.incentive
        );
    }
}
