//! ASCII rendering of scenes and action densities (Figure 1).
//!
//! The paper's Figure 1 shows (left) a simulation snapshot and (right) the
//! Gaussian-mixture action distribution predicted for the ego vehicle.
//! [`render_scene`] reproduces the left panel as a top-down ASCII view;
//! [`render_density`] reproduces the right panel for any density function
//! (the `highway_prediction` example feeds it the decoded [`Gmm2`] of the
//! trained predictor).
//!
//! [`Gmm2`]: https://en.wikipedia.org/wiki/Mixture_model

use crate::simulation::Simulation;

/// Shade ramp from empty to dense.
const SHADES: &[u8] = b" .:-=+*#%@";

/// Renders a top-down view of the road around the ego vehicle.
///
/// Lanes are rows (leftmost lane on top, matching the driving direction
/// left-to-right); `window` metres ahead of and behind the ego are shown.
/// The ego prints as `E`, other vehicles as `>` (or `^`/`v` during a lane
/// change towards the left/right lane).
pub fn render_scene(sim: &Simulation, window: f64) -> String {
    let road = sim.road();
    let cols = 61usize;
    let ego = sim
        .vehicle(sim.ego_id())
        .expect("simulation always contains its own ego");
    let half = window.max(10.0);
    let metres_per_col = (2.0 * half) / cols as f64;

    let mut grid = vec![vec![b'.'; cols]; road.lanes()];
    for v in sim.vehicles() {
        // Signed distance from ego in (-L/2, L/2].
        let mut dx = road.forward_gap(ego.s, v.s);
        if dx > 0.5 * road.length() {
            dx -= road.length();
        }
        if dx.abs() > half {
            continue;
        }
        let col = (((dx + half) / metres_per_col) as usize).min(cols - 1);
        let row = road.lanes() - 1 - v.lane; // leftmost lane on top
        let glyph = if v.id() == sim.ego_id() {
            b'E'
        } else if v.is_changing_lane() {
            if v.lateral_velocity > 0.0 {
                b'^'
            } else {
                b'v'
            }
        } else {
            b'>'
        };
        grid[row][col] = glyph;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "t = {:6.1}s   road: {} lanes, {} surface, limit {:.0} m/s\n",
        sim.time(),
        road.lanes(),
        road.surface(),
        road.speed_limit()
    ));
    let border: String = std::iter::repeat_n('=', cols).collect();
    out.push_str(&border);
    out.push('\n');
    for row in &grid {
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&border);
    out.push('\n');
    out
}

/// Renders a density function over a 2-D action space as an ASCII grid.
///
/// The horizontal axis is the first argument (`lo_x..hi_x`, e.g. lateral
/// velocity) and the vertical axis the second (top = `hi_y`). Densities
/// are normalised to the maximum cell before mapping onto the shade ramp.
pub fn render_density<F: Fn(f64, f64) -> f64>(
    density: F,
    (lo_x, hi_x): (f64, f64),
    (lo_y, hi_y): (f64, f64),
    cols: usize,
    rows: usize,
) -> String {
    let cols = cols.max(2);
    let rows = rows.max(2);
    let mut values = vec![vec![0.0; cols]; rows];
    let mut max_v: f64 = 0.0;
    for (r, row) in values.iter_mut().enumerate() {
        // Top row = highest y.
        let y = hi_y - (r as f64 + 0.5) / rows as f64 * (hi_y - lo_y);
        for (c, cell) in row.iter_mut().enumerate() {
            let x = lo_x + (c as f64 + 0.5) / cols as f64 * (hi_x - lo_x);
            let v = density(x, y).max(0.0);
            *cell = v;
            max_v = max_v.max(v);
        }
    }
    let mut out = String::new();
    for row in &values {
        for &v in row {
            let t = if max_v > 0.0 { v / max_v } else { 0.0 };
            let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "x: [{lo_x:.1}, {hi_x:.1}]  y: [{lo_y:.1}, {hi_y:.1}]  peak {max_v:.4}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::Road;
    use crate::simulation::Simulation;
    use crate::vehicle::Vehicle;

    #[test]
    fn scene_contains_ego_and_neighbours() {
        let road = Road::motorway();
        let ego = Vehicle::new(0, 1, 100.0, 25.0);
        let ahead = Vehicle::new(1, 1, 120.0, 22.0);
        let left = Vehicle::new(2, 2, 100.0, 27.0);
        let sim = Simulation::new(road, vec![ego, ahead, left]).unwrap();
        let s = render_scene(&sim, 50.0);
        assert!(s.contains('E'));
        assert_eq!(s.matches('>').count(), 2);
        // 3 lanes -> 3 rows between the borders.
        assert_eq!(s.lines().count(), 1 + 1 + 3 + 1);
    }

    #[test]
    fn vehicles_outside_window_are_hidden() {
        let road = Road::motorway();
        let ego = Vehicle::new(0, 0, 100.0, 25.0);
        let far = Vehicle::new(1, 0, 250.0, 25.0); // wraps to dx 150 > 50
        let sim = Simulation::new(road, vec![ego, far]).unwrap();
        let s = render_scene(&sim, 50.0);
        assert_eq!(s.matches('>').count(), 0);
    }

    #[test]
    fn lane_changer_renders_arrow() {
        let road = Road::motorway();
        let ego = Vehicle::new(0, 0, 100.0, 25.0);
        let mut changer = Vehicle::new(1, 0, 120.0, 25.0);
        changer.begin_lane_change(1, 2.0);
        let sim = Simulation::new(road, vec![ego, changer]).unwrap();
        let s = render_scene(&sim, 50.0);
        assert!(s.contains('^'));
    }

    #[test]
    fn density_peak_appears_at_mode() {
        // A unimodal bump at (1, -1); top-left of the grid is (lo_x, hi_y).
        let s = render_density(
            |x, y| (-((x - 1.0).powi(2) + (y + 1.0).powi(2))).exp(),
            (-2.0, 2.0),
            (-2.0, 2.0),
            21,
            21,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 22); // 21 rows + footer
        // The darkest glyph '@' must appear in the lower-right quadrant.
        let (mut found_r, mut found_c) = (0, 0);
        for (r, line) in lines[..21].iter().enumerate() {
            if let Some(c) = line.find('@') {
                found_r = r;
                found_c = c;
            }
        }
        assert!(found_r > 10, "peak row {found_r}");
        assert!(found_c > 10, "peak col {found_c}");
    }

    #[test]
    fn flat_density_renders_uniformly() {
        let s = render_density(|_, _| 1.0, (0.0, 1.0), (0.0, 1.0), 5, 3);
        let first = s.lines().next().unwrap();
        assert!(first.chars().all(|c| c == '@'));
    }
}
