//! Road geometry and surface condition.

use crate::SimError;
use std::fmt;

/// Road-surface condition, part of the predictor's "road condition" inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SurfaceCondition {
    /// Dry asphalt (friction ≈ 1.0).
    #[default]
    Dry,
    /// Wet asphalt (friction ≈ 0.6).
    Wet,
    /// Icy surface (friction ≈ 0.25).
    Icy,
}

impl SurfaceCondition {
    /// Nominal friction coefficient used by the driver models.
    pub fn friction(&self) -> f64 {
        match self {
            SurfaceCondition::Dry => 1.0,
            SurfaceCondition::Wet => 0.6,
            SurfaceCondition::Icy => 0.25,
        }
    }
}

impl fmt::Display for SurfaceCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SurfaceCondition::Dry => "dry",
            SurfaceCondition::Wet => "wet",
            SurfaceCondition::Icy => "icy",
        })
    }
}

/// A circular multi-lane carriageway.
///
/// Lane `0` is the rightmost lane; increasing lane index moves left (the
/// overtaking direction). Positions along the road are longitudinal
/// coordinates in `[0, length)` that wrap around, which keeps traffic
/// density constant without spawning logic.
#[derive(Debug, Clone, PartialEq)]
pub struct Road {
    lanes: usize,
    lane_width: f64,
    length: f64,
    speed_limit: f64,
    surface: SurfaceCondition,
}

impl Road {
    /// Creates a road.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `lanes == 0`, or any of
    /// `lane_width`, `length`, `speed_limit` is non-positive or non-finite.
    pub fn new(
        lanes: usize,
        lane_width: f64,
        length: f64,
        speed_limit: f64,
        surface: SurfaceCondition,
    ) -> Result<Self, SimError> {
        if lanes == 0 {
            return Err(SimError::InvalidParameter {
                name: "lanes",
                value: lanes as f64,
            });
        }
        for (name, v) in [
            ("lane_width", lane_width),
            ("length", length),
            ("speed_limit", speed_limit),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidParameter { name, value: v });
            }
        }
        Ok(Self {
            lanes,
            lane_width,
            length,
            speed_limit,
            surface,
        })
    }

    /// A 3-lane, 500 m dry motorway with a 33 m/s (~120 km/h) limit — the
    /// default scenario of the case study.
    pub fn motorway() -> Self {
        Self::new(3, 3.5, 500.0, 33.0, SurfaceCondition::Dry).expect("valid constants")
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lane width in metres.
    pub fn lane_width(&self) -> f64 {
        self.lane_width
    }

    /// Loop length in metres.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Speed limit in m/s.
    pub fn speed_limit(&self) -> f64 {
        self.speed_limit
    }

    /// Surface condition.
    pub fn surface(&self) -> SurfaceCondition {
        self.surface
    }

    /// Wraps a longitudinal coordinate into `[0, length)`.
    pub fn wrap(&self, s: f64) -> f64 {
        let mut w = s % self.length;
        if w < 0.0 {
            w += self.length;
        }
        w
    }

    /// Signed gap from `from` forward to `to` along the driving direction,
    /// in `[0, length)`.
    pub fn forward_gap(&self, from: f64, to: f64) -> f64 {
        self.wrap(to - from)
    }

    /// `true` if `lane` exists on this road.
    pub fn has_lane(&self, lane: usize) -> bool {
        lane < self.lanes
    }
}

impl Default for Road {
    fn default() -> Self {
        Self::motorway()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Road::new(0, 3.5, 100.0, 30.0, SurfaceCondition::Dry).is_err());
        assert!(Road::new(2, -1.0, 100.0, 30.0, SurfaceCondition::Dry).is_err());
        assert!(Road::new(2, 3.5, 0.0, 30.0, SurfaceCondition::Dry).is_err());
        assert!(Road::new(2, 3.5, 100.0, f64::NAN, SurfaceCondition::Dry).is_err());
        assert!(Road::new(2, 3.5, 100.0, 30.0, SurfaceCondition::Wet).is_ok());
    }

    #[test]
    fn wrap_and_forward_gap() {
        let r = Road::new(2, 3.5, 100.0, 30.0, SurfaceCondition::Dry).unwrap();
        assert_eq!(r.wrap(150.0), 50.0);
        assert_eq!(r.wrap(-10.0), 90.0);
        assert_eq!(r.forward_gap(90.0, 10.0), 20.0);
        assert_eq!(r.forward_gap(10.0, 90.0), 80.0);
    }

    #[test]
    fn friction_ordering() {
        assert!(SurfaceCondition::Dry.friction() > SurfaceCondition::Wet.friction());
        assert!(SurfaceCondition::Wet.friction() > SurfaceCondition::Icy.friction());
    }

    #[test]
    fn motorway_defaults() {
        let r = Road::motorway();
        assert_eq!(r.lanes(), 3);
        assert!(r.has_lane(2));
        assert!(!r.has_lane(3));
    }
}
