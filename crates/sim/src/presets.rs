//! Named traffic-scenario presets.
//!
//! Hand-built situations used by examples and tests: they make specific
//! feature slots fire deterministically (a cut-in, a slow leader, a
//! platoon on the left), unlike random traffic where interesting moments
//! are a matter of luck.

use crate::road::Road;
use crate::simulation::Simulation;
use crate::vehicle::Vehicle;
use crate::SimError;

/// The ego cruises while a neighbour cuts in from the right lane just
/// ahead — exercises the `FrontRight`/`FrontSame` transition and forces
/// the ego's IDM to brake.
pub fn cut_in() -> Result<Simulation, SimError> {
    let road = Road::motorway();
    let mut ego = Vehicle::new(0, 1, 100.0, 28.0);
    ego.desired_speed = 30.0;
    let mut cutter = Vehicle::new(1, 0, 115.0, 24.0);
    cutter.desired_speed = 24.0;
    cutter.begin_lane_change(1, 2.5);
    let mut leader = Vehicle::new(2, 0, 160.0, 20.0);
    leader.desired_speed = 20.0;
    Simulation::new(road, vec![ego, cutter, leader])
}

/// A slow leader blocks the ego's lane while the left lane is free — the
/// textbook overtaking trigger for MOBIL.
pub fn slow_leader() -> Result<Simulation, SimError> {
    let road = Road::motorway();
    let mut ego = Vehicle::new(0, 0, 100.0, 28.0);
    ego.desired_speed = 31.0;
    let mut leader = Vehicle::new(1, 0, 130.0, 18.0);
    leader.desired_speed = 18.0;
    Simulation::new(road, vec![ego, leader])
}

/// A platoon occupies the left lane abreast of and around the ego — the
/// exact situation the safety property quantifies over: the `SideLeft`
/// slot is occupied from the first step. The platoon drives at its IDM
/// equilibrium (large gaps, desired speed reached) so it has no incentive
/// to disband.
pub fn left_platoon() -> Result<Simulation, SimError> {
    let road = Road::motorway();
    let mut ego = Vehicle::new(0, 0, 100.0, 24.0);
    ego.desired_speed = 30.0;
    let mk = |id, s| {
        let mut v = Vehicle::new(id, 1, s, 24.0);
        v.desired_speed = 24.0;
        v
    };
    Simulation::new(
        road,
        vec![ego, mk(1, 97.0), mk(2, 140.0), mk(3, 55.0)],
    )
}

/// Dense three-lane congestion: every slot of the ego's neighbourhood is
/// likely to be occupied, which maximises feature coverage in tests.
pub fn congestion(seed: u64) -> Result<Simulation, SimError> {
    Simulation::random_traffic(Road::motorway(), 34, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{slot_index, FeatureExtractor, Orientation, SlotFeature};

    #[test]
    fn cut_in_eventually_changes_lane_and_slows_ego() {
        let mut sim = cut_in().unwrap();
        let v0 = sim.vehicles()[0].v;
        sim.run(8.0);
        // The cutter is now in the ego's lane...
        assert_eq!(sim.vehicles()[1].lane, 1);
        assert!(!sim.vehicles()[1].is_changing_lane());
        // ...and the ego had to slow down below its desired speed.
        assert!(sim.vehicles()[0].v < v0 + 1.0);
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(x[slot_index(Orientation::FrontSame, SlotFeature::Present)], 1.0);
    }

    #[test]
    fn slow_leader_provokes_overtaking() {
        let mut sim = slow_leader().unwrap();
        sim.run(30.0);
        // The ego moved to the left lane (or already passed and returned);
        // either way it must not be stuck at the leader's speed.
        let ego = &sim.vehicles()[0];
        assert!(
            ego.v > 20.0,
            "ego stuck behind slow leader at {} m/s",
            ego.v
        );
    }

    #[test]
    fn left_platoon_sets_the_property_guard_immediately() {
        let sim = left_platoon().unwrap();
        let x = FeatureExtractor::new().extract(&sim, 0).unwrap();
        assert_eq!(
            x[slot_index(Orientation::SideLeft, SlotFeature::Present)],
            1.0
        );
        assert_eq!(
            x[slot_index(Orientation::FrontLeft, SlotFeature::Present)],
            1.0
        );
        assert_eq!(
            x[slot_index(Orientation::RearLeft, SlotFeature::Present)],
            1.0
        );
    }

    #[test]
    fn left_platoon_ego_never_initiates_into_an_occupied_lane() {
        // The manoeuvre-level veto: whenever any vehicle *begins* a lane
        // change, the target lane must have been clear of abreast traffic
        // (|Δs| ≤ 12 m) in the pre-step state.
        let mut sim = left_platoon().unwrap();
        let mut prev: Vec<_> = sim.vehicles().to_vec();
        for _ in 0..600 {
            sim.step();
            for (k, v) in sim.vehicles().iter().enumerate() {
                let started = v.is_changing_lane() && !prev[k].is_changing_lane();
                if !started {
                    continue;
                }
                let target = v.lane;
                for (j, other) in prev.iter().enumerate() {
                    if j == k || !other.occupies_lane(target) {
                        continue;
                    }
                    let mut dx = sim.road().forward_gap(prev[k].s, other.s);
                    if dx > 0.5 * sim.road().length() {
                        dx -= sim.road().length();
                    }
                    assert!(
                        dx.abs() > 12.0,
                        "vehicle {} started into lane {target} with vehicle {} abreast (dx {dx:.1}) at t={:.1}",
                        v.id(),
                        other.id(),
                        sim.time()
                    );
                }
            }
            prev = sim.vehicles().to_vec();
        }
    }

    #[test]
    fn congestion_fills_most_slots() {
        let mut sim = congestion(5).unwrap();
        sim.run(10.0);
        let ex = FeatureExtractor::new();
        // Across all vehicles, every orientation should be occupied
        // somewhere in dense traffic.
        let mut seen = [false; 8];
        for v in sim.vehicles() {
            let x = ex.extract(&sim, v.id()).unwrap();
            for (k, o) in Orientation::ALL.iter().enumerate() {
                if x[slot_index(*o, SlotFeature::Present)] >= 0.5 {
                    seen[k] = true;
                }
            }
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 7,
            "congestion left orientations unseen: {seen:?}"
        );
    }
}
