//! Property-based invariants of the traffic simulation and feature
//! extraction.

use certnn_sim::features::FeatureExtractor;
use certnn_sim::road::{Road, SurfaceCondition};
use certnn_sim::simulation::Simulation;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across random traffic and run lengths: no collisions, speeds in
    /// range, positions wrapped, lanes valid.
    #[test]
    fn physical_invariants_hold(
        n in 2usize..30,
        seed in any::<u64>(),
        steps in 10usize..300,
    ) {
        let road = Road::motorway();
        let mut sim = Simulation::random_traffic(road, n, seed).unwrap();
        for _ in 0..steps {
            sim.step();
        }
        prop_assert!(sim.min_same_lane_gap() > 0.0, "collision");
        let cap = sim.road().speed_limit() * 1.25 + 1e-9;
        for v in sim.vehicles() {
            prop_assert!(v.v >= 0.0 && v.v <= cap);
            prop_assert!(v.s >= 0.0 && v.s < sim.road().length());
            prop_assert!(sim.road().has_lane(v.lane));
            prop_assert!(v.lateral_offset.abs() <= 1.0 + 1e-9);
        }
    }

    /// Every extracted feature vector lies inside the declared bounds for
    /// every vehicle, surface and moment.
    #[test]
    fn features_always_inside_declared_box(
        n in 2usize..20,
        seed in any::<u64>(),
        surface_pick in 0u8..3,
        run_secs in 0.0f64..20.0,
    ) {
        let surface = match surface_pick {
            0 => SurfaceCondition::Dry,
            1 => SurfaceCondition::Wet,
            _ => SurfaceCondition::Icy,
        };
        let road = Road::new(3, 3.5, 500.0, 33.0, surface).unwrap();
        let mut sim = Simulation::random_traffic(road, n, seed).unwrap();
        sim.run(run_secs);
        let bounds = FeatureExtractor::bounds();
        let ex = FeatureExtractor::new();
        for v in sim.vehicles() {
            let x = ex.extract(&sim, v.id()).unwrap();
            for (i, (&xi, b)) in x.as_slice().iter().zip(&bounds).enumerate() {
                prop_assert!(
                    b.widened(1e-9).contains(xi),
                    "feature {i} = {xi} outside {b} (surface {surface})"
                );
            }
        }
    }

    /// Expert actions stay physically plausible for all seeds.
    #[test]
    fn expert_actions_bounded(n in 2usize..20, seed in any::<u64>()) {
        let mut sim = Simulation::random_traffic(Road::motorway(), n, seed).unwrap();
        sim.run(15.0);
        for v in sim.vehicles() {
            let a = sim.expert_action(v.id()).unwrap();
            prop_assert!(a[0].abs() < 4.0, "lateral {}", a[0]);
            prop_assert!(a[1].abs() < 6.0, "accel {}", a[1]);
        }
    }
}
