//! Service-level cache fault suite: a damaged certificate store must
//! never produce a wrong answer. Corruption is detected by checksum, the
//! query is solved fresh with bit-identical values, the outcome is
//! honestly tagged on the degradation ladder, and a good entry replaces
//! the damaged one.

use certnn_linalg::Interval;
use certnn_nn::network::Network;
use certnn_serve::cache::Store;
use certnn_serve::client::Client;
use certnn_serve::protocol::{Disposition, JobOutcome, JobRequest};
use certnn_serve::server::{ServeOptions, Server};
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::VerifierOptions;
use certnn_verify::Degradation;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "certnn-serve-cachefault-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_request(seed: u64) -> JobRequest {
    let net = Network::relu_mlp(3, &[6, 6], 1, seed).expect("tiny net");
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).expect("box");
    let objective = LinearObjective::output(0);
    JobRequest::from_query(&net, &spec, &objective, &VerifierOptions::default(), None)
}

/// Boots a daemon on `dir`, submits `req` once and returns the outcome
/// with its disposition and the daemon's corrupt-detection count.
fn one_shot(dir: &Path, req: &JobRequest) -> (JobOutcome, Disposition, u64) {
    let server = Server::start(ServeOptions::loopback(dir)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    let submitted = client.submit(req).expect("submits");
    let outcome = client.result(submitted.job).expect("result arrives");
    let corrupt = server.stats().get("serve.cache_corrupt");
    (outcome, submitted.disposition, corrupt)
}

fn values_bit_equal(a: &JobOutcome, b: &JobOutcome) {
    assert_eq!(a.status, b.status);
    assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
    assert_eq!(a.best_value.map(f64::to_bits), b.best_value.map(f64::to_bits));
    assert_eq!(a.witness, b.witness);
}

#[test]
fn byte_flip_corruption_forces_a_tagged_fresh_solve_and_heals_the_entry() {
    let dir = temp_dir("flip");
    let req = tiny_request(11);

    // Clean solve: fresh and exact.
    let (clean, disposition, _) = one_shot(&dir, &req);
    assert_eq!(disposition, Disposition::Fresh);
    assert_eq!(clean.degradation, Degradation::Exact);
    assert!(!clean.cache_hit);

    // Flip one byte in the middle of the stored certificate.
    let store = Store::open(&dir).expect("store opens");
    let path = store.cert_path(clean.key);
    let mut bytes = std::fs::read(&path).expect("cert file exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("corruption lands");

    // A restarted daemon must detect the damage, solve fresh and tag
    // the outcome — same ladder as a damaged checkpoint — while the
    // verdict itself stays bit-identical.
    let (degraded, disposition, corrupt) = one_shot(&dir, &req);
    assert_eq!(
        disposition,
        Disposition::Fresh,
        "a corrupt entry must not be served as a cache hit"
    );
    assert_eq!(corrupt, 1, "the detection must be counted");
    assert_eq!(degraded.degradation, Degradation::CheckpointFallback);
    assert!(!degraded.cache_hit);
    values_bit_equal(&degraded, &clean);

    // The fresh solve healed the entry: the next daemon serves it from
    // disk, still carrying its honest provenance tag.
    let (healed, disposition, corrupt) = one_shot(&dir, &req);
    assert_eq!(disposition, Disposition::CacheHit);
    assert_eq!(corrupt, 0);
    assert!(healed.cache_hit);
    assert_eq!(healed.degradation, Degradation::CheckpointFallback);
    values_bit_equal(&healed, &clean);
    assert!(!store.has_temp_files(), "no temp files may leak");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_certificates_are_rejected_at_service_level() {
    let dir = temp_dir("trunc");
    let req = tiny_request(12);
    let (clean, _, _) = one_shot(&dir, &req);

    let store = Store::open(&dir).expect("store opens");
    let path = store.cert_path(clean.key);
    let full = std::fs::read(&path).expect("cert file exists");
    // A sampled ladder of service-level truncations (the exhaustive
    // every-prefix sweep runs against the store directly below and in
    // the cache unit suite): each one must be detected, re-solved
    // bit-identically and re-written.
    for cut in [0, 1, 7, full.len() / 4, full.len() / 2, full.len() - 9, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).expect("truncation lands");
        let (outcome, disposition, corrupt) = one_shot(&dir, &req);
        assert_eq!(
            disposition,
            Disposition::Fresh,
            "a {cut}-byte prefix must not answer as a cache hit"
        );
        assert_eq!(corrupt, 1, "truncation at {cut} bytes went undetected");
        assert_eq!(outcome.degradation, Degradation::CheckpointFallback);
        values_bit_equal(&outcome, &clean);
    }
    assert!(!store.has_temp_files());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_prefix_of_a_stored_certificate_is_rejected_by_the_store() {
    // The exhaustive regression: no prefix of a sealed entry may decode.
    // Runs against the store directly so the sweep costs no solves.
    let dir = temp_dir("prefix");
    let req = tiny_request(13);
    let (clean, _, _) = one_shot(&dir, &req);

    let store = Store::open(&dir).expect("store opens");
    let path = store.cert_path(clean.key);
    let full = std::fs::read(&path).expect("cert file exists");
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).expect("truncation lands");
        match store.get_cert(clean.key, &req) {
            Err(certnn_serve::cache::Miss::Corrupt) => {}
            Ok(_) => panic!("a {cut}/{}-byte prefix decoded", full.len()),
            Err(m) => panic!("unexpected miss {m:?} at cut {cut}"),
        }
        // Detection deletes the damaged file.
        assert!(!path.exists(), "corrupt entry not deleted at cut {cut}");
    }
    // The intact entry still round-trips after the sweep.
    std::fs::write(&path, &full).expect("restore");
    let restored = store.get_cert(clean.key, &req).expect("intact entry decodes");
    values_bit_equal(&restored, &clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_valid_entry_under_the_wrong_key_is_treated_as_corrupt() {
    // A structurally valid certificate copied over another key's file
    // must not be served: the embedded key is part of the sealed body.
    let dir = temp_dir("swap");
    let req_a = tiny_request(14);
    let req_b = tiny_request(15);
    let (a, _, _) = one_shot(&dir, &req_a);
    let (b, _, _) = one_shot(&dir, &req_b);
    assert_ne!(a.key, b.key);

    let store = Store::open(&dir).expect("store opens");
    std::fs::copy(store.cert_path(b.key), store.cert_path(a.key)).expect("swap lands");

    let (outcome, disposition, corrupt) = one_shot(&dir, &req_a);
    assert_eq!(disposition, Disposition::Fresh, "foreign entry must not be served");
    assert_eq!(corrupt, 1);
    values_bit_equal(&outcome, &a);
    let _ = std::fs::remove_dir_all(&dir);
}
