//! Kill-safety of the daemon binary: a `certnn-serve` process killed
//! (SIGKILL — no drain, no destructors) in the middle of a solve must
//! lose no work it acknowledged. The restarted daemon re-queues the job
//! from its crash-safe spool, resumes the search from the last
//! checkpoint, and reaches a verdict bit-identical to an uninterrupted
//! in-process run.
//!
//! Spawns real daemon processes, so the test is `#[ignore]` by default;
//! the `./ci --serve` gate runs it explicitly.

use certnn_linalg::Interval;
use certnn_nn::network::Network;
use certnn_serve::client::Client;
use certnn_serve::protocol::{Disposition, JobRequest};
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Verifier, VerifierOptions};
use certnn_verify::Degradation;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "certnn-serve-crash-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A query heavy enough (several seconds, ~5k branch-and-bound nodes)
/// that a daemon checkpointing every node is reliably still solving when
/// killed. The 32-dimensional input box keeps `Engine::Auto` on the
/// hybrid branch-and-bound engine — the one that checkpoints.
type Query = (Network, InputSpec, LinearObjective, VerifierOptions);

fn slow_query() -> Query {
    let net = Network::relu_mlp(32, &[12, 12], 1, 7).expect("net");
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 32]).expect("box");
    (net, spec, LinearObjective::output(0), VerifierOptions::default())
}

/// Spawns the daemon binary over `dir` and resolves its bound address
/// through the `--port-file` handshake.
fn spawn_daemon(dir: &Path, port_file: &Path) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_certnn-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--dir",
            &dir.display().to_string(),
            "--workers",
            "1",
            "--checkpoint-every",
            "1",
            "--port-file",
            &port_file.display().to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "daemon never published its port");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

fn wait_for_file_in(dir: &Path, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let populated = std::fs::read_dir(dir)
            .map(|mut entries| entries.next().is_some())
            .unwrap_or(false);
        if populated {
            return;
        }
        assert!(Instant::now() < deadline, "no {what} appeared in {}", dir.display());
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
#[ignore = "spawns daemon processes; run via ./ci --serve"]
fn killed_daemon_resumes_to_the_uninterrupted_verdict() {
    let (net, spec, objective, opts) = slow_query();
    let req = JobRequest::from_query(&net, &spec, &objective, &opts, None);

    // The uninterrupted reference, solved in-process.
    let reference = Verifier::with_options(opts)
        .maximize(&net, &spec, &objective)
        .expect("reference solve");
    let reference_best = reference.best_value.expect("reference witness value");

    let dir = temp_dir("kill");
    let port_file = dir.join("port");

    // First daemon: accept the job, checkpoint furiously, die mid-solve.
    let (mut child, addr) = spawn_daemon(&dir, &port_file);
    let mut client = Client::connect(addr.trim()).expect("connects");
    let submitted = client.submit(&req).expect("submits");
    assert_eq!(submitted.disposition, Disposition::Fresh);
    // The spool entry is durable the moment the submission is
    // acknowledged; the first checkpoint proves the solve is mid-flight.
    wait_for_file_in(&dir.join("jobs"), "spool entry");
    wait_for_file_in(&dir.join("ckpt"), "checkpoint");
    child.kill().expect("SIGKILL lands");
    child.wait().expect("daemon reaped");
    drop(client);
    assert!(
        std::fs::read_dir(dir.join("jobs")).expect("spool dir").next().is_some(),
        "the killed daemon must leave its job spool behind"
    );

    // Second daemon over the same directory: the job resumes without
    // being resubmitted.
    let (mut child, addr) = spawn_daemon(&dir, &port_file);
    let mut client = Client::connect(addr.trim()).expect("reconnects");
    let stats = client.stats().expect("stats");
    let resumed = stats
        .iter()
        .find(|(n, _)| n == "serve.jobs_resumed")
        .map(|&(_, v)| v)
        .expect("jobs_resumed counter");
    assert!(resumed >= 1, "restarted daemon did not re-queue the spooled job");

    // Submitting the identical query coalesces onto the resumed solve
    // (or hits the cache if it already finished) — never a fresh solve.
    let submitted = client.submit(&req).expect("resubmits");
    assert_ne!(
        submitted.disposition,
        Disposition::Fresh,
        "resumed job must absorb the identical resubmission"
    );
    let outcome = client.result(submitted.job).expect("resumed verdict arrives");
    assert_eq!(outcome.status, reference.status);
    assert_eq!(
        outcome.upper_bound.to_bits(),
        reference.upper_bound.to_bits(),
        "resumed proven bound must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        outcome.best_value.map(f64::to_bits),
        Some(reference_best.to_bits()),
        "resumed witness value must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        outcome.degradation,
        Degradation::Exact,
        "a clean checkpoint resume is not a degradation"
    );
    assert_eq!(
        outcome.stats.nodes, reference.stats.nodes as u64,
        "cumulative node count must match the uninterrupted search"
    );

    // Graceful shutdown this time: the daemon drains and exits zero.
    client.shutdown_server().expect("shutdown acknowledged");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "drained daemon must exit cleanly: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
