//! Live-telemetry end-to-end suite: a daemon under load must answer
//! `METRICS` with non-zero windowed rates and live queue/worker gauges,
//! serve parseable Prometheus text over `--prom`, propagate client span
//! contexts into per-job flight recorders, and keep a finished job's
//! flight log retrievable over the wire after a daemon restart.

use certnn_linalg::Interval;
use certnn_nn::network::Network;
use certnn_obs::SpanContext;
use certnn_serve::client::Client;
use certnn_serve::flight::FlightKind;
use certnn_serve::protocol::{Disposition, JobRequest};
use certnn_serve::server::{ServeOptions, Server};
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::VerifierOptions;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "certnn-serve-telemetry-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A query the daemon solves in well under a second.
fn tiny_request(seed: u64) -> JobRequest {
    let net = Network::relu_mlp(3, &[6, 6], 1, seed).expect("tiny net");
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).expect("box");
    let objective = LinearObjective::output(0);
    JobRequest::from_query(&net, &spec, &objective, &VerifierOptions::default(), None)
}

/// A query that reliably runs for seconds, so the daemon can be observed
/// mid-solve. The generous time limit is a backstop, not the expected
/// path — the test cancels the job once it has seen what it needs.
fn slow_request() -> JobRequest {
    let net = Network::relu_mlp(32, &[12, 12], 1, 7).expect("net");
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 32]).expect("box");
    let objective = LinearObjective::output(0);
    let opts = VerifierOptions {
        threads: 1,
        time_limit: Some(Duration::from_secs(120)),
        ..VerifierOptions::default()
    };
    JobRequest::from_query(&net, &spec, &objective, &opts, None)
}

#[test]
fn metrics_mid_solve_report_live_gauges_and_windowed_rates() {
    let dir = temp_dir("metrics");
    let server = Server::start(ServeOptions {
        workers: 1,
        ..ServeOptions::loopback(&dir)
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");

    let slow = client.submit(&slow_request()).expect("slow job accepted");
    assert_eq!(slow.disposition, Disposition::Fresh);
    // An identical second submission coalesces onto the in-flight entry
    // and bumps the dedicated counter.
    let again = client.submit(&slow_request()).expect("resubmission accepted");
    assert_eq!(again.disposition, Disposition::Coalesced);
    assert_eq!(again.key, slow.key);
    // A different query queues behind the busy single worker.
    let queued = client.submit(&tiny_request(42)).expect("tiny job accepted");
    assert_eq!(queued.disposition, Disposition::Fresh);

    // Wait until the worker has actually picked the slow job up, then
    // interrogate the live snapshot mid-solve.
    let deadline = Instant::now() + Duration::from_secs(30);
    let metrics = loop {
        let m = client.metrics().expect("METRICS answers");
        if m.workers_busy >= 1 {
            break m;
        }
        assert!(Instant::now() < deadline, "worker never went busy");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(metrics.workers_total, 1);
    assert!(metrics.uptime_ns > 0);
    assert!(
        metrics.queue_depth >= 2,
        "slow job running + tiny job queued, got depth {}",
        metrics.queue_depth
    );
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert_eq!(counter("serve.jobs_submitted"), 3);
    assert_eq!(counter("serve.jobs_coalesced"), 1);
    assert_eq!(counter("serve.queue_depth"), metrics.queue_depth);
    // The submissions happened within the trailing window, so their
    // windowed per-second rate must be live (non-zero) — this holds
    // whether or not the runtime obs switch is on.
    let rate = metrics
        .rates
        .iter()
        .find(|(n, _)| n == "serve.jobs_submitted")
        .map_or(0.0, |(_, r)| *r);
    assert!(rate > 0.0, "windowed submission rate is dead: {rate}");
    // The recent-event ring carries the daemon's own milestones.
    assert!(
        metrics.events.iter().any(|(_, name)| name == "serve.started"),
        "event ring missing serve.started: {:?}",
        metrics.events
    );

    // Queue-wait percentiles appear once at least one job was popped.
    assert!(
        metrics
            .windows
            .iter()
            .any(|(n, w)| n == "serve.queue_wait_nanos" && w.count > 0),
        "no windowed queue-wait histogram mid-solve"
    );

    client.cancel(slow.job).expect("cancel accepted");
    let outcome = client.result(queued.job).expect("tiny job still solves");
    assert_eq!(outcome.status, certnn_verify::MilpStatus::Optimal);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prometheus_endpoint_serves_parseable_exposition() {
    let dir = temp_dir("prom");
    let server = Server::start(ServeOptions {
        workers: 1,
        prom_addr: Some("127.0.0.1:0".to_string()),
        ..ServeOptions::loopback(&dir)
    })
    .expect("daemon starts");
    let prom = server.prom_addr().expect("prom listener bound");

    // Put at least one job through so counters are non-trivial.
    let mut client = Client::connect(server.addr()).expect("connects");
    let submitted = client.submit(&tiny_request(9)).expect("accepted");
    client.result(submitted.job).expect("solved");

    let fetch = |request: &[u8]| -> String {
        let mut stream = std::net::TcpStream::connect(prom).expect("prom connects");
        stream.write_all(request).expect("request written");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response read");
        response
    };

    let response = fetch(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    let body = response.split_once("\r\n\r\n").expect("header split").1;
    let samples = certnn_serve::prom::parse_check(body)
        .unwrap_or_else(|e| panic!("unparseable exposition: {e}\n{body}"));
    assert!(samples >= 10, "suspiciously few samples: {samples}");
    assert!(body.contains("certnn_serve_up 1"));
    assert!(body.contains("certnn_serve_workers_total 1"));
    assert!(body.contains("certnn_serve_jobs_submitted_total 1"));
    // Windowed rates surface as *_per_second gauges.
    assert!(
        body.contains("certnn_serve_jobs_submitted_per_second"),
        "no windowed rate in exposition:\n{body}"
    );

    // Non-GET requests are refused without killing the daemon.
    let response = fetch(b"POST /metrics HTTP/1.0\r\n\r\n");
    assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    let response = fetch(b"GET /anything HTTP/1.0\r\n\r\n");
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_log_carries_trace_and_survives_daemon_restart() {
    let dir = temp_dir("flight");
    let ctx = SpanContext { trace_id: 0xfeed_beef, span_id: 77 };
    let key;
    {
        let server = Server::start(ServeOptions {
            workers: 1,
            ..ServeOptions::loopback(&dir)
        })
        .expect("daemon starts");
        let mut client = Client::connect(server.addr()).expect("connects");
        let submitted = client
            .submit_traced(&tiny_request(3), Some(ctx))
            .expect("accepted");
        key = submitted.key;
        client.result(submitted.job).expect("solved");

        let log = client.flight(submitted.job).expect("FLIGHT answers");
        assert_eq!(log.key, key);
        assert_eq!(log.trace_id, ctx.trace_id, "client trace id not propagated");
        let kinds: Vec<FlightKind> = log.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FlightKind::Accepted));
        assert!(kinds.contains(&FlightKind::Finished));
        let accepted = log
            .events
            .iter()
            .find(|e| e.kind == FlightKind::Accepted)
            .expect("accept event");
        assert_eq!(accepted.a, ctx.trace_id);
        let span_open = log
            .events
            .iter()
            .find(|e| e.kind == FlightKind::SpanOpen)
            .expect("solve span recorded");
        assert_eq!(span_open.detail, "serve.solve");
        assert_eq!(span_open.b, ctx.span_id, "solve span not parented under client span");
        drop(server);
    }

    // A fresh daemon over the same directory: the same query is a disk
    // cache hit, and FLIGHT returns the *persisted* recording of the
    // solve that produced the certificate — not the trivial live log of
    // the cache-hit submission.
    {
        let server = Server::start(ServeOptions {
            workers: 1,
            ..ServeOptions::loopback(&dir)
        })
        .expect("daemon restarts");
        let mut client = Client::connect(server.addr()).expect("connects");
        let submitted = client.submit(&tiny_request(3)).expect("accepted");
        assert_eq!(submitted.key, key);
        assert_eq!(submitted.disposition, Disposition::CacheHit);
        let log = client.flight(submitted.job).expect("FLIGHT after restart");
        assert_eq!(log.key, key);
        assert_eq!(log.trace_id, ctx.trace_id, "persisted log lost its trace");
        assert!(
            log.events.iter().any(|e| e.kind == FlightKind::Finished),
            "persisted flight log lost the solve story: {:?}",
            log.events
        );
        drop(server);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
