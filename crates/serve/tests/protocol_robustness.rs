//! Byte-level attacks on a live daemon: every malformed input the wire
//! can carry must map to a typed `ERROR` frame or a clean close — never
//! a panic, a hung worker, or a leaked temp file — and the daemon must
//! keep answering honest clients afterwards.

use certnn_linalg::Interval;
use certnn_nn::network::Network;
use certnn_serve::client::Client;
use certnn_serve::protocol::{kind, Disposition, ErrorCode, JobRequest, Msg, WireConstraint, MAX_THREADS};
use certnn_serve::server::{ServeOptions, Server};
use certnn_serve::wire::{read_frame, write_frame, MAGIC, MAX_BODY, WIRE_VERSION};
use certnn_verify::checkpoint::Fnv1a;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::VerifierOptions;
use certnn_verify::MilpStatus;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "certnn-serve-robust-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but non-trivial query the daemon can solve in well under a
/// second.
fn tiny_request(seed: u64) -> JobRequest {
    let net = Network::relu_mlp(3, &[6, 6], 1, seed).expect("tiny net");
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).expect("box");
    let objective = LinearObjective::output(0);
    JobRequest::from_query(&net, &spec, &objective, &VerifierOptions::default(), None)
}

/// Proves the daemon still answers honest traffic: submits a fresh tiny
/// query end to end.
fn assert_daemon_alive(server: &Server, seed: u64) {
    let mut client = Client::connect(server.addr()).expect("daemon accepts connections");
    let submitted = client.submit(&tiny_request(seed)).expect("daemon accepts jobs");
    let outcome = client.result(submitted.job).expect("daemon solves jobs");
    assert_eq!(outcome.status, MilpStatus::Optimal);
}

/// Reads one frame with a timeout, expecting an `ERROR` message.
fn expect_error_frame(stream: &mut TcpStream) -> (ErrorCode, String) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let frame = read_frame(stream).expect("server answers with a frame");
    match Msg::from_frame(&frame).expect("server frame decodes") {
        Msg::Error { code, message } => (code, message),
        other => panic!("expected ERROR, got {other:?}"),
    }
}

fn no_temp_files(dir: &Path) {
    for sub in ["cache", "jobs"] {
        let Ok(entries) = std::fs::read_dir(dir.join(sub)) else { continue };
        for entry in entries.flatten() {
            assert!(
                entry.path().extension().is_none_or(|e| e != "tmp"),
                "leaked temp file {}",
                entry.path().display()
            );
        }
    }
}

#[test]
fn garbage_truncation_oversize_and_bad_version_are_typed_rejections() {
    let dir = temp_dir("attacks");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");

    // Pure garbage: rejected with a Wire error, connection closed.
    {
        let mut s = TcpStream::connect(server.addr()).expect("connects");
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("writes");
        let (code, _) = expect_error_frame(&mut s);
        assert_eq!(code, ErrorCode::Wire);
    }

    // Unsupported version.
    {
        let mut s = TcpStream::connect(server.addr()).expect("connects");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.push(kind::STATS);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&Fnv1a::new().finish().to_le_bytes());
        s.write_all(&bytes).expect("writes");
        let (code, message) = expect_error_frame(&mut s);
        assert_eq!(code, ErrorCode::Wire);
        assert!(message.contains("version"), "unhelpful message: {message}");
    }

    // Oversized body length.
    {
        let mut s = TcpStream::connect(server.addr()).expect("connects");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(kind::STATS);
        bytes.extend_from_slice(&((MAX_BODY as u32) + 1).to_le_bytes());
        s.write_all(&bytes).expect("writes");
        let (code, message) = expect_error_frame(&mut s);
        assert_eq!(code, ErrorCode::Wire);
        assert!(message.contains("cap"), "unhelpful message: {message}");
    }

    // Torn frame: a valid SUBMIT cut at every interesting prefix. The
    // daemon must notice the truncation (or the close) and never hang.
    let (submit_kind, submit_body) = Msg::Submit { req: Box::new(tiny_request(999)), ctx: None }.to_frame();
    let mut full = Vec::new();
    write_frame(&mut full, submit_kind, &submit_body).expect("encodes");
    let cuts: Vec<usize> = (0..full.len().min(32))
        .chain([full.len() / 2, full.len() - 8, full.len() - 1])
        .collect();
    for cut in cuts {
        let mut s = TcpStream::connect(server.addr()).expect("connects");
        s.write_all(&full[..cut]).expect("writes");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        // Whatever the daemon sends (an error frame or nothing), the
        // stream must reach EOF — the handler must not wedge.
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let mut sink = Vec::new();
        s.read_to_end(&mut sink)
            .unwrap_or_else(|e| panic!("daemon wedged on a {cut}-byte torn frame: {e}"));
    }

    // Corrupted checksum on an otherwise valid frame.
    {
        let mut s = TcpStream::connect(server.addr()).expect("connects");
        let mut bytes = full.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        s.write_all(&bytes).expect("writes");
        let (code, message) = expect_error_frame(&mut s);
        assert_eq!(code, ErrorCode::Wire);
        assert!(message.contains("checksum"), "unhelpful message: {message}");
    }

    // After every attack the daemon still solves fresh queries and has
    // leaked nothing.
    assert_daemon_alive(&server, 1000);
    assert_eq!(server.stats().get("serve.jobs_failed"), 0);
    assert!(server.stats().get("serve.protocol_errors") >= 4);
    no_temp_files(&dir);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_kind_and_reply_kinds_keep_the_connection() {
    let dir = temp_dir("kinds");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
    let mut s = TcpStream::connect(server.addr()).expect("connects");

    // Unknown kind byte in a well-formed frame: typed error, and the
    // *same* connection keeps working (frame boundary was intact).
    write_frame(&mut s, 250, b"whatever").expect("writes");
    let (code, _) = expect_error_frame(&mut s);
    assert_eq!(code, ErrorCode::Malformed);

    // A reply kind sent as a request: same story.
    let (k, body) = Msg::ShutdownReply.to_frame();
    write_frame(&mut s, k, &body).expect("writes");
    let (code, _) = expect_error_frame(&mut s);
    assert_eq!(code, ErrorCode::Malformed);

    // A structurally truncated body behind a valid checksum.
    let (k, body) = Msg::Status { job: 1 }.to_frame();
    write_frame(&mut s, k, &body[..4]).expect("writes");
    let (code, _) = expect_error_frame(&mut s);
    assert_eq!(code, ErrorCode::Malformed);

    // Still the same connection: an honest request now succeeds.
    let (k, body) = Msg::Stats.to_frame();
    write_frame(&mut s, k, &body).expect("writes");
    let frame = read_frame(&mut s).expect("stats reply arrives");
    assert!(matches!(
        Msg::from_frame(&frame).expect("decodes"),
        Msg::StatsReply { .. }
    ));

    assert_daemon_alive(&server, 1001);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_job_ids_and_invalid_payloads_are_typed() {
    let dir = temp_dir("unknown");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");

    // Unknown job id on every job-addressed request.
    for msg in [Msg::Status { job: 777 }, Msg::Result { job: 777, wait: false }] {
        let mut s = TcpStream::connect(server.addr()).expect("connects");
        let (k, body) = msg.to_frame();
        write_frame(&mut s, k, &body).expect("writes");
        let (code, _) = expect_error_frame(&mut s);
        assert_eq!(code, ErrorCode::UnknownJob);
    }
    assert_eq!(client.cancel(777).expect("cancel replies"), 3);

    // A structurally valid SUBMIT whose payload is not a solvable query
    // (network text does not parse).
    let mut bad = tiny_request(5);
    bad.network_text = "not a network".to_string();
    match client.submit(&bad) {
        Err(certnn_serve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::InvalidJob);
        }
        other => panic!("expected InvalidJob, got {other:?}"),
    }

    // NotReady surfaces as Ok(None) through try_result.
    let submitted = client.submit(&tiny_request(6)).expect("submits");
    // (may already be done; both answers are legal, neither may error)
    let _ = client.try_result(submitted.job).expect("try_result is typed");
    let outcome = client.result(submitted.job).expect("result arrives");
    assert_eq!(outcome.status, MilpStatus::Optimal);

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn out_of_range_indices_and_absurd_thread_counts_are_invalid_jobs() {
    // Well-formed frames whose *contents* are hostile: indices past the
    // network's inputs/outputs would panic inside the encoder, and an
    // unclamped thread count would make a worker attempt that many OS
    // thread spawns. All must be rejected as InvalidJob before a worker
    // ever sees them, and the daemon must keep solving honest queries.
    let dir = temp_dir("hostile");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");

    let mut bad_constraint = tiny_request(30);
    bad_constraint.constraints.push(WireConstraint {
        relation: 0,
        rhs: 0.0,
        terms: vec![(u64::MAX, 1.0)], // network has 3 inputs
    });
    let mut bad_objective = tiny_request(31);
    bad_objective.objective_terms = vec![(99, 1.0)]; // network has 1 output
    let mut bad_threads = tiny_request(32);
    bad_threads.threads = MAX_THREADS + 1;
    for (what, bad) in [
        ("constraint index", bad_constraint),
        ("objective index", bad_objective),
        ("thread count", bad_threads),
    ] {
        match client.submit(&bad) {
            Err(certnn_serve::ServeError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::InvalidJob, "hostile {what} not rejected");
            }
            other => panic!("expected InvalidJob for hostile {what}, got {other:?}"),
        }
    }

    // A large-but-legal thread request is clamped to the machine, not
    // rejected and not honoured literally.
    let mut many_threads = tiny_request(33);
    many_threads.threads = MAX_THREADS;
    let submitted = client.submit(&many_threads).expect("clamped job accepted");
    let outcome = client.result(submitted.job).expect("clamped job solves");
    assert_eq!(outcome.status, MilpStatus::Optimal);

    assert_daemon_alive(&server, 34);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_job_disconnect_never_orphans_the_solve() {
    let dir = temp_dir("disconnect");
    let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");

    // Submit from a connection that immediately dies.
    let req = tiny_request(42);
    let job = {
        let mut client = Client::connect(server.addr()).expect("connects");
        let submitted = client.submit(&req).expect("submits");
        assert_eq!(submitted.disposition, Disposition::Fresh);
        submitted.job
        // client dropped here: the TCP connection closes mid-job
    };

    // The job completes anyway and is fetchable from a new connection.
    let mut client = Client::connect(server.addr()).expect("reconnects");
    let outcome = client.result(job).expect("orphaned job still finishes");
    assert_eq!(outcome.status, MilpStatus::Optimal);
    assert_eq!(server.stats().get("serve.jobs_completed"), 1);

    // And the finished certificate is served to later submitters.
    let resubmitted = client.submit(&req).expect("resubmits");
    assert_ne!(resubmitted.disposition, Disposition::Fresh);
    no_temp_files(&dir);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_daemon_rejects_new_work_with_a_typed_error() {
    let dir = temp_dir("drain");
    let mut server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    client.shutdown_server().expect("shutdown acknowledged");
    match client.submit(&tiny_request(77)) {
        Err(certnn_serve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::Draining);
        }
        // The handler may already have closed the connection.
        Err(certnn_serve::ServeError::Protocol(_)) | Err(certnn_serve::ServeError::Io(_)) => {}
        Ok(s) => panic!("draining daemon accepted a job: {s:?}"),
        Err(other) => panic!("unexpected error: {other}"),
    }
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
mod chaos {
    use super::*;

    /// With seeded solver faults armed, injected failures must surface
    /// as *degraded but sound* outcomes over the wire — never as
    /// protocol failures, daemon crashes or hung workers.
    #[test]
    fn injected_solver_faults_degrade_jobs_not_the_protocol() {
        certnn_lp::fault::install(certnn_lp::fault::FaultPlan::seeded(7));
        let dir = temp_dir("chaos");
        let server = Server::start(ServeOptions::loopback(&dir)).expect("daemon starts");
        let mut client = Client::connect(server.addr()).expect("connects");
        for seed in 0..6u64 {
            let submitted = client.submit(&tiny_request(2000 + seed)).expect("submits");
            let outcome = client.result(submitted.job).expect("job finishes despite faults");
            // Sound answer: the proven upper bound dominates any witness.
            if let Some(best) = outcome.best_value {
                assert!(
                    outcome.upper_bound >= best - 1e-6,
                    "unsound bound under fault injection: {} < {best}",
                    outcome.upper_bound
                );
            }
        }
        no_temp_files(&dir);
        drop(server);
        certnn_lp::fault::clear();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
