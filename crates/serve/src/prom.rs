//! Prometheus text exposition for the daemon's live telemetry.
//!
//! [`render_prometheus`] maps a [`LiveMetrics`] snapshot onto the
//! Prometheus text format (version 0.0.4): cumulative counters become
//! `certnn_<name>_total` counters, windowed rates become
//! `certnn_<name>_per_second` gauges, and windowed percentiles become
//! `quantile`-labelled gauges — all over plain HTTP/1.0 GET (the server
//! side lives in [`crate::server`]), so any standard scraper works
//! without touching the binary CNSF protocol.
//!
//! [`parse_check`] is a strict line validator for the exposition format,
//! used by the unit tests and the CI telemetry leg to prove the endpoint
//! emits parseable text rather than eyeballing it.

use crate::protocol::LiveMetrics;
use std::fmt::Write as _;

/// Maps a metric name (`serve.jobs_submitted`) onto a legal Prometheus
/// metric name fragment (`serve_jobs_submitted`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

fn gauge(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
}

/// Renders a live snapshot as Prometheus text exposition.
pub fn render_prometheus(m: &LiveMetrics) -> String {
    let mut out = String::new();
    gauge(&mut out, "certnn_serve_up", 1.0);
    gauge(&mut out, "certnn_serve_uptime_seconds", m.uptime_ns as f64 * 1e-9);
    gauge(&mut out, "certnn_serve_queue_depth", m.queue_depth as f64);
    gauge(&mut out, "certnn_serve_workers_total", m.workers_total as f64);
    gauge(&mut out, "certnn_serve_workers_busy", m.workers_busy as f64);
    gauge(&mut out, "certnn_serve_cache_hit_ratio", m.cache_hit_ratio);
    for (name, v) in &m.counters {
        let n = format!("certnn_{}_total", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &m.rates {
        gauge(&mut out, &format!("certnn_{}_per_second", sanitize(name)), *v);
    }
    for (name, w) in &m.windows {
        let n = format!("certnn_{}_window", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", w.p50);
        let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", w.p95);
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", w.p99);
        let _ = writeln!(out, "{n}_count {}", w.count);
    }
    out
}

/// Strict validator of Prometheus text exposition. Returns the number of
/// samples on success, or a description of the first offending line.
///
/// # Errors
///
/// A `(line number, reason)` rendering when any line fails the format.
pub fn parse_check(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim_start();
            if !(c.starts_with("TYPE ") || c.starts_with("HELP ")) {
                return Err(format!("line {lineno}: comment is neither TYPE nor HELP"));
            }
            continue;
        }
        // `metric_name[{labels}] value`
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {lineno}: no space before value")),
        };
        if value_part.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparseable value {value_part:?}"));
        }
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return Err(format!("line {lineno}: unterminated label set"));
                };
                for pair in labels.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return Err(format!("line {lineno}: label without '='"));
                    };
                    if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {lineno}: malformed label {pair:?}"));
                    }
                }
                n
            }
            None => name_part,
        };
        let mut chars = name.chars();
        let head_ok = chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
        if !head_ok || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(format!("line {lineno}: illegal metric name {name:?}"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WindowHist;

    #[test]
    fn rendered_exposition_passes_the_parse_check() {
        let m = LiveMetrics {
            uptime_ns: 2_500_000_000,
            queue_depth: 3,
            workers_total: 4,
            workers_busy: 2,
            cache_hit_ratio: 0.5,
            counters: vec![("serve.jobs_submitted".into(), 12)],
            rates: vec![("serve.frames_rx".into(), 1.75)],
            windows: vec![(
                "serve.job_wall_nanos".into(),
                WindowHist { count: 9, p50: 10, p95: 90, p99: 99 },
            )],
            events: vec![(1, "serve.started".into())],
        };
        let text = render_prometheus(&m);
        let samples = parse_check(&text).expect("valid exposition");
        // 6 header gauges + 1 counter + 1 rate + 4 window samples.
        assert_eq!(samples, 12);
        assert!(text.contains("certnn_serve_jobs_submitted_total 12"));
        assert!(text.contains("certnn_serve_job_wall_nanos_window{quantile=\"0.95\"} 90"));
        // Dots never leak into metric names.
        assert!(!text.contains("serve.jobs"));
    }

    #[test]
    fn parse_check_rejects_malformed_lines() {
        assert!(parse_check("bad metric\n").is_err()); // space inside name
        assert!(parse_check("name notanumber\n").is_err());
        assert!(parse_check("na-me 1\n").is_err());
        assert!(parse_check("name{q=\"0.5\" 1\n").is_err());
        assert!(parse_check("# FOO whatever\n").is_err());
        assert_eq!(parse_check("# TYPE x counter\nx 1\nx{a=\"b\"} 2\n"), Ok(2));
    }
}
