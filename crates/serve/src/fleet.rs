//! The paper's fleet experiment, executed over the wire.
//!
//! [`run_fleet_over`] trains the same fleet the in-process
//! [`certnn_core::fleet::run_fleet`] trains — identical data, identical
//! seed schedule — but ships every verification query to a running
//! `certnn-serve` daemon instead of solving in-process. Training is
//! deterministic ([`certnn_core::fleet::train_member`]) and the daemon
//! solves under exactly [`FleetConfig::verifier_options`], so the two
//! paths produce **bit-identical** verdicts; the e2e suite holds them to
//! that. All member queries are submitted before any result is awaited,
//! so the daemon's worker pool supplies the parallelism that the local
//! path gets from its scoped threads.

use crate::client::Client;
use crate::protocol::{JobOutcome, JobRequest};
use crate::ServeError;
use certnn_core::fleet::{
    fleet_dataset, member_seed, train_member, FleetConfig, FleetMember, FleetResult,
};
use certnn_core::scenario::{lateral_mean_objectives, left_vehicle_spec};
use certnn_nn::gmm::OutputLayout;
use certnn_verify::bab::resolve_threads;
use certnn_verify::Degradation;
use std::net::ToSocketAddrs;
use std::time::Instant;

/// Runs the fleet experiment against the daemon at `addr`.
///
/// # Errors
///
/// [`ServeError::Core`] on data/training failure, [`ServeError::Remote`]
/// if the daemon rejects or fails a job, any wire error otherwise.
pub fn run_fleet_over(
    addr: impl ToSocketAddrs + Copy,
    config: &FleetConfig,
) -> Result<FleetResult, ServeError> {
    let (data, samples) = fleet_dataset(config)?;
    let layout = OutputLayout::new(1);
    let spec = left_vehicle_spec();
    let objectives = lateral_mean_objectives(layout);
    // Mirror run_fleet's worker resolution: the option set depends on it.
    let workers = resolve_threads(config.threads).min(config.fleet_size.max(1));
    let opts = config.verifier_options(workers);

    let mut client = Client::connect(addr)?;
    let mut pending = Vec::with_capacity(config.fleet_size);
    for i in 0..config.fleet_size {
        let seed = member_seed(i);
        let started = Instant::now();
        let (net, final_loss) = train_member(config, seed, &data)?;
        let jobs = objectives
            .iter()
            .map(|obj| {
                let req = JobRequest::from_query(&net, &spec, obj, &opts, None);
                client.submit(&req).map(|s| s.job)
            })
            .collect::<Result<Vec<u64>, ServeError>>()?;
        pending.push((seed, final_loss, started, jobs));
    }

    let mut members = Vec::with_capacity(config.fleet_size);
    for (seed, final_loss, started, jobs) in pending {
        let outcomes = jobs
            .into_iter()
            .map(|job| client.result(job))
            .collect::<Result<Vec<JobOutcome>, ServeError>>()?;
        members.push(member_from_outcomes(
            seed,
            final_loss,
            config.bound,
            started,
            &outcomes,
        ));
    }
    Ok(FleetResult {
        members,
        bound: config.bound,
        samples,
    })
}

/// Aggregates one member's per-component outcomes exactly as the
/// in-process [`certnn_core::scenario::max_lateral_velocity`] does.
fn member_from_outcomes(
    seed: u64,
    final_loss: f64,
    bound: f64,
    started: Instant,
    outcomes: &[JobOutcome],
) -> FleetMember {
    let mut nodes = 0usize;
    let mut lp_iterations = 0usize;
    let mut warm_solves = 0usize;
    let mut cold_solves = 0usize;
    let mut pivots_saved = 0usize;
    let mut lp_skipped = 0usize;
    let mut degradation = Degradation::Exact;
    for o in outcomes {
        nodes += o.stats.nodes as usize;
        lp_iterations += o.stats.lp_iterations as usize;
        warm_solves += o.stats.warm_solves as usize;
        cold_solves += o.stats.cold_solves as usize;
        pivots_saved += o.stats.pivots_saved as usize;
        lp_skipped += o.stats.lp_skipped as usize;
        degradation = degradation.merge(o.degradation);
    }
    let verified_max = outcomes
        .iter()
        .map(JobOutcome::exact_max)
        .collect::<Option<Vec<f64>>>()
        .map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
    FleetMember {
        seed,
        final_loss,
        verified_max,
        safe: verified_max.map(|v| v <= bound),
        wall_secs: started.elapsed().as_secs_f64(),
        nodes,
        lp_iterations,
        warm_solves,
        cold_solves,
        pivots_saved,
        lp_skipped,
        degradation,
    }
}
