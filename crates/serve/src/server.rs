//! The verification daemon: TCP accept loop, bounded worker pool, job
//! table with request coalescing, certificate cache, and graceful drain.
//!
//! # Lifecycle of a job
//!
//! 1. `SUBMIT` arrives; the payload is parsed and validated, its
//!    content-address ([`crate::protocol::job_key_of`]) computed.
//! 2. The job table is consulted: an identical in-flight job coalesces
//!    (no second solve), a cached certificate answers immediately, and
//!    only a genuinely new query is spooled to disk and queued.
//! 3. A worker pops the job and runs the workspace
//!    [`certnn_verify::verifier::Verifier`] under the request's own
//!    budget, with a cancellable [`Deadline`] and the checkpoint policy,
//!    so a killed daemon resumes mid-search on restart.
//! 4. The finished certificate is cached atomically, the spool entry
//!    removed, and every waiter/watcher woken.
//!
//! # Drain semantics
//!
//! [`Server::shutdown`] stops accepting work (`Draining` errors), cancels
//! running solves via their deadlines, and *keeps* the spool entries and
//! checkpoints of interrupted jobs. A daemon restarted over the same
//! directory re-queues them and resumes from the last snapshot — the
//! crash-safety contract of the checkpoint layer, extended to the
//! service boundary.

use crate::cache::{Miss, Store};
use crate::flight::{FlightKind, FlightRecorder};
use crate::protocol::{
    job_key_of, Disposition, ErrorCode, JobOutcome, JobRequest, JobState, LiveMetrics, Msg,
    WindowHist,
};
use crate::wire::{read_frame, write_frame, ProtocolError};
use certnn_obs::{FieldValue, SpanContext, WindowValue};
use certnn_nn::network::Network;
use certnn_verify::bab::resolve_threads;
use certnn_verify::checkpoint::CheckpointPolicy;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Verifier, VerifierOptions};
use certnn_verify::{Deadline, Degradation, MilpStatus};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll cadence of connection handlers while idle (bounds how long a
/// handler can outlive a drain).
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Read timeout while a frame is known to be in flight.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; port `0` picks a free port.
    pub addr: String,
    /// Root directory of the cache, spool and checkpoints.
    pub dir: PathBuf,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Checkpoint cadence in branch-and-bound nodes (`0` = the
    /// checkpoint layer's default).
    pub checkpoint_every: usize,
    /// Optional Prometheus text-exposition listener (plain HTTP/1.0
    /// `GET` on any path); `None` disables the endpoint.
    pub prom_addr: Option<String>,
}

impl ServeOptions {
    /// Options listening on an OS-assigned loopback port with state
    /// under `dir`.
    pub fn loopback(dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            dir: dir.into(),
            workers: 0,
            checkpoint_every: 0,
            prom_addr: None,
        }
    }
}

/// Declares the serve-layer counter block. The struct fields and the
/// [`ServeStats::snapshot`] mirror list are generated from one field
/// list, so they cannot drift apart when a counter is added.
macro_rules! serve_stats {
    ($( $(#[$doc:meta])* $field:ident ),+ $(,)?) => {
        /// Always-on serve-layer counters. These are plain atomics — unlike the
        /// obs registry they never no-op, because the daemon's own behaviour
        /// (drain decisions, test assertions) depends on them. Every increment
        /// is mirrored into the `serve.*` obs counters (subject to the
        /// observability switch) and into the windowed `serve.*` rates behind
        /// the `METRICS` frame.
        #[derive(Debug, Default)]
        pub struct ServeStats {
            $( $(#[$doc])* pub $field: AtomicU64, )+
        }

        impl ServeStats {
            /// Name-sorted snapshot of every counter. Generated from the
            /// same list as the struct fields — see [`serve_stats!`].
            pub fn snapshot(&self) -> Vec<(String, u64)> {
                let mut v = vec![
                    $( (
                        concat!("serve.", stringify!($field)).to_string(),
                        self.$field.load(Ordering::Relaxed),
                    ), )+
                ];
                v.sort();
                v
            }
        }
    };
}

serve_stats! {
    /// Jobs accepted over the wire (including coalesced and cache hits).
    jobs_submitted,
    /// Jobs finished by a worker with a usable outcome.
    jobs_completed,
    /// Jobs that failed structurally in the verifier.
    jobs_failed,
    /// Jobs cancelled by a client.
    jobs_cancelled,
    /// Jobs re-queued from the spool at startup.
    jobs_resumed,
    /// Submissions coalesced onto an identical in-memory entry (a
    /// strict subset of `cache_hits`).
    jobs_coalesced,
    /// Submissions answered without a fresh solve (memory coalesce or
    /// disk certificate).
    cache_hits,
    /// Submissions that required a fresh solve.
    cache_misses,
    /// Cache entries rejected by checksum and deleted.
    cache_corrupt,
    /// Frames rejected by the wire layer.
    protocol_errors,
    /// Frames successfully read.
    frames_rx,
    /// Frames successfully written.
    frames_tx,
}

macro_rules! stat {
    ($stats:expr, $field:ident) => {{
        $stats.$field.fetch_add(1, Ordering::Relaxed);
        certnn_obs::counter(concat!("serve.", stringify!($field))).inc();
        certnn_obs::windowed_counter(concat!("serve.", stringify!($field))).inc();
    }};
}

impl ServeStats {
    /// Reads one counter by its full name (test helper).
    pub fn get(&self, name: &str) -> u64 {
        self.snapshot()
            .into_iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| v)
    }
}

/// A parsed, validated query — shared between the submit path (keying)
/// and the worker (solving).
struct Query {
    net: Network,
    spec: InputSpec,
    objective: LinearObjective,
    options: VerifierOptions,
}

/// Internal job state (the wire [`JobState`] plus payloads).
enum State {
    Queued,
    Running,
    Done(Arc<JobOutcome>),
    Failed(String),
    Cancelled,
    Drained,
}

impl State {
    fn wire(&self) -> JobState {
        match self {
            State::Queued => JobState::Queued,
            State::Running => JobState::Running,
            State::Done(_) => JobState::Done,
            State::Failed(_) => JobState::Failed,
            State::Cancelled => JobState::Cancelled,
            State::Drained => JobState::Drained,
        }
    }

    fn terminal(&self) -> bool {
        !matches!(self, State::Queued | State::Running)
    }
}

struct JobEntry {
    key: u64,
    query: Arc<Query>,
    /// The wire request as it arrived — sealed into the certificate so
    /// the cache can prove an entry answers exactly this query.
    request: Arc<JobRequest>,
    state: State,
    deadline: Deadline,
    /// The cache entry under this key was corrupt at submit; the fresh
    /// outcome is tagged with the degradation ladder.
    cache_was_corrupt: bool,
    cancel_requested: bool,
    enqueued_at: Instant,
    /// Bounded audit log of everything the daemon did for this job.
    flight: Arc<FlightRecorder>,
    /// Client span context the solve's spans parent under.
    ctx: Option<SpanContext>,
}

/// One client-visible job id. Several ids may share one entry (request
/// coalescing); whether *this* submission cost a solve is a property of
/// the id, not the entry.
struct IdEntry {
    idx: usize,
    cache_hit: bool,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    ids: HashMap<u64, IdEntry>,
    by_key: HashMap<u64, usize>,
    entries: Vec<JobEntry>,
    queue: VecDeque<usize>,
    running: usize,
}

impl JobTable {
    fn assign_id(&mut self, idx: usize, cache_hit: bool) -> u64 {
        self.next_id += 1;
        self.ids.insert(self.next_id, IdEntry { idx, cache_hit });
        self.next_id
    }

    fn lookup(&self, job: u64) -> Option<(usize, bool)> {
        self.ids.get(&job).map(|id| (id.idx, id.cache_hit))
    }

    fn depth(&self) -> u64 {
        (self.queue.len() + self.running) as u64
    }
}

/// Capacity of the recent-events ring reported by `METRICS`.
const EVENT_RING: usize = 64;

struct Shared {
    table: Mutex<JobTable>,
    cond: Condvar,
    store: Store,
    stats: ServeStats,
    ckpt_dir: PathBuf,
    checkpoint_every: usize,
    draining: AtomicBool,
    addr: SocketAddr,
    /// When the daemon started (uptime, event timestamps).
    started: Instant,
    /// Size of the worker pool (for the `METRICS` utilization gauge).
    workers_total: usize,
    /// Recent `serve.*` event names with nanosecond offsets from start.
    events: Mutex<VecDeque<(u64, String)>>,
    /// Bound Prometheus listener address, when `--prom` is active.
    prom_addr: Option<SocketAddr>,
}

/// Emits a `serve.*` obs event and mirrors its name into the bounded
/// ring the `METRICS` frame reports.
fn note_event(shared: &Shared, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    certnn_obs::event(name, fields);
    let t_ns = shared.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let mut ring = shared.events.lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() >= EVENT_RING {
        ring.pop_front();
    }
    ring.push_back((t_ns, name.to_string()));
}

/// A running verification daemon.
///
/// Dropping the server drains it (equivalent to [`Server::shutdown`]
/// followed by [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    prom: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, reloads the spool, and starts the accept loop and worker
    /// pool.
    ///
    /// # Errors
    ///
    /// I/O error when the address cannot be bound or the state
    /// directories cannot be created.
    pub fn start(options: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let prom_listener = match &options.prom_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let store = Store::open(&options.dir)?;
        let ckpt_dir = options.dir.join("ckpt");
        std::fs::create_dir_all(&ckpt_dir)?;

        let worker_count = if options.workers == 0 {
            resolve_threads(0)
        } else {
            options.workers
        };

        let shared = Arc::new(Shared {
            table: Mutex::new(JobTable::default()),
            cond: Condvar::new(),
            store,
            stats: ServeStats::default(),
            ckpt_dir,
            checkpoint_every: options.checkpoint_every,
            draining: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            workers_total: worker_count,
            events: Mutex::new(VecDeque::new()),
            prom_addr: prom_listener.as_ref().and_then(|l| l.local_addr().ok()),
        });

        resume_spool(&shared);

        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        let prom = match prom_listener {
            Some(listener) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("serve-prom".to_string())
                        .spawn(move || prom_loop(&listener, &shared))?,
                )
            }
            None => None,
        };

        note_event(
            &shared,
            "serve.started",
            vec![("addr", addr.to_string().into()), ("workers", (worker_count as u64).into())],
        );
        Ok(Self {
            shared,
            workers,
            accept: Some(accept),
            prom,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound Prometheus exposition address, when `--prom` is active.
    pub fn prom_addr(&self) -> Option<SocketAddr> {
        self.shared.prom_addr
    }

    /// The serve-layer counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Begins a drain: new submissions are rejected, queued jobs are
    /// parked (spool kept), running solves are cancelled at their next
    /// deadline poll. Returns immediately; [`Server::wait`] joins.
    pub fn shutdown(&self) {
        drain(&self.shared);
    }

    /// Blocks until the accept loop and every worker have exited.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prom.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// Marks the daemon as draining and unblocks every parked thread.
fn drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    note_event(shared, "serve.draining", vec![]);
    {
        let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
        // Park queued jobs: spool survives, the next daemon re-queues.
        while let Some(idx) = table.queue.pop_front() {
            if matches!(table.entries[idx].state, State::Queued) {
                let key = table.entries[idx].key;
                table.entries[idx].state = State::Drained;
                table.by_key.remove(&key);
            }
        }
        // Interrupt running solves; their checkpoints make the work
        // resumable.
        for entry in &mut table.entries {
            if matches!(entry.state, State::Running) {
                entry.deadline.cancel();
            }
        }
        shared.cond.notify_all();
    }
    // Unblock the accept loops with throwaway connections.
    let _ = TcpStream::connect(shared.addr);
    if let Some(prom) = shared.prom_addr {
        let _ = TcpStream::connect(prom);
    }
}

/// Re-queues every spooled job left behind by a previous daemon.
fn resume_spool(shared: &Arc<Shared>) {
    let (jobs, dropped) = shared.store.load_jobs();
    for _ in 0..dropped {
        stat!(shared.stats, cache_corrupt);
    }
    let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
    for (key, req) in jobs {
        // A certificate may already exist if the previous daemon died
        // between caching and spool removal; finish the bookkeeping.
        if shared.store.get_cert(key, &req).is_ok() {
            shared.store.remove_job(key);
            continue;
        }
        let Some(query) = parse_query(&req) else {
            shared.store.remove_job(key);
            continue;
        };
        let flight = Arc::new(FlightRecorder::new(key, 0));
        flight.record(FlightKind::Resumed, 0, 0, "");
        let idx = table.entries.len();
        table.entries.push(JobEntry {
            key,
            query: Arc::new(query),
            request: Arc::new(req),
            state: State::Queued,
            deadline: Deadline::cancellable(),
            cache_was_corrupt: false,
            cancel_requested: false,
            enqueued_at: Instant::now(),
            flight,
            ctx: None,
        });
        table.by_key.insert(key, idx);
        table.queue.push_back(idx);
        table.assign_id(idx, false);
        stat!(shared.stats, jobs_resumed);
    }
    shared.cond.notify_all();
}

fn parse_query(req: &JobRequest) -> Option<Query> {
    if req.threads > crate::protocol::MAX_THREADS {
        return None;
    }
    let net = req.parse_network().ok()?;
    let spec = req.input_spec().ok()?;
    if spec.bounds().len() != net.inputs() {
        return None;
    }
    // Every wire index is attacker-controlled; an out-of-range feature
    // or output index would otherwise panic deep inside the encoder.
    if spec
        .constraints()
        .iter()
        .flat_map(|c| c.terms.iter())
        .any(|&(i, _)| i >= net.inputs())
    {
        return None;
    }
    let objective = req.objective();
    objective.check_against(&net).ok()?;
    Some(Query {
        options: req.verifier_options(),
        objective,
        net,
        spec,
    })
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let (idx, key, query, request, deadline, cache_was_corrupt, queued_for, flight, ctx) = {
            let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
            let idx = loop {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                // Skip entries cancelled while still queued.
                match table.queue.pop_front() {
                    Some(idx) if matches!(table.entries[idx].state, State::Queued) => break idx,
                    Some(_) => continue,
                    None => {
                        table = shared
                            .cond
                            .wait_timeout(table, IDLE_POLL)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            };
            let entry = &mut table.entries[idx];
            entry.state = State::Running;
            table.running += 1;
            shared.cond.notify_all();
            let entry = &table.entries[idx];
            (
                idx,
                entry.key,
                Arc::clone(&entry.query),
                Arc::clone(&entry.request),
                entry.deadline.clone(),
                entry.cache_was_corrupt,
                entry.enqueued_at.elapsed(),
                Arc::clone(&entry.flight),
                entry.ctx,
            )
        };
        let queue_wait_ns = queued_for.as_nanos().min(u128::from(u64::MAX)) as u64;
        certnn_obs::histogram("serve.queue_wait_nanos").record(queue_wait_ns);
        certnn_obs::windowed_histogram("serve.queue_wait_nanos").record(queue_wait_ns);

        // Each job key gets its own checkpoint directory: the query
        // fingerprint excludes budget knobs, so two concurrent jobs
        // differing only in budget would otherwise race on the same
        // snapshot file (and resume across budgets, skewing stats).
        let ckpt_dir = shared.ckpt_dir.join(format!("{key:016x}"));
        let _ = std::fs::create_dir_all(&ckpt_dir);
        let mut policy = CheckpointPolicy::new(&ckpt_dir);
        if shared.checkpoint_every > 0 {
            policy.every_nodes = shared.checkpoint_every;
        }
        policy.seed = key;
        policy.resume = true;
        let verifier = Verifier::with_options(query.options)
            .with_deadline(deadline)
            .with_checkpoints(policy);
        // The solve runs under a serve-side span parented under the
        // client's propagated span context (when the submission carried
        // one); checkpoint and phase figures are obs-collector deltas
        // around the solve — exact with one worker, approximate under
        // concurrency (see `crate::flight`).
        let span = certnn_obs::span_child_of("serve.solve", ctx.map(|c| c.span_id));
        flight.record(
            FlightKind::SpanOpen,
            span.id().unwrap_or(0),
            ctx.map_or(0, |c| c.span_id),
            "serve.solve",
        );
        let ckpt_written0 = certnn_obs::counter("ckpt.written").get();
        let ckpt_bytes0 = certnn_obs::counter("ckpt.bytes").get();
        let phases0 = certnn_obs::phase_totals();
        // Last-resort backstop: the solver already catches per-node
        // panics, but any panic escaping here would kill this worker for
        // good and strand the job Running with every waiter blocked.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            verifier.maximize(&query.net, &query.spec, &query.objective)
        }))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!("solver panicked: {msg}")
        })
        .and_then(|r| r.map_err(|e| e.to_string()));
        let ckpt_written = certnn_obs::counter("ckpt.written").get() - ckpt_written0;
        let ckpt_bytes = certnn_obs::counter("ckpt.bytes").get() - ckpt_bytes0;
        if ckpt_written > 0 || ckpt_bytes > 0 {
            flight.record(FlightKind::Checkpoint, ckpt_written, ckpt_bytes, "");
        }
        for after in certnn_obs::phase_totals() {
            let before = phases0.iter().find(|p| p.phase == after.phase);
            let d_self = after.self_ns - before.map_or(0, |p| p.self_ns);
            let d_count = after.count - before.map_or(0, |p| p.count);
            if d_self > 0 || d_count > 0 {
                flight.record(FlightKind::Phase, d_self, d_count, after.phase.as_str());
            }
        }
        flight.record(FlightKind::SpanClose, span.id().unwrap_or(0), 0, "");
        drop(span);

        let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
        table.running -= 1;
        let cancelled = table.entries[idx].cancel_requested;
        let draining = shared.draining.load(Ordering::SeqCst);
        match result {
            Ok(r) => {
                if cancelled && r.status == MilpStatus::Aborted {
                    table.entries[idx].state = State::Cancelled;
                    table.by_key.remove(&key);
                    shared.store.remove_job(key);
                    stat!(shared.stats, jobs_cancelled);
                    flight.record(FlightKind::Cancelled, 0, 0, "");
                } else if draining && r.status == MilpStatus::Aborted {
                    // Interrupted by the drain: park it, keep the spool
                    // and checkpoint for the next daemon.
                    table.entries[idx].state = State::Drained;
                    table.by_key.remove(&key);
                    let resumable = std::fs::read_dir(&ckpt_dir)
                        .map(|mut d| d.next().is_some())
                        .unwrap_or(false);
                    flight.record(FlightKind::Drained, u64::from(resumable), 0, "");
                } else {
                    let mut outcome = JobOutcome::from_max_result(key, &r);
                    if cache_was_corrupt {
                        // Answered despite a damaged cache entry: same
                        // ladder as a damaged checkpoint.
                        outcome.degradation =
                            outcome.degradation.merge(Degradation::CheckpointFallback);
                    }
                    certnn_obs::histogram("serve.job_wall_nanos").record(outcome.stats.elapsed_nanos);
                    certnn_obs::windowed_histogram("serve.job_wall_nanos")
                        .record(outcome.stats.elapsed_nanos);
                    if outcome.status != MilpStatus::Aborted
                        && shared.store.put_cert(&outcome, &request).is_err()
                    {
                        note_event(
                            shared,
                            "serve.cache_write_failed",
                            vec![("key", format!("{key:016x}").into())],
                        );
                    }
                    shared.store.remove_job(key);
                    // The finished solve deleted its snapshot; reap the
                    // per-key directory if nothing is left in it.
                    let _ = std::fs::remove_dir(&ckpt_dir);
                    if outcome.degradation != Degradation::Exact {
                        flight.record(
                            FlightKind::Degradation,
                            u64::from(crate::protocol::encode_degradation(outcome.degradation)),
                            0,
                            format!("{:?}", outcome.degradation),
                        );
                    }
                    flight.record(
                        FlightKind::Finished,
                        outcome.stats.nodes,
                        outcome.stats.elapsed_nanos,
                        "",
                    );
                    // Persist the audit trail next to the certificate so
                    // it survives daemon restarts.
                    let _ = shared.store.put_flight(&flight.snapshot());
                    table.entries[idx].state = State::Done(Arc::new(outcome));
                    stat!(shared.stats, jobs_completed);
                }
            }
            Err(e) => {
                table.entries[idx].state = State::Failed(e.clone());
                table.by_key.remove(&key);
                shared.store.remove_job(key);
                stat!(shared.stats, jobs_failed);
                flight.record(FlightKind::Failed, 0, 0, e.clone());
                let _ = shared.store.put_flight(&flight.snapshot());
                note_event(
                    shared,
                    "serve.job_failed",
                    vec![("key", format!("{key:016x}").into()), ("error", e.into())],
                );
            }
        }
        shared.cond.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Accept loop and connection handling
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// Sends one message, counting the frame.
fn send(stream: &mut TcpStream, shared: &Shared, msg: &Msg) -> Result<(), ProtocolError> {
    let (kind, body) = msg.to_frame();
    write_frame(stream, kind, &body)?;
    stream.flush().map_err(|e| ProtocolError::Io(e.kind(), e.to_string()))?;
    stat!(shared.stats, frames_tx);
    Ok(())
}

fn send_error(stream: &mut TcpStream, shared: &Shared, code: ErrorCode, message: &str) {
    let _ = send(
        stream,
        shared,
        &Msg::Error {
            code,
            message: message.to_string(),
        },
    );
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        // Idle-poll: wait for the first byte with a short timeout so a
        // drain is noticed promptly, then commit to the frame.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
        let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(ProtocolError::Closed) => return,
            Err(e) => {
                // Framing is lost; report and hang up.
                stat!(shared.stats, protocol_errors);
                send_error(&mut stream, shared, ErrorCode::Wire, &e.to_string());
                return;
            }
        };
        stat!(shared.stats, frames_rx);
        let msg = match Msg::from_frame(&frame) {
            Ok(msg) => msg,
            Err(e) => {
                // The frame boundary is intact; the connection survives.
                stat!(shared.stats, protocol_errors);
                send_error(&mut stream, shared, ErrorCode::Malformed, &e.to_string());
                continue;
            }
        };
        if handle_message(&mut stream, shared, msg).is_err() {
            return;
        }
    }
}

/// Dispatches one request; `Err` means the connection is unusable.
fn handle_message(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    msg: Msg,
) -> Result<(), ProtocolError> {
    match msg {
        Msg::Submit { req, ctx } => handle_submit(stream, shared, &req, ctx),
        Msg::Status { job } => {
            let table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
            match table.lookup(job) {
                Some((idx, cache_hit)) => {
                    let reply = Msg::StatusReply {
                        state: table.entries[idx].state.wire(),
                        queue_depth: table.depth(),
                        cache_hit,
                    };
                    drop(table);
                    send(stream, shared, &reply)
                }
                None => {
                    drop(table);
                    send_error(stream, shared, ErrorCode::UnknownJob, "no such job");
                    Ok(())
                }
            }
        }
        Msg::Result { job, wait } => handle_result(stream, shared, job, wait),
        Msg::Cancel { job } => {
            let outcome = cancel_job(shared, job);
            send(stream, shared, &Msg::CancelReply { outcome })
        }
        Msg::Watch { job } => handle_watch(stream, shared, job),
        Msg::Stats => {
            let mut entries = shared.stats.snapshot();
            entries.push((
                "serve.queue_depth".to_string(),
                shared.table.lock().unwrap_or_else(|e| e.into_inner()).depth(),
            ));
            entries.sort();
            send(stream, shared, &Msg::StatsReply { entries })
        }
        Msg::Shutdown => {
            send(stream, shared, &Msg::ShutdownReply)?;
            drain(shared);
            Ok(())
        }
        Msg::Metrics => {
            let reply = Msg::MetricsReply(Box::new(live_metrics(shared)));
            send(stream, shared, &reply)
        }
        Msg::Flight { job } => handle_flight(stream, shared, job),
        // Reply kinds arriving at the server are client bugs; answer
        // with a typed error and keep the connection.
        Msg::Submitted { .. }
        | Msg::StatusReply { .. }
        | Msg::ResultReply(_)
        | Msg::CancelReply { .. }
        | Msg::Event { .. }
        | Msg::Error { .. }
        | Msg::ShutdownReply
        | Msg::MetricsReply(_)
        | Msg::FlightReply(_)
        | Msg::StatsReply { .. } => {
            send_error(stream, shared, ErrorCode::Malformed, "reply kind sent as request");
            Ok(())
        }
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    req: &JobRequest,
    ctx: Option<SpanContext>,
) -> Result<(), ProtocolError> {
    if shared.draining.load(Ordering::SeqCst) {
        send_error(stream, shared, ErrorCode::Draining, "daemon is draining");
        return Ok(());
    }
    let Some(query) = parse_query(req) else {
        stat!(shared.stats, jobs_submitted);
        send_error(stream, shared, ErrorCode::InvalidJob, "payload is not a valid query");
        return Ok(());
    };
    let key = job_key_of(&query.net, &query.spec, &query.objective, req);
    let reply = {
        let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the table lock: a drain that set the flag after
        // the entry check above has already swept the queue, so a job
        // enqueued now would never be popped (workers exit on draining)
        // and its waiters would block until restart.
        if shared.draining.load(Ordering::SeqCst) {
            drop(table);
            send_error(stream, shared, ErrorCode::Draining, "daemon is draining");
            return Ok(());
        }
        stat!(shared.stats, jobs_submitted);
        if let Some(&idx) = table.by_key.get(&key) {
            // Identical query already known in-process: coalesce. A
            // finished entry answers like a cache hit; an in-flight one
            // shares the eventual solve.
            let disposition = if table.entries[idx].state.terminal() {
                Disposition::CacheHit
            } else {
                stat!(shared.stats, jobs_coalesced);
                Disposition::Coalesced
            };
            stat!(shared.stats, cache_hits);
            table.entries[idx].flight.record(
                FlightKind::Accepted,
                ctx.map_or(0, |c| c.trace_id),
                0,
                "coalesced",
            );
            let job = table.assign_id(idx, true);
            Msg::Submitted { job, key, disposition }
        } else {
            match shared.store.get_cert(key, req) {
                Ok(mut outcome) => {
                    stat!(shared.stats, cache_hits);
                    outcome.cache_hit = true;
                    let flight = Arc::new(FlightRecorder::new(key, ctx.map_or(0, |c| c.trace_id)));
                    flight.record(
                        FlightKind::Accepted,
                        ctx.map_or(0, |c| c.trace_id),
                        0,
                        "cache_hit",
                    );
                    let idx = table.entries.len();
                    table.entries.push(JobEntry {
                        key,
                        query: Arc::new(query),
                        request: Arc::new(req.clone()),
                        state: State::Done(Arc::new(outcome)),
                        deadline: Deadline::cancellable(),
                        cache_was_corrupt: false,
                        cancel_requested: false,
                        enqueued_at: Instant::now(),
                        flight,
                        ctx,
                    });
                    table.by_key.insert(key, idx);
                    let job = table.assign_id(idx, true);
                    Msg::Submitted { job, key, disposition: Disposition::CacheHit }
                }
                Err(miss) => {
                    let cache_was_corrupt = miss == Miss::Corrupt;
                    if cache_was_corrupt {
                        stat!(shared.stats, cache_corrupt);
                    }
                    stat!(shared.stats, cache_misses);
                    if let Err(e) = shared.store.put_job(key, req) {
                        note_event(
                            shared,
                            "serve.spool_write_failed",
                            vec![("key", format!("{key:016x}").into()), ("kind", format!("{:?}", e.kind()).into())],
                        );
                    }
                    let flight = Arc::new(FlightRecorder::new(key, ctx.map_or(0, |c| c.trace_id)));
                    flight.record(FlightKind::Accepted, ctx.map_or(0, |c| c.trace_id), 0, "");
                    let idx = table.entries.len();
                    table.entries.push(JobEntry {
                        key,
                        query: Arc::new(query),
                        request: Arc::new(req.clone()),
                        state: State::Queued,
                        deadline: Deadline::cancellable(),
                        cache_was_corrupt,
                        cancel_requested: false,
                        enqueued_at: Instant::now(),
                        flight,
                        ctx,
                    });
                    table.by_key.insert(key, idx);
                    table.queue.push_back(idx);
                    let job = table.assign_id(idx, false);
                    shared.cond.notify_all();
                    Msg::Submitted { job, key, disposition: Disposition::Fresh }
                }
            }
        }
    };
    send(stream, shared, &reply)
}

/// Terminal reply for a finished entry, shared by `RESULT` and `WATCH`.
/// `cache_hit` is the *id's* disposition: a coalesced or cache-served
/// submission reports `cache_hit = true` even though the entry's stored
/// outcome came from a fresh solve.
fn terminal_reply(state: &State, cache_hit: bool) -> Msg {
    match state {
        State::Done(outcome) => {
            let mut outcome = (**outcome).clone();
            outcome.cache_hit = outcome.cache_hit || cache_hit;
            Msg::ResultReply(Box::new(outcome))
        }
        State::Failed(e) => Msg::Error {
            code: ErrorCode::JobFailed,
            message: e.clone(),
        },
        State::Cancelled => Msg::Error {
            code: ErrorCode::JobFailed,
            message: "job cancelled".to_string(),
        },
        State::Drained => Msg::Error {
            code: ErrorCode::Draining,
            message: "job parked by drain; resubmit to a live daemon".to_string(),
        },
        State::Queued | State::Running => Msg::Error {
            code: ErrorCode::NotReady,
            message: "job still in flight".to_string(),
        },
    }
}

fn handle_result(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    job: u64,
    wait: bool,
) -> Result<(), ProtocolError> {
    let reply = {
        let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
        let Some((idx, cache_hit)) = table.lookup(job) else {
            drop(table);
            send_error(stream, shared, ErrorCode::UnknownJob, "no such job");
            return Ok(());
        };
        if wait {
            while !table.entries[idx].state.terminal() {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                table = shared
                    .cond
                    .wait_timeout(table, IDLE_POLL)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
        terminal_reply(&table.entries[idx].state, cache_hit)
    };
    send(stream, shared, &reply)
}

fn handle_watch(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    job: u64,
) -> Result<(), ProtocolError> {
    let mut seq = 0u64;
    let mut last: Option<JobState> = None;
    loop {
        let (state, reply) = {
            let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
            let Some((idx, cache_hit)) = table.lookup(job) else {
                drop(table);
                send_error(stream, shared, ErrorCode::UnknownJob, "no such job");
                return Ok(());
            };
            if !table.entries[idx].state.terminal() && !shared.draining.load(Ordering::SeqCst) {
                table = shared
                    .cond
                    .wait_timeout(table, IDLE_POLL)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            let state = table.entries[idx].state.wire();
            let reply = table.entries[idx]
                .state
                .terminal()
                .then(|| terminal_reply(&table.entries[idx].state, cache_hit));
            (state, reply)
        };
        if last != Some(state) {
            last = Some(state);
            send(
                stream,
                shared,
                &Msg::Event {
                    job,
                    seq,
                    state,
                    nodes: certnn_obs::counter("bab.nodes").get(),
                    detail: state.as_str().to_string(),
                },
            )?;
            seq += 1;
        }
        if let Some(reply) = reply {
            return send(stream, shared, &reply);
        }
        if shared.draining.load(Ordering::SeqCst) {
            // Drain with the job still in flight: report and stop.
            return send(stream, shared, &terminal_reply(&State::Drained, false));
        }
    }
}

/// Cancels a job: `0` cancelled while queued, `1` cancellation requested
/// on a running solve, `2` already finished, `3` unknown id.
fn cancel_job(shared: &Shared, job: u64) -> u8 {
    let mut table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
    let Some((idx, _)) = table.lookup(job) else {
        return 3;
    };
    let key = table.entries[idx].key;
    match table.entries[idx].state {
        State::Queued => {
            table.entries[idx].state = State::Cancelled;
            table.entries[idx].cancel_requested = true;
            table.by_key.remove(&key);
            shared.store.remove_job(key);
            stat!(shared.stats, jobs_cancelled);
            shared.cond.notify_all();
            0
        }
        State::Running => {
            table.entries[idx].cancel_requested = true;
            table.entries[idx].deadline.cancel();
            1
        }
        _ => 2,
    }
}

// ---------------------------------------------------------------------------
// Live telemetry: METRICS, FLIGHT and the Prometheus endpoint
// ---------------------------------------------------------------------------

/// Builds the `METRICS` reply: cumulative counters, queue/worker/cache
/// gauges, windowed rates and percentiles, and the recent-event ring.
fn live_metrics(shared: &Shared) -> LiveMetrics {
    let (queue_depth, workers_busy) = {
        let table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
        (table.depth(), table.running as u64)
    };
    let mut counters = shared.stats.snapshot();
    counters.push(("serve.queue_depth".to_string(), queue_depth));
    counters.sort();
    let hits = shared.stats.cache_hits.load(Ordering::Relaxed);
    let misses = shared.stats.cache_misses.load(Ordering::Relaxed);
    let cache_hit_ratio = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let mut rates = Vec::new();
    let mut windows = Vec::new();
    for entry in certnn_obs::window_snapshot().entries {
        match entry.value {
            WindowValue::Rate(r) => rates.push((entry.name.to_string(), r)),
            WindowValue::Histogram(h) => windows.push((
                entry.name.to_string(),
                WindowHist { count: h.count, p50: h.p50, p95: h.p95, p99: h.p99 },
            )),
        }
    }
    let events = shared
        .events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    LiveMetrics {
        uptime_ns: shared.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        queue_depth,
        workers_total: shared.workers_total as u64,
        workers_busy,
        cache_hit_ratio,
        counters,
        rates,
        windows,
        events,
    }
}

/// Answers `FLIGHT`: the persisted log of a finished job when one exists
/// (it survives restarts and is the authoritative record of the solve
/// that produced the cached certificate), the live recorder otherwise.
fn handle_flight(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    job: u64,
) -> Result<(), ProtocolError> {
    let (key, live, done) = {
        let table = shared.table.lock().unwrap_or_else(|e| e.into_inner());
        let Some((idx, _)) = table.lookup(job) else {
            drop(table);
            send_error(stream, shared, ErrorCode::UnknownJob, "no such job");
            return Ok(());
        };
        let entry = &table.entries[idx];
        (entry.key, entry.flight.snapshot(), matches!(entry.state, State::Done(_)))
    };
    let log = if done {
        shared.store.get_flight(key).unwrap_or(live)
    } else {
        live
    };
    send(stream, shared, &Msg::FlightReply(Box::new(log)))
}

/// Accepts plain HTTP connections and answers every `GET` with the
/// Prometheus text exposition of [`live_metrics`]. One request per
/// connection (HTTP/1.0, `Connection: close` semantics); requests are
/// handled on short-lived threads so a stalled scraper cannot block the
/// accept loop, and read/write timeouts bound each handler's lifetime.
fn prom_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("serve-prom-conn".to_string())
            .spawn(move || serve_prom_request(stream, &shared));
    }
}

fn serve_prom_request(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
    let _ = stream.set_write_timeout(Some(FRAME_TIMEOUT));
    // Read the request head (bounded; everything past 4 KiB is ignored —
    // the path and headers don't matter, any GET serves metrics).
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match std::io::Read::read(&mut stream, &mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 4096 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    if !head.starts_with(b"GET ") {
        let _ = stream.write_all(
            b"HTTP/1.0 405 Method Not Allowed\r\nContent-Length: 0\r\n\r\n",
        );
        return;
    }
    let body = crate::prom::render_prometheus(&live_metrics(shared));
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_mirrors_every_counter() {
        let stats = ServeStats::default();
        stats.jobs_coalesced.fetch_add(3, Ordering::Relaxed);
        let snap = stats.snapshot();
        // The struct and the snapshot list are generated from one field
        // list; this pins the full set so a rename or removal is loud.
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "serve.cache_corrupt",
                "serve.cache_hits",
                "serve.cache_misses",
                "serve.frames_rx",
                "serve.frames_tx",
                "serve.jobs_cancelled",
                "serve.jobs_coalesced",
                "serve.jobs_completed",
                "serve.jobs_failed",
                "serve.jobs_resumed",
                "serve.jobs_submitted",
                "serve.protocol_errors",
            ]
        );
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        assert_eq!(stats.get("serve.jobs_coalesced"), 3);
        assert_eq!(stats.get("serve.no_such_counter"), 0);
    }
}
