//! The framing layer of the serve protocol: length-prefixed, versioned,
//! checksummed binary frames over any `Read`/`Write` transport.
//!
//! # Frame format
//!
//! ```text
//! magic "CNSF" | version u32 | kind u8 | body_len u32 | body | fnv64(body)
//! ```
//!
//! All integers are little-endian; floats inside bodies are stored as
//! `f64::to_bits` (the same conventions as the checkpoint codec, so a
//! verdict that crosses the wire is bit-identical to one read from
//! disk). The fixed 13-byte header is parsed before anything else, so a
//! torn, truncated, oversized or garbage frame is rejected with a typed
//! [`ProtocolError`] before a single body byte is interpreted — never a
//! panic, and never an unbounded allocation (the body length is capped
//! at [`MAX_BODY`] and additionally checked against what the socket can
//! actually deliver).

use certnn_verify::checkpoint::Fnv1a;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every frame ("CertNn Serve Frame").
pub const MAGIC: [u8; 4] = *b"CNSF";

/// Current wire-protocol version. Peers reject anything else with
/// [`ProtocolError::UnsupportedVersion`] — no silent best-effort parsing
/// of future formats.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on a frame body. Large enough for any realistic network
/// artifact, small enough that a corrupt length field cannot drive the
/// receiver into an out-of-memory abort.
pub const MAX_BODY: usize = 64 << 20;

/// Bytes of the fixed frame header (magic + version + kind + body len).
pub const HEADER_LEN: usize = 4 + 4 + 1 + 4;

/// Typed failure of the wire layer. Every malformed input maps to a
/// variant here; the connection handler turns them into an `Error` frame
/// for the peer (when the socket still writes) and a clean close — a bad
/// client can never wedge or crash the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Underlying transport failure (kind plus context).
    Io(io::ErrorKind, String),
    /// The frame does not start with [`MAGIC`] — garbage on the socket.
    BadMagic,
    /// The peer speaks a different protocol version.
    UnsupportedVersion(u32),
    /// The advertised body length exceeds [`MAX_BODY`].
    Oversized {
        /// Length the header claimed.
        len: usize,
    },
    /// The transport ended mid-frame (torn write / truncated stream).
    Truncated {
        /// Bytes the parser still needed when the stream ended.
        wanted: usize,
    },
    /// The body does not match its trailing FNV-1a checksum.
    Checksum,
    /// The frame kind byte is not a known message.
    UnknownKind(u8),
    /// A structurally invalid message body (valid checksum, bad data).
    Malformed(&'static str),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// The peer answered with an `Error` frame.
    Remote {
        /// Machine-readable error code (see `protocol::ErrorCode`).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(kind, what) => write!(f, "wire io error ({kind:?}): {what}"),
            ProtocolError::BadMagic => f.write_str("not a serve frame (bad magic)"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            ProtocolError::Oversized { len } => {
                write!(f, "frame body of {len} bytes exceeds the {MAX_BODY} byte cap")
            }
            ProtocolError::Truncated { wanted } => {
                write!(f, "stream ended mid-frame ({wanted} bytes short)")
            }
            ProtocolError::Checksum => f.write_str("frame body checksum mismatch"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Malformed(why) => write!(f, "malformed frame body: {why}"),
            ProtocolError::Closed => f.write_str("peer closed the connection"),
            ProtocolError::Remote { code, message } => {
                write!(f, "peer error {code}: {message}")
            }
        }
    }
}

impl Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { wanted: 0 }
        } else {
            ProtocolError::Io(e.kind(), e.to_string())
        }
    }
}

/// One decoded frame: its kind byte and checksum-verified body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant (see `protocol`).
    pub kind: u8,
    /// Raw message body (already checksum-verified).
    pub body: Vec<u8>,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Writes one frame. The body is checksummed so the receiver detects
/// corruption independent of the transport.
///
/// # Errors
///
/// [`ProtocolError::Io`] on transport failure, or
/// [`ProtocolError::Oversized`] if `body` exceeds [`MAX_BODY`].
pub fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> Result<(), ProtocolError> {
    if body.len() > MAX_BODY {
        return Err(ProtocolError::Oversized { len: body.len() });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&fnv64(body).to_le_bytes());
    w.write_all(&out)?;
    w.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, mapping a mid-read EOF to
/// [`ProtocolError::Truncated`] with the outstanding byte count.
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    wanted: buf.len() - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame, verifying magic, version, length cap and body
/// checksum before returning it.
///
/// # Errors
///
/// [`ProtocolError::Closed`] on EOF at a frame boundary; any other
/// variant for torn, oversized, garbage or corrupt input.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    // The first byte distinguishes a clean close from a torn frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ProtocolError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    header[0] = first[0];
    read_exact(r, &mut header[1..])?;
    if header[..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&header[4..8]);
    let version = u32::from_le_bytes(v);
    if version != WIRE_VERSION {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let kind = header[8];
    let mut l = [0u8; 4];
    l.copy_from_slice(&header[9..13]);
    let len = u32::from_le_bytes(l) as usize;
    if len > MAX_BODY {
        return Err(ProtocolError::Oversized { len });
    }
    let mut body = vec![0u8; len];
    read_exact(r, &mut body)?;
    let mut sum = [0u8; 8];
    read_exact(r, &mut sum)?;
    if fnv64(&body) != u64::from_le_bytes(sum) {
        return Err(ProtocolError::Checksum);
    }
    Ok(Frame { kind, body })
}

// ---------------------------------------------------------------------------
// Body codec
// ---------------------------------------------------------------------------

/// Little-endian body encoder (same conventions as the checkpoint codec).
#[derive(Debug, Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self(Vec::new())
    }
    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f64` by bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Little-endian body decoder with allocation-guarded length prefixes.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ProtocolError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated {
                wanted: n - (self.buf.len() - self.pos),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix that must be realisable from the remaining
    /// bytes (each element at least `elem_bytes` wide), so a corrupt
    /// length cannot trigger a huge allocation.
    pub fn len(&mut self, elem_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| ProtocolError::Malformed("length overflow"))?;
        let remaining = self.buf.len() - self.pos;
        if elem_bytes > 0 && n > remaining / elem_bytes.max(1) {
            return Err(ProtocolError::Truncated {
                wanted: n.saturating_mul(elem_bytes) - remaining,
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], ProtocolError> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ProtocolError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| ProtocolError::Malformed("invalid utf-8"))
    }

    /// `true` when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Rejects trailing bytes — every message must consume its body
    /// exactly, so a frame cannot smuggle undeclared payload.
    pub fn finish(&self) -> Result<(), ProtocolError> {
        if self.done() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes in body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello frames").unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, 7);
        assert_eq!(frame.body, b"hello frames");
        // A second read at the boundary reports a clean close.
        let mut rest: &[u8] = &[];
        assert_eq!(read_frame(&mut rest), Err(ProtocolError::Closed));
    }

    #[test]
    fn garbage_is_rejected_with_bad_magic() {
        let garbage = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        assert_eq!(
            read_frame(&mut garbage.as_slice()),
            Err(ProtocolError::BadMagic)
        );
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"truncate me").unwrap();
        for cut in 0..buf.len() {
            let r = read_frame(&mut &buf[..cut]);
            assert!(
                matches!(r, Err(ProtocolError::Closed | ProtocolError::Truncated { .. })),
                "cut at {cut}/{} must not decode: {r:?}",
                buf.len()
            );
            // Only the zero-byte prefix is a clean close.
            if cut > 0 {
                assert!(matches!(r, Err(ProtocolError::Truncated { .. })));
            }
        }
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"x").unwrap();
        buf[4] = 0xfe; // clobber the version field
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn oversized_length_is_capped_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn body_corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 2, b"checksummed body").unwrap();
        let body_start = HEADER_LEN;
        for i in body_start..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x20;
            assert_eq!(
                read_frame(&mut corrupt.as_slice()),
                Err(ProtocolError::Checksum),
                "flip at byte {i}"
            );
        }
    }

    #[test]
    fn enc_dec_round_trip_and_finish() {
        let mut e = Enc::new();
        e.u8(9);
        e.u32(77);
        e.u64(1 << 40);
        e.f64(-0.0);
        e.str("wire");
        let mut d = Dec::new(&e.0);
        assert_eq!(d.u8().unwrap(), 9);
        assert_eq!(d.u32().unwrap(), 77);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.str().unwrap(), "wire");
        d.finish().unwrap();
        // Trailing bytes are rejected.
        let mut e2 = Enc::new();
        e2.u8(1);
        e2.u8(2);
        let mut d2 = Dec::new(&e2.0);
        assert_eq!(d2.u8().unwrap(), 1);
        assert!(d2.finish().is_err());
        // Corrupt length prefixes cannot force huge allocations.
        let mut e3 = Enc::new();
        e3.u64(u64::MAX);
        let mut d3 = Dec::new(&e3.0);
        assert!(d3.len(8).is_err());
    }
}
