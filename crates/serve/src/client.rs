//! Synchronous client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection and speaks the strict
//! request/reply discipline of [`crate::protocol`]. It is deliberately
//! small and blocking: the daemon is the concurrent party; callers that
//! want parallel submissions open several clients.

use crate::flight::FlightLog;
use crate::protocol::{Disposition, JobOutcome, JobRequest, JobState, LiveMetrics, Msg};
use crate::wire::{read_frame, write_frame};
use crate::ServeError;
use certnn_obs::SpanContext;
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Acknowledgement of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submitted {
    /// Daemon-assigned job id (scoped to the daemon instance).
    pub job: u64,
    /// Content-address of the job.
    pub key: u64,
    /// How the submission was satisfied.
    pub disposition: Disposition,
}

/// A job's state as reported by `STATUS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Jobs queued or running at reply time.
    pub queue_depth: u64,
    /// Whether the job's outcome came from the cache.
    pub cache_hit: bool,
}

/// One progress event of a watched job.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Job state at the event.
    pub state: JobState,
    /// Cumulative branch-and-bound nodes (0 when observability is off).
    pub nodes: u64,
    /// Human-readable detail.
    pub detail: String,
}

/// A connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    fn send(&mut self, msg: &Msg) -> Result<(), ServeError> {
        let (kind, body) = msg.to_frame();
        write_frame(&mut self.stream, kind, &body)?;
        self.stream.flush().map_err(ServeError::Io)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg, ServeError> {
        let frame = read_frame(&mut self.stream)?;
        Ok(Msg::from_frame(&frame)?)
    }

    /// Receives a reply, surfacing server-side `ERROR` frames as
    /// [`ServeError::Remote`].
    fn recv_ok(&mut self) -> Result<Msg, ServeError> {
        match self.recv()? {
            Msg::Error { code, message } => Err(ServeError::Remote { code, message }),
            msg => Ok(msg),
        }
    }

    /// Submits a job. When observability is live the submission carries
    /// this process's span context, so the daemon's solve spans parent
    /// under the caller's trace.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure or a typed server rejection.
    pub fn submit(&mut self, req: &JobRequest) -> Result<Submitted, ServeError> {
        let ctx = certnn_obs::current_span_id().map(SpanContext::new_root);
        self.submit_traced(req, ctx)
    }

    /// Submits a job under an explicit span context (`None` = untraced).
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure or a typed server rejection.
    pub fn submit_traced(
        &mut self,
        req: &JobRequest,
        ctx: Option<SpanContext>,
    ) -> Result<Submitted, ServeError> {
        self.send(&Msg::Submit { req: Box::new(req.clone()), ctx })?;
        match self.recv_ok()? {
            Msg::Submitted { job, key, disposition } => Ok(Submitted { job, key, disposition }),
            _ => Err(ServeError::UnexpectedReply("expected SUBMITTED")),
        }
    }

    /// Queries a job's state.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure or an unknown job.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ServeError> {
        self.send(&Msg::Status { job })?;
        match self.recv_ok()? {
            Msg::StatusReply { state, queue_depth, cache_hit } => Ok(JobStatus {
                state,
                queue_depth,
                cache_hit,
            }),
            _ => Err(ServeError::UnexpectedReply("expected STATUS_REPLY")),
        }
    }

    /// Fetches a job's outcome, blocking server-side until it finishes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with the job's failure/cancellation/drain
    /// code, or a wire failure.
    pub fn result(&mut self, job: u64) -> Result<JobOutcome, ServeError> {
        // Waiting results can outlast any fixed read timeout.
        self.stream.set_read_timeout(None)?;
        self.send(&Msg::Result { job, wait: true })?;
        match self.recv_ok()? {
            Msg::ResultReply(outcome) => Ok(*outcome),
            _ => Err(ServeError::UnexpectedReply("expected RESULT_REPLY")),
        }
    }

    /// Fetches a job's outcome without waiting; `Ok(None)` while the job
    /// is still in flight.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure or a terminal job failure.
    pub fn try_result(&mut self, job: u64) -> Result<Option<JobOutcome>, ServeError> {
        self.send(&Msg::Result { job, wait: false })?;
        match self.recv()? {
            Msg::ResultReply(outcome) => Ok(Some(*outcome)),
            Msg::Error { code, message } => {
                if code == crate::protocol::ErrorCode::NotReady {
                    Ok(None)
                } else {
                    Err(ServeError::Remote { code, message })
                }
            }
            _ => Err(ServeError::UnexpectedReply("expected RESULT_REPLY")),
        }
    }

    /// Cancels a job. Returns the daemon's disposition code
    /// (see [`Msg::CancelReply`]).
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure.
    pub fn cancel(&mut self, job: u64) -> Result<u8, ServeError> {
        self.send(&Msg::Cancel { job })?;
        match self.recv_ok()? {
            Msg::CancelReply { outcome } => Ok(outcome),
            _ => Err(ServeError::UnexpectedReply("expected CANCEL_REPLY")),
        }
    }

    /// Watches a job to completion, invoking `on_event` per progress
    /// event, and returns the final outcome.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure or a terminal job failure.
    pub fn watch(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&WatchEvent),
    ) -> Result<JobOutcome, ServeError> {
        self.stream.set_read_timeout(None)?;
        self.send(&Msg::Watch { job })?;
        loop {
            match self.recv_ok()? {
                Msg::Event { seq, state, nodes, detail, .. } => on_event(&WatchEvent {
                    seq,
                    state,
                    nodes,
                    detail,
                }),
                Msg::ResultReply(outcome) => return Ok(*outcome),
                _ => return Err(ServeError::UnexpectedReply("expected EVENT or RESULT_REPLY")),
            }
        }
    }

    /// Fetches the daemon's serve-layer counters, name-sorted.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ServeError> {
        self.send(&Msg::Stats)?;
        match self.recv_ok()? {
            Msg::StatsReply { entries } => Ok(entries),
            _ => Err(ServeError::UnexpectedReply("expected STATS_REPLY")),
        }
    }

    /// Fetches the daemon's live telemetry snapshot: cumulative
    /// counters, queue/worker/cache gauges, windowed rates and
    /// percentiles, and recent `serve.*` events.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure.
    pub fn metrics(&mut self) -> Result<LiveMetrics, ServeError> {
        self.send(&Msg::Metrics)?;
        match self.recv_ok()? {
            Msg::MetricsReply(m) => Ok(*m),
            _ => Err(ServeError::UnexpectedReply("expected METRICS_REPLY")),
        }
    }

    /// Fetches a job's flight recorder log.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure or an unknown job.
    pub fn flight(&mut self, job: u64) -> Result<FlightLog, ServeError> {
        self.send(&Msg::Flight { job })?;
        match self.recv_ok()? {
            Msg::FlightReply(log) => Ok(*log),
            _ => Err(ServeError::UnexpectedReply("expected FLIGHT_REPLY")),
        }
    }

    /// Asks the daemon to drain and shut down.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on wire failure.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.send(&Msg::Shutdown)?;
        match self.recv_ok()? {
            Msg::ShutdownReply => Ok(()),
            _ => Err(ServeError::UnexpectedReply("expected SHUTDOWN_REPLY")),
        }
    }

    /// Sets a read timeout for subsequent replies (`None` blocks
    /// indefinitely).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket option cannot be set.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }
}
