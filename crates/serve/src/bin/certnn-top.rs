//! `certnn-top` — a self-refreshing terminal dashboard for a running
//! `certnn-serve` daemon.
//!
//! Usage: `certnn-top --addr HOST:PORT [--interval-ms N] [--once] [JOB...]`
//!
//! Polls the daemon's `METRICS` frame every interval (default 1000 ms)
//! and redraws a plain-ANSI dashboard: worker utilization, queue depth,
//! cache hit ratio, windowed per-second rates and p50/p95/p99 latencies
//! over the last 10 seconds, and the daemon's recent `serve.*` events.
//! Any job ids given as positional arguments are additionally `WATCH`ed
//! on dedicated connections and shown as live per-job progress lines.
//!
//! `--once` renders a single frame without clearing the screen (useful
//! in scripts and CI). No external dependencies: the screen is driven
//! with raw ANSI escapes, the wire with the workspace client.

#![warn(clippy::unwrap_used)]

use certnn_serve::client::Client;
use certnn_serve::protocol::{JobState, LiveMetrics};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Latest known progress of one watched job.
#[derive(Debug, Clone)]
struct JobLine {
    state: JobState,
    nodes: u64,
    detail: String,
    finished: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::new();
    let mut interval_ms = 1000u64;
    let mut once = false;
    let mut jobs: Vec<u64> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .unwrap_or_else(|| fail("--addr needs a value"))
                    .clone();
            }
            "--interval-ms" => {
                i += 1;
                interval_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--interval-ms needs an integer"));
            }
            "--once" => once = true,
            other => match other.parse::<u64>() {
                Ok(job) => jobs.push(job),
                Err(_) => fail(&format!("unknown argument `{other}`")),
            },
        }
        i += 1;
    }
    if addr.is_empty() {
        fail("--addr HOST:PORT is required");
    }

    // Each watched job gets its own connection: WATCH streams until the
    // job finishes, so it cannot share the metrics-polling connection.
    let watched: Arc<Mutex<BTreeMap<u64, JobLine>>> = Arc::new(Mutex::new(BTreeMap::new()));
    for job in jobs {
        let addr = addr.clone();
        let watched = Arc::clone(&watched);
        std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(addr.as_str()) else {
                return;
            };
            let update = |line: JobLine| {
                watched
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(job, line);
            };
            let result = client.watch(job, |ev| {
                update(JobLine {
                    state: ev.state,
                    nodes: ev.nodes,
                    detail: ev.detail.clone(),
                    finished: false,
                });
            });
            let detail = match result {
                Ok(outcome) => format!("upper bound {:.6}", outcome.upper_bound),
                Err(e) => format!("{e}"),
            };
            let mut map = watched.lock().unwrap_or_else(|e| e.into_inner());
            let entry = map.entry(job).or_insert(JobLine {
                state: JobState::Done,
                nodes: 0,
                detail: String::new(),
                finished: true,
            });
            entry.finished = true;
            entry.detail = detail;
        });
    }

    let mut client = Client::connect(addr.as_str())
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    loop {
        let metrics = match client.metrics() {
            Ok(m) => m,
            Err(e) => fail(&format!("metrics poll failed: {e}")),
        };
        let frame = render(&addr, &metrics, &watched.lock().unwrap_or_else(|e| e.into_inner()));
        if once {
            print!("{frame}");
            return;
        }
        // Clear + home, then the frame; a trailing clear-to-end removes
        // leftovers from a previously taller frame.
        print!("\x1b[H\x1b[2J{frame}\x1b[0J");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(interval_ms.max(100)));
    }
}

/// A `[####----]`-style utilization bar.
fn bar(used: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        ((used as f64 / total as f64) * width as f64).round() as usize
    }
    .min(width);
    format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
}

fn render(addr: &str, m: &LiveMetrics, watched: &BTreeMap<u64, JobLine>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let bold = "\x1b[1m";
    let dim = "\x1b[2m";
    let reset = "\x1b[0m";
    let _ = writeln!(
        out,
        "{bold}certnn-top{reset} — {addr}   up {:.0}s",
        m.uptime_ns as f64 * 1e-9
    );
    let _ = writeln!(
        out,
        "workers {} {}/{}   queue {}   cache hit ratio {:.2}",
        bar(m.workers_busy, m.workers_total, 16),
        m.workers_busy,
        m.workers_total,
        m.queue_depth,
        m.cache_hit_ratio
    );
    let _ = writeln!(out, "\n{bold}rates (last 10 s){reset}");
    let mut any = false;
    for (name, r) in &m.rates {
        if *r > 0.0 {
            any = true;
            let _ = writeln!(out, "  {name:<28} {r:>8.2}/s");
        }
    }
    if !any {
        let _ = writeln!(out, "  {dim}(idle){reset}");
    }
    if !m.windows.is_empty() {
        let _ = writeln!(out, "\n{bold}latencies (last 10 s){reset}");
        for (name, w) in &m.windows {
            let _ = writeln!(
                out,
                "  {name:<28} n={:<6} p50={:<12} p95={:<12} p99={}",
                w.count, w.p50, w.p95, w.p99
            );
        }
    }
    if !watched.is_empty() {
        let _ = writeln!(out, "\n{bold}watched jobs{reset}");
        for (job, line) in watched {
            let _ = writeln!(
                out,
                "  job {job:<6} {:<9} nodes={:<10} {}{}",
                line.state.as_str(),
                line.nodes,
                line.detail,
                if line.finished { "  *" } else { "" }
            );
        }
    }
    if !m.events.is_empty() {
        let _ = writeln!(out, "\n{bold}recent events{reset}");
        for (t_ns, name) in m.events.iter().rev().take(8) {
            let _ = writeln!(out, "  {dim}[{:>9.3}s]{reset} {name}", *t_ns as f64 * 1e-9);
        }
    }
    out
}
