//! The verification daemon.
//!
//! Usage: `certnn-serve [--addr HOST:PORT] [--dir DIR] [--workers N]
//! [--checkpoint-every N] [--port-file FILE] [--metrics] [--trace FILE]
//! [--prom HOST:PORT]`
//!
//! Binds `--addr` (default `127.0.0.1:0`; port `0` picks a free port —
//! the bound address is printed and, with `--port-file`, written
//! atomically to a file for scripts to poll). All state — certificate
//! cache, job spool, checkpoints — lives under `--dir` (default
//! `serve-state`); restarting the daemon over the same directory resumes
//! every interrupted job from its last checkpoint. `--workers 0` (the
//! default) runs one verification worker per available core.
//!
//! The daemon runs until a client sends the `SHUTDOWN` frame
//! (`certnn-client shutdown`): it then drains — rejecting new work,
//! parking in-flight jobs via their checkpoints — and exits. With
//! `--metrics` the final observability snapshot is printed on exit;
//! `--trace FILE` writes the span/event log as JSON lines.
//!
//! `--prom HOST:PORT` additionally serves the live telemetry as
//! Prometheus text exposition over plain HTTP — any `GET` answers, no
//! scrape configuration beyond the address is needed. Live `METRICS`
//! wire queries (`certnn-client metrics`, `certnn-top`) work regardless
//! of `--metrics`.

#![warn(clippy::unwrap_used)]

use certnn_serve::server::{ServeOptions, Server};
use std::path::PathBuf;

fn main() {
    let mut options = ServeOptions::loopback("serve-state");
    let mut port_file: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut want_metrics = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                options.addr = args[i].clone();
            }
            "--dir" => {
                i += 1;
                options.dir = PathBuf::from(&args[i]);
            }
            "--workers" => {
                i += 1;
                options.workers = args[i].parse().expect("workers must be an integer");
            }
            "--checkpoint-every" => {
                i += 1;
                options.checkpoint_every = args[i]
                    .parse()
                    .expect("checkpoint cadence must be an integer");
            }
            "--port-file" => {
                i += 1;
                port_file = Some(PathBuf::from(&args[i]));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(PathBuf::from(&args[i]));
            }
            "--prom" => {
                i += 1;
                options.prom_addr = Some(args[i].clone());
            }
            "--metrics" => want_metrics = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if trace_path.is_some() || want_metrics {
        certnn_obs::set_enabled(true);
        if !certnn_obs::enabled() {
            eprintln!(
                "--trace/--metrics require a build with the default `obs` \
                 feature; this binary records nothing"
            );
            std::process::exit(2);
        }
    }
    let mut server = match Server::start(options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    println!("certnn-serve listening on {}", server.addr());
    if let Some(prom) = server.prom_addr() {
        println!("prometheus exposition on http://{prom}/metrics");
    }
    if let Some(path) = port_file {
        // Publish atomically so a polling script never reads a torn
        // address.
        let tmp = path.with_extension("tmp");
        let write = std::fs::write(&tmp, server.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("cannot write port file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    server.wait();
    println!("certnn-serve drained");
    if want_metrics {
        print!("{}", certnn_obs::metrics_snapshot().to_table());
    }
    if let Some(path) = trace_path {
        match std::fs::write(&path, certnn_obs::drain_jsonl()) {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("could not write trace: {e}"),
        }
    }
}
