//! Command-line client for a running `certnn-serve` daemon.
//!
//! Usage: `certnn-client --addr HOST:PORT COMMAND [ARGS]`
//!
//! Commands:
//!
//! - `submit NETFILE [--time-limit-ms N] [--node-limit N] [--cold]
//!   [--alpha-iters N] [--no-lp-skip] [--wait]` — submits the paper's
//!   safety query (*maximum lateral velocity when a vehicle is abreast on
//!   the left*) for the network serialized in `NETFILE`
//!   ([`certnn_nn::serialize`] text format). One job per mixture
//!   component; prints each job id and disposition. With `--wait`,
//!   blocks for the outcomes and prints the verified maximum.
//! - `status JOB` — prints a job's lifecycle state.
//! - `result JOB [--no-wait]` — fetches (by default awaiting) a job's
//!   outcome.
//! - `watch JOB` — streams progress events until the job finishes.
//! - `cancel JOB` — cancels a queued or running job.
//! - `stats` — prints the daemon's serve-layer counters.
//! - `metrics [--watch] [--interval-ms N]` — prints the daemon's live
//!   telemetry: gauges, cumulative counters, windowed per-second rates
//!   and p50/p95/p99, and recent events. `--watch` reprints every
//!   interval (default 1000 ms) until interrupted.
//! - `flight JOB` — prints a job's flight recorder (span tree,
//!   checkpoint/phase profile, degradations); works on live jobs and,
//!   for finished jobs, on the log persisted next to the certificate —
//!   including after a daemon restart.
//! - `shutdown` — asks the daemon to drain and exit.

#![warn(clippy::unwrap_used)]

use certnn_core::scenario::{lateral_mean_objectives, left_vehicle_spec};
use certnn_nn::gmm::OutputLayout;
use certnn_serve::client::Client;
use certnn_serve::protocol::JobRequest;
use certnn_serve::ServeError;
use certnn_verify::verifier::VerifierOptions;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut rest = Vec::new();
    let mut i = 0;
    let mut have_addr = false;
    while i < args.len() {
        if args[i] == "--addr" {
            i += 1;
            addr = args
                .get(i)
                .unwrap_or_else(|| fail("--addr needs a value"))
                .clone();
            have_addr = true;
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    if !have_addr {
        fail("--addr HOST:PORT is required");
    }
    let Some(command) = rest.first().cloned() else {
        fail("missing command (submit/status/result/watch/cancel/stats/metrics/flight/shutdown)");
    };
    let mut client = Client::connect(addr.as_str())
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    let result = run(&mut client, &command, &rest[1..]);
    if let Err(e) = result {
        eprintln!("{command} failed: {e}");
        std::process::exit(1);
    }
}

fn parse_job(args: &[String]) -> u64 {
    args.first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fail("expected a numeric job id"))
}

fn run(client: &mut Client, command: &str, args: &[String]) -> Result<(), ServeError> {
    match command {
        "submit" => submit(client, args),
        "status" => {
            let s = client.status(parse_job(args))?;
            println!(
                "state {} (queue depth {}, cache hit {})",
                s.state.as_str(),
                s.queue_depth,
                s.cache_hit
            );
            Ok(())
        }
        "result" => {
            let job = parse_job(args);
            let outcome = if args.contains(&"--no-wait".to_string()) {
                match client.try_result(job)? {
                    Some(o) => o,
                    None => {
                        println!("job {job} still in flight");
                        return Ok(());
                    }
                }
            } else {
                client.result(job)?
            };
            print_outcome(&outcome);
            Ok(())
        }
        "watch" => {
            let outcome = client.watch(parse_job(args), |ev| {
                println!("[{}] {} nodes={} {}", ev.seq, ev.state.as_str(), ev.nodes, ev.detail);
            })?;
            print_outcome(&outcome);
            Ok(())
        }
        "cancel" => {
            let code = client.cancel(parse_job(args))?;
            println!(
                "{}",
                match code {
                    0 => "cancelled (was queued)",
                    1 => "cancellation requested (running)",
                    2 => "already finished",
                    _ => "unknown job",
                }
            );
            Ok(())
        }
        "stats" => {
            for (name, value) in client.stats()? {
                println!("{name:<28} {value}");
            }
            Ok(())
        }
        "metrics" => {
            let watch = args.contains(&"--watch".to_string());
            let mut interval_ms = 1000u64;
            if let Some(pos) = args.iter().position(|a| a == "--interval-ms") {
                interval_ms = args
                    .get(pos + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--interval-ms needs an integer"));
            }
            loop {
                let m = client.metrics()?;
                print_metrics(&m);
                if !watch {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(interval_ms.max(100)));
                println!();
            }
        }
        "flight" => {
            let log = client.flight(parse_job(args))?;
            print_flight(&log);
            Ok(())
        }
        "shutdown" => {
            client.shutdown_server()?;
            println!("daemon draining");
            Ok(())
        }
        other => fail(&format!("unknown command `{other}`")),
    }
}

fn submit(client: &mut Client, args: &[String]) -> Result<(), ServeError> {
    let Some(netfile) = args.first() else {
        fail("submit needs a network file");
    };
    let text = std::fs::read_to_string(netfile)
        .unwrap_or_else(|e| fail(&format!("cannot read {netfile}: {e}")));
    let net = certnn_nn::serialize::from_text(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse {netfile}: {e}")));
    let mut opts = VerifierOptions {
        threads: 1,
        ..VerifierOptions::default()
    };
    let mut node_limit = None;
    let mut wait = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--time-limit-ms" => {
                i += 1;
                let ms: u64 = args[i].parse().unwrap_or_else(|_| fail("bad time limit"));
                opts.time_limit = Some(Duration::from_millis(ms));
            }
            "--node-limit" => {
                i += 1;
                node_limit = Some(args[i].parse().unwrap_or_else(|_| fail("bad node limit")));
            }
            "--cold" => opts.warm_start = false,
            "--alpha-iters" => {
                i += 1;
                opts.alpha_iters = args[i].parse().unwrap_or_else(|_| fail("bad alpha iters"));
            }
            "--no-lp-skip" => opts.lp_skip = false,
            "--wait" => wait = true,
            other => fail(&format!("unknown submit flag `{other}`")),
        }
        i += 1;
    }
    let spec = left_vehicle_spec();
    let layout = OutputLayout::new(1);
    let mut jobs = Vec::new();
    for obj in lateral_mean_objectives(layout) {
        let req = JobRequest::from_query(&net, &spec, &obj, &opts, node_limit);
        let s = client.submit(&req)?;
        println!(
            "job {} key {:016x} ({:?})",
            s.job, s.key, s.disposition
        );
        jobs.push(s.job);
    }
    if wait {
        let mut max: Option<f64> = None;
        for job in jobs {
            let outcome = client.result(job)?;
            print_outcome(&outcome);
            match (max, outcome.exact_max()) {
                (_, None) => {
                    println!("query did not close; no verified maximum");
                    return Ok(());
                }
                (cur, Some(v)) => max = Some(cur.map_or(v, |c| c.max(v))),
            }
        }
        if let Some(v) = max {
            println!("verified maximum lateral velocity: {v:.6} m/s");
        }
    }
    Ok(())
}

fn print_metrics(m: &certnn_serve::protocol::LiveMetrics) {
    println!(
        "uptime {:.1}s  queue {}  workers {}/{}  cache hit ratio {:.2}",
        m.uptime_ns as f64 * 1e-9,
        m.queue_depth,
        m.workers_busy,
        m.workers_total,
        m.cache_hit_ratio
    );
    println!("counters:");
    for (name, v) in &m.counters {
        println!("  {name:<28} {v}");
    }
    if !m.rates.is_empty() {
        println!("rates (last 10 s, events/s):");
        for (name, r) in &m.rates {
            println!("  {name:<28} {r:.2}");
        }
    }
    if !m.windows.is_empty() {
        println!("windows (last 10 s, ns):");
        for (name, w) in &m.windows {
            println!(
                "  {name:<28} n={} p50={} p95={} p99={}",
                w.count, w.p50, w.p95, w.p99
            );
        }
    }
    if !m.events.is_empty() {
        println!("recent events:");
        for (t_ns, name) in &m.events {
            println!("  [{:>9.3}s] {name}", *t_ns as f64 * 1e-9);
        }
    }
}

fn print_flight(log: &certnn_serve::flight::FlightLog) {
    println!(
        "flight log for key {:016x} (trace {:016x}, {} events{})",
        log.key,
        log.trace_id,
        log.events.len(),
        if log.truncated > 0 {
            format!(", {} truncated", log.truncated)
        } else {
            String::new()
        }
    );
    for ev in &log.events {
        println!(
            "  [{:>9.3}s] {:<11} a={} b={} {}",
            ev.t_ns as f64 * 1e-9,
            ev.kind.as_str(),
            ev.a,
            ev.b,
            ev.detail
        );
    }
}

fn print_outcome(o: &certnn_serve::protocol::JobOutcome) {
    println!(
        "key {:016x}: {:?}, upper bound {:.6}, best {}, {} nodes, {} lp iterations, \
         degradation {}, cache hit {}",
        o.key,
        o.status,
        o.upper_bound,
        o.best_value
            .map(|v| format!("{v:.6}"))
            .unwrap_or_else(|| "n.a.".into()),
        o.stats.nodes,
        o.stats.lp_iterations,
        o.degradation.as_str(),
        o.cache_hit
    );
}
