//! Per-job flight recorders: a bounded, structured log of everything the
//! daemon did on behalf of one job, retrievable over the wire (`FLIGHT`)
//! and persisted next to the certificate so a post-hoc audit survives
//! daemon restarts.
//!
//! A [`FlightLog`] captures the serve-side span tree (open/close events
//! with span and parent ids, parented under the client's
//! [`certnn_obs::SpanContext`] when the submission carried one),
//! degradation transitions, checkpoint activity, and the per-phase time
//! profile of the solve. Checkpoint and phase figures are deltas of the
//! process-wide obs collectors taken around the solve on the worker
//! thread — exact with one worker, approximate (attribution may blur
//! across jobs) when several workers solve concurrently; the log says
//! what the daemon observed, the certificate stays the ground truth.
//!
//! **Retention bounds**: a recorder keeps at most [`MAX_EVENTS`] events;
//! further events are counted in [`FlightLog::truncated`] but dropped,
//! so a watcher-heavy or checkpoint-heavy job cannot grow daemon memory
//! without bound. On disk a log is sealed with the store's checksum
//! discipline under `cache/f<key>.flight` — like certificates, flight
//! logs are keyed by content-address, so a resubmission of the same
//! query (same key) finds the recording of the solve that produced its
//! cached certificate.

use crate::wire::{Dec, Enc, ProtocolError};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on events retained per job.
pub const MAX_EVENTS: usize = 256;

/// What a [`FlightEvent`] records. The `a`/`b` payload words are
/// kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Job accepted over the wire. `a` = client trace id (0 = none).
    Accepted,
    /// Job re-queued from the spool at daemon startup.
    Resumed,
    /// A serve-side span opened. `a` = span id, `b` = parent span id
    /// (0 = root); `detail` = span name.
    SpanOpen,
    /// A serve-side span closed. `a` = span id.
    SpanClose,
    /// Checkpoint activity during the solve. `a` = snapshots written,
    /// `b` = bytes written (obs-counter deltas; 0/0 when observability
    /// is off).
    Checkpoint,
    /// The outcome's degradation is worse than `Exact`. `a` = the wire
    /// degradation code; `detail` names it.
    Degradation,
    /// Per-phase profile of the solve. `a` = self nanoseconds,
    /// `b` = enter/exit count; `detail` = phase name.
    Phase,
    /// Finished with a usable outcome. `a` = solver nodes,
    /// `b` = elapsed nanoseconds.
    Finished,
    /// Failed structurally; `detail` carries the error.
    Failed,
    /// Cancelled by a client.
    Cancelled,
    /// Parked by a drain; spool and checkpoint survive. `a` = 1 if a
    /// resumable snapshot was left on disk.
    Drained,
}

impl FlightKind {
    fn as_u8(self) -> u8 {
        match self {
            FlightKind::Accepted => 0,
            FlightKind::Resumed => 1,
            FlightKind::SpanOpen => 2,
            FlightKind::SpanClose => 3,
            FlightKind::Checkpoint => 4,
            FlightKind::Degradation => 5,
            FlightKind::Phase => 6,
            FlightKind::Finished => 7,
            FlightKind::Failed => 8,
            FlightKind::Cancelled => 9,
            FlightKind::Drained => 10,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => FlightKind::Accepted,
            1 => FlightKind::Resumed,
            2 => FlightKind::SpanOpen,
            3 => FlightKind::SpanClose,
            4 => FlightKind::Checkpoint,
            5 => FlightKind::Degradation,
            6 => FlightKind::Phase,
            7 => FlightKind::Finished,
            8 => FlightKind::Failed,
            9 => FlightKind::Cancelled,
            10 => FlightKind::Drained,
            _ => return Err(ProtocolError::Malformed("unknown flight event kind")),
        })
    }

    /// Human-readable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Accepted => "accepted",
            FlightKind::Resumed => "resumed",
            FlightKind::SpanOpen => "span_open",
            FlightKind::SpanClose => "span_close",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::Degradation => "degradation",
            FlightKind::Phase => "phase",
            FlightKind::Finished => "finished",
            FlightKind::Failed => "failed",
            FlightKind::Cancelled => "cancelled",
            FlightKind::Drained => "drained",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Nanoseconds since the job was accepted.
    pub t_ns: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Kind-specific payload word (see [`FlightKind`]).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
    /// Small human-readable detail (span name, phase name, error).
    pub detail: String,
}

/// The retrievable flight log of one job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlightLog {
    /// Content-address of the job this log audits.
    pub key: u64,
    /// Client trace id the job's spans parent under (0 = none).
    pub trace_id: u64,
    /// Events dropped beyond [`MAX_EVENTS`].
    pub truncated: u64,
    /// Retained events in record order.
    pub events: Vec<FlightEvent>,
}

/// A live, bounded per-job recorder. Shared between the submit path, the
/// worker and `FLIGHT` handlers via `Arc`; recording takes a short mutex
/// (never on the solver's hot path — events are serve-layer milestones).
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    log: Mutex<FlightLog>,
}

impl FlightRecorder {
    /// Fresh recorder for a job under `key`, carrying the client's trace
    /// id (0 = untraced).
    pub fn new(key: u64, trace_id: u64) -> Self {
        Self {
            start: Instant::now(),
            log: Mutex::new(FlightLog {
                key,
                trace_id,
                truncated: 0,
                events: Vec::new(),
            }),
        }
    }

    /// Appends one event, timestamped relative to job accept. Beyond
    /// [`MAX_EVENTS`] the event is counted but dropped.
    pub fn record(&self, kind: FlightKind, a: u64, b: u64, detail: impl Into<String>) {
        let t_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        if log.events.len() >= MAX_EVENTS {
            log.truncated += 1;
            return;
        }
        log.events.push(FlightEvent {
            t_ns,
            kind,
            a,
            b,
            detail: detail.into(),
        });
    }

    /// Point-in-time copy of the log.
    pub fn snapshot(&self) -> FlightLog {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Encodes a flight log body (shared by the wire and the on-disk store).
pub fn encode_flight(e: &mut Enc, log: &FlightLog) {
    e.u64(log.key);
    e.u64(log.trace_id);
    e.u64(log.truncated);
    e.u64(log.events.len() as u64);
    for ev in &log.events {
        e.u64(ev.t_ns);
        e.u8(ev.kind.as_u8());
        e.u64(ev.a);
        e.u64(ev.b);
        e.str(&ev.detail);
    }
}

/// Decodes a flight log body.
///
/// # Errors
///
/// [`ProtocolError`] on any truncation or structural violation.
pub fn decode_flight(d: &mut Dec<'_>) -> Result<FlightLog, ProtocolError> {
    let key = d.u64()?;
    let trace_id = d.u64()?;
    let truncated = d.u64()?;
    // Each event is at least t_ns + kind + a + b + empty detail.
    let n = d.len(33)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(FlightEvent {
            t_ns: d.u64()?,
            kind: FlightKind::from_u8(d.u8()?)?,
            a: d.u64()?,
            b: d.u64()?,
            detail: d.str()?,
        });
    }
    Ok(FlightLog {
        key,
        trace_id,
        truncated,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_log_round_trips() {
        let rec = FlightRecorder::new(0xbeef, 77);
        rec.record(FlightKind::Accepted, 77, 0, "");
        rec.record(FlightKind::SpanOpen, 5, 2, "serve.solve");
        rec.record(FlightKind::Phase, 1_000, 3, "bound");
        rec.record(FlightKind::Finished, 42, 9_999, "");
        let log = rec.snapshot();
        let mut e = Enc::new();
        encode_flight(&mut e, &log);
        let mut d = Dec::new(&e.0);
        let back = decode_flight(&mut d).expect("decodes");
        d.finish().expect("consumed");
        assert_eq!(back, log);
        assert_eq!(back.events[1].detail, "serve.solve");
    }

    #[test]
    fn recorder_is_bounded() {
        let rec = FlightRecorder::new(1, 0);
        for i in 0..(MAX_EVENTS as u64 + 50) {
            rec.record(FlightKind::Checkpoint, i, 0, "");
        }
        let log = rec.snapshot();
        assert_eq!(log.events.len(), MAX_EVENTS);
        assert_eq!(log.truncated, 50);
        // Earliest events are the ones retained (the accept/span head of
        // the story is the audit-critical part).
        assert_eq!(log.events[0].a, 0);
    }

    #[test]
    fn truncated_flight_bytes_are_detected() {
        let rec = FlightRecorder::new(2, 0);
        rec.record(FlightKind::Accepted, 0, 0, "");
        rec.record(FlightKind::Failed, 0, 0, "solver panicked");
        let mut e = Enc::new();
        encode_flight(&mut e, &rec.snapshot());
        for cut in 0..e.0.len() {
            let mut d = Dec::new(&e.0[..cut]);
            assert!(
                decode_flight(&mut d).is_err() || !d.done(),
                "prefix {cut}/{} must not decode cleanly",
                e.0.len()
            );
        }
    }
}
