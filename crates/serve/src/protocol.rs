//! Typed messages of the serve protocol, layered on [`crate::wire`].
//!
//! A client speaks a strict request/reply discipline: `SUBMIT`,
//! `STATUS`, `RESULT`, `CANCEL`, `STATS` and `SHUTDOWN` each elicit one
//! reply frame; `WATCH` elicits a stream of `EVENT` frames terminated by
//! a `RESULT` reply (or an `ERROR`). Every message encodes through the
//! allocation-guarded [`Enc`]/[`Dec`] codec and is interpretable on its
//! own — no implicit connection state — which is what makes the
//! robustness suite's byte-level attacks tractable.
//!
//! The unit of work is a [`JobRequest`]: a network (in the workspace's
//! bit-exact text serialisation), an input specification, a linear
//! objective and a resource budget. The unit of value is a
//! [`JobOutcome`]: the solver's verdict plus its full statistics and
//! degradation tag, byte-identical whether it came from a fresh solve,
//! the certificate cache, or a resumed checkpoint.

use crate::flight::{decode_flight, encode_flight, FlightLog};
use crate::wire::{Dec, Enc, Frame, ProtocolError};
use certnn_nn::network::Network;
use certnn_obs::SpanContext;
use certnn_nn::serialize::{from_text, to_text};
use certnn_verify::bab::resolve_threads;
use certnn_verify::checkpoint::{query_fingerprint, Fnv1a};
use certnn_verify::property::{InputSpec, LinearConstraint, LinearObjective, Relation};
use certnn_verify::verifier::{MaxResult, VerifierOptions};
use certnn_verify::{Degradation, MilpStatus};
use std::time::Duration;

/// Upper bound on the per-job `threads` knob a request may carry. The
/// wire value is attacker-controlled and ultimately sizes an OS thread
/// spawn; anything above this is rejected as an invalid job, and even
/// accepted values are clamped to the machine's parallelism before the
/// solver sees them ([`JobRequest::verifier_options`]).
pub const MAX_THREADS: u64 = 4096;

/// Frame kind discriminants (the `kind` byte of every frame).
pub mod kind {
    /// Client → server: submit a job.
    pub const SUBMIT: u8 = 1;
    /// Server → client: job accepted (id + disposition).
    pub const SUBMITTED: u8 = 2;
    /// Client → server: query a job's state.
    pub const STATUS: u8 = 3;
    /// Server → client: job state reply.
    pub const STATUS_REPLY: u8 = 4;
    /// Client → server: fetch a job's outcome (optionally blocking).
    pub const RESULT: u8 = 5;
    /// Server → client: finished job outcome.
    pub const RESULT_REPLY: u8 = 6;
    /// Client → server: cancel a job.
    pub const CANCEL: u8 = 7;
    /// Server → client: cancellation disposition.
    pub const CANCEL_REPLY: u8 = 8;
    /// Client → server: stream progress events until the job finishes.
    pub const WATCH: u8 = 9;
    /// Server → client: one progress event of a watched job.
    pub const EVENT: u8 = 10;
    /// Server → client: typed error.
    pub const ERROR: u8 = 11;
    /// Client → server: drain in-flight work and shut the daemon down.
    pub const SHUTDOWN: u8 = 12;
    /// Server → client: drain acknowledged.
    pub const SHUTDOWN_REPLY: u8 = 13;
    /// Client → server: fetch serve-layer counters.
    pub const STATS: u8 = 14;
    /// Server → client: counter snapshot.
    pub const STATS_REPLY: u8 = 15;
    /// Client → server: fetch the live telemetry snapshot.
    pub const METRICS: u8 = 16;
    /// Server → client: live telemetry snapshot.
    pub const METRICS_REPLY: u8 = 17;
    /// Client → server: fetch a job's flight recorder.
    pub const FLIGHT: u8 = 18;
    /// Server → client: flight recorder contents.
    pub const FLIGHT_REPLY: u8 = 19;
}

/// Machine-readable codes carried by `ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame was structurally invalid.
    Malformed,
    /// The requested job id is not known to this daemon.
    UnknownJob,
    /// The job has not finished and the request did not ask to wait.
    NotReady,
    /// The daemon is draining and accepts no new jobs.
    Draining,
    /// The job ran but the verifier failed structurally.
    JobFailed,
    /// The submitted job payload does not describe a valid query.
    InvalidJob,
    /// The frame itself was rejected by the wire layer.
    Wire,
}

impl ErrorCode {
    /// Wire byte of the code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownJob => 2,
            ErrorCode::NotReady => 3,
            ErrorCode::Draining => 4,
            ErrorCode::JobFailed => 5,
            ErrorCode::InvalidJob => 6,
            ErrorCode::Wire => 7,
        }
    }

    /// Parses a code byte; unknown bytes collapse to [`ErrorCode::Wire`].
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownJob,
            3 => ErrorCode::NotReady,
            4 => ErrorCode::Draining,
            5 => ErrorCode::JobFailed,
            6 => ErrorCode::InvalidJob,
            _ => ErrorCode::Wire,
        }
    }
}

// ---------------------------------------------------------------------------
// Job request
// ---------------------------------------------------------------------------

/// A maximisation query shipped to the daemon: compute (or bound)
/// `max f(out(x))` for `x` in the spec, under an explicit resource
/// budget and solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The network, in the workspace's bit-exact text serialisation
    /// ([`certnn_nn::serialize`]); the server re-parses and re-hashes it,
    /// so the cache key is computed over what actually arrived.
    pub network_text: String,
    /// Input box: `(lo, hi)` per feature.
    pub bounds: Vec<(f64, f64)>,
    /// Linear scenario constraints over the features.
    pub constraints: Vec<WireConstraint>,
    /// Sparse objective terms over the output neurons.
    pub objective_terms: Vec<(u64, f64)>,
    /// Affine constant of the objective.
    pub objective_constant: f64,
    /// Wall-clock budget in milliseconds (`0` = unlimited).
    pub time_limit_ms: u64,
    /// Branch-and-bound node budget (`0` = unlimited).
    pub node_limit: u64,
    /// Search workers for this job's own branch-and-bound (`1` =
    /// deterministic serial order).
    pub threads: u64,
    /// Reuse parent LP bases across nodes.
    pub warm_start: bool,
    /// α-optimization rounds per node (`0` = fixed-slope heuristic).
    pub alpha_iters: u64,
    /// Elide redundant per-node LP relaxations.
    pub lp_skip: bool,
}

/// One linear constraint as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireConstraint {
    /// Relation code: `0` ≤, `1` =, `2` ≥.
    pub relation: u8,
    /// Right-hand side.
    pub rhs: f64,
    /// Sparse `(feature index, coefficient)` terms.
    pub terms: Vec<(u64, f64)>,
}

impl JobRequest {
    /// Builds a request from typed in-process query parts.
    pub fn from_query(
        net: &Network,
        spec: &InputSpec,
        objective: &LinearObjective,
        opts: &VerifierOptions,
        node_limit: Option<usize>,
    ) -> Self {
        Self {
            network_text: to_text(net),
            bounds: spec.bounds().iter().map(|iv| (iv.lo(), iv.hi())).collect(),
            constraints: spec
                .constraints()
                .iter()
                .map(|c| WireConstraint {
                    relation: match c.relation {
                        Relation::Le => 0,
                        Relation::Eq => 1,
                        Relation::Ge => 2,
                    },
                    rhs: c.rhs,
                    terms: c.terms.iter().map(|&(i, v)| (i as u64, v)).collect(),
                })
                .collect(),
            objective_terms: objective
                .terms
                .iter()
                .map(|&(i, v)| (i as u64, v))
                .collect(),
            objective_constant: objective.constant,
            time_limit_ms: opts
                .time_limit
                .map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64),
            node_limit: node_limit.map_or(0, |n| n as u64),
            threads: opts.threads as u64,
            warm_start: opts.warm_start,
            alpha_iters: opts.alpha_iters as u64,
            lp_skip: opts.lp_skip,
        }
    }

    /// Parses the embedded network.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] when the text does not parse.
    pub fn parse_network(&self) -> Result<Network, ProtocolError> {
        from_text(&self.network_text).map_err(|_| ProtocolError::Malformed("unparseable network"))
    }

    /// Reconstructs the typed [`InputSpec`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on an empty/inverted box or a bad
    /// relation code.
    pub fn input_spec(&self) -> Result<InputSpec, ProtocolError> {
        let bounds = self
            .bounds
            .iter()
            .map(|&(lo, hi)| certnn_linalg::Interval::new(lo, hi))
            .collect();
        let mut spec = InputSpec::from_box(bounds)
            .map_err(|_| ProtocolError::Malformed("invalid input box"))?;
        for c in &self.constraints {
            let relation = match c.relation {
                0 => Relation::Le,
                1 => Relation::Eq,
                2 => Relation::Ge,
                _ => return Err(ProtocolError::Malformed("unknown relation code")),
            };
            spec = spec.constrain(LinearConstraint {
                terms: c.terms.iter().map(|&(i, v)| (i as usize, v)).collect(),
                relation,
                rhs: c.rhs,
            });
        }
        Ok(spec)
    }

    /// Reconstructs the typed [`LinearObjective`].
    pub fn objective(&self) -> LinearObjective {
        LinearObjective {
            terms: self
                .objective_terms
                .iter()
                .map(|&(i, v)| (i as usize, v))
                .collect(),
            constant: self.objective_constant,
        }
    }

    /// Verifier options this request asks the daemon to solve under.
    /// The wire `threads` knob is clamped to the machine's available
    /// parallelism (`0` = auto survives the clamp): a client cannot make
    /// a worker attempt an unbounded number of OS thread spawns.
    pub fn verifier_options(&self) -> VerifierOptions {
        VerifierOptions {
            time_limit: (self.time_limit_ms > 0)
                .then(|| Duration::from_millis(self.time_limit_ms)),
            node_limit: (self.node_limit > 0).then_some(self.node_limit as usize),
            threads: usize::try_from(self.threads)
                .unwrap_or(usize::MAX)
                .min(resolve_threads(0)),
            warm_start: self.warm_start,
            alpha_iters: self.alpha_iters as usize,
            lp_skip: self.lp_skip,
            ..VerifierOptions::default()
        }
    }

    /// Content-address of this job: the (weights, property) query
    /// fingerprint folded with every solver knob that can change the
    /// *reported* result (budget, threads, warm/α/skip configuration).
    /// Two requests with equal keys are answerable by one solve; a
    /// certificate cached under this key is exchangeable for running the
    /// solver again.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] when the payload does not describe a
    /// valid query.
    pub fn job_key(&self) -> Result<u64, ProtocolError> {
        let net = self.parse_network()?;
        let spec = self.input_spec()?;
        let objective = self.objective();
        Ok(job_key_of(&net, &spec, &objective, self))
    }
}

/// [`JobRequest::job_key`] over already-parsed query parts (the server
/// parses once and reuses the parts for solving).
pub fn job_key_of(
    net: &Network,
    spec: &InputSpec,
    objective: &LinearObjective,
    req: &JobRequest,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(query_fingerprint(net, spec, objective));
    h.write_u64(req.time_limit_ms);
    h.write_u64(req.node_limit);
    h.write_u64(req.threads);
    h.write_u64(u64::from(req.warm_start));
    h.write_u64(req.alpha_iters);
    h.write_u64(u64::from(req.lp_skip));
    h.finish()
}

// ---------------------------------------------------------------------------
// Job outcome
// ---------------------------------------------------------------------------

/// Solver statistics of a finished job (the wire image of
/// [`certnn_verify::verifier::VerifyStats`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireStats {
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex pivots across all LP solves.
    pub lp_iterations: u64,
    /// Binary variables in the encoding.
    pub binaries: u64,
    /// Constraint rows in the encoding.
    pub rows: u64,
    /// LP solves that reused a parent basis.
    pub warm_solves: u64,
    /// LP solves started from scratch.
    pub cold_solves: u64,
    /// Estimated pivots avoided by warm starts.
    pub pivots_saved: u64,
    /// Nodes whose LP relaxation the skip gate elided.
    pub lp_skipped: u64,
    /// Nodes whose LP relaxation ran while the gate was active.
    pub lp_forced: u64,
    /// Wall-clock nanoseconds of the solve.
    pub elapsed_nanos: u64,
}

/// Outcome of a finished job: verdict, witness and statistics — the
/// payload a certificate cache entry stores and a `RESULT` reply ships.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Content-address the job was solved (and cached) under.
    pub key: u64,
    /// Termination status of the solver.
    pub status: MilpStatus,
    /// Proven upper bound on the objective.
    pub upper_bound: f64,
    /// Best objective value achieved by a real input, if one was found.
    pub best_value: Option<f64>,
    /// An input achieving `best_value`.
    pub witness: Option<Vec<f64>>,
    /// Solver statistics.
    pub stats: WireStats,
    /// Worst degradation encountered answering the query.
    pub degradation: Degradation,
    /// `true` when this outcome was served from the certificate cache
    /// (or coalesced onto another client's identical in-flight solve)
    /// instead of a fresh solve.
    pub cache_hit: bool,
}

impl JobOutcome {
    /// Builds an outcome from an in-process [`MaxResult`].
    pub fn from_max_result(key: u64, r: &MaxResult) -> Self {
        Self {
            key,
            status: r.status,
            upper_bound: r.upper_bound,
            best_value: r.best_value,
            witness: r.witness.as_ref().map(|w| w.iter().copied().collect()),
            stats: WireStats {
                nodes: r.stats.nodes as u64,
                lp_iterations: r.stats.lp_iterations as u64,
                binaries: r.stats.binaries as u64,
                rows: r.stats.rows as u64,
                warm_solves: r.stats.warm_solves as u64,
                cold_solves: r.stats.cold_solves as u64,
                pivots_saved: r.stats.pivots_saved as u64,
                lp_skipped: r.stats.lp_skipped as u64,
                lp_forced: r.stats.lp_forced as u64,
                elapsed_nanos: r.stats.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            },
            degradation: r.stats.degradation,
            cache_hit: false,
        }
    }

    /// `true` if the query closed (bound meets witness).
    pub fn is_exact(&self) -> bool {
        self.status == MilpStatus::Optimal
    }

    /// The exact maximum if the query closed, else `None`.
    pub fn exact_max(&self) -> Option<f64> {
        self.is_exact().then_some(self.best_value).flatten()
    }
}

// ---------------------------------------------------------------------------
// Remaining message payloads
// ---------------------------------------------------------------------------

/// Job lifecycle states as reported by `STATUS`/`EVENT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished with an outcome.
    Done,
    /// The verifier failed structurally.
    Failed,
    /// Cancelled by a client.
    Cancelled,
    /// Interrupted by a drain; its checkpoint and spool entry survive
    /// for the next daemon instance to resume.
    Drained,
}

impl JobState {
    /// Wire byte of the state.
    pub fn as_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
            JobState::Drained => 5,
        }
    }

    /// Parses a state byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on an unknown byte.
    pub fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            5 => JobState::Drained,
            _ => return Err(ProtocolError::Malformed("unknown job state")),
        })
    }

    /// Human-readable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Drained => "drained",
        }
    }
}

/// How a `SUBMIT` was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// A fresh solve was scheduled.
    Fresh,
    /// The request coalesced onto an identical in-flight job.
    Coalesced,
    /// The certificate cache already held the answer.
    CacheHit,
}

impl Disposition {
    fn as_u8(self) -> u8 {
        match self {
            Disposition::Fresh => 0,
            Disposition::Coalesced => 1,
            Disposition::CacheHit => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => Disposition::Fresh,
            1 => Disposition::Coalesced,
            2 => Disposition::CacheHit,
            _ => return Err(ProtocolError::Malformed("unknown disposition")),
        })
    }
}

/// Windowed percentile snapshot of one histogram as it crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowHist {
    /// Samples inside the window.
    pub count: u64,
    /// ~50th percentile.
    pub p50: u64,
    /// ~95th percentile.
    pub p95: u64,
    /// ~99th percentile.
    pub p99: u64,
}

/// The live telemetry snapshot a `METRICS` frame returns: operational
/// gauges, cumulative counters, sliding-window rates and percentiles,
/// and the daemon's recent `serve.*` event ring.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveMetrics {
    /// Nanoseconds since the daemon started.
    pub uptime_ns: u64,
    /// Jobs queued or running right now.
    pub queue_depth: u64,
    /// Worker threads in the pool.
    pub workers_total: u64,
    /// Workers currently solving.
    pub workers_busy: u64,
    /// `cache_hits / (cache_hits + cache_misses)` since start (`0` when
    /// nothing was submitted yet).
    pub cache_hit_ratio: f64,
    /// Cumulative scalar counters (`serve.*`), name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Windowed counters as events-per-second over the sliding window,
    /// name-sorted.
    pub rates: Vec<(String, f64)>,
    /// Windowed histogram percentiles, name-sorted.
    pub windows: Vec<(String, WindowHist)>,
    /// Recent daemon events: `(nanos since start, text)`, oldest first.
    pub events: Vec<(u64, String)>,
}

/// One decoded protocol message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Submit a job, optionally carrying the client's span context so
    /// daemon-side spans parent under the client's trace.
    Submit {
        /// The job payload.
        req: Box<JobRequest>,
        /// Client span context (absent from untraced clients and from
        /// older peers — the field is a trailing optional extension of
        /// the v1 SUBMIT body).
        ctx: Option<SpanContext>,
    },
    /// Submission accepted.
    Submitted {
        /// Daemon-assigned job id.
        job: u64,
        /// Job content-address.
        key: u64,
        /// How the submission was satisfied.
        disposition: Disposition,
    },
    /// Query job state.
    Status {
        /// Job id.
        job: u64,
    },
    /// Job state reply.
    StatusReply {
        /// Current state.
        state: JobState,
        /// Jobs queued ahead plus running, at reply time.
        queue_depth: u64,
        /// Whether the job's outcome came from the cache.
        cache_hit: bool,
    },
    /// Fetch a job outcome.
    Result {
        /// Job id.
        job: u64,
        /// Block until the job finishes instead of failing `NotReady`.
        wait: bool,
    },
    /// Finished outcome.
    ResultReply(Box<JobOutcome>),
    /// Cancel a job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Cancellation disposition: `0` cancelled while queued, `1` cancel
    /// requested on a running solve, `2` already finished, `3` unknown.
    CancelReply {
        /// Disposition code.
        outcome: u8,
    },
    /// Stream events for a job until it finishes.
    Watch {
        /// Job id.
        job: u64,
    },
    /// One progress event of a watched job.
    Event {
        /// Job id.
        job: u64,
        /// Monotonic per-job event sequence number.
        seq: u64,
        /// Job state at the event.
        state: JobState,
        /// Cumulative branch-and-bound nodes from the obs layer
        /// (`bab.nodes`; 0 when observability is off).
        nodes: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// Typed error.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Drain and shut down.
    Shutdown,
    /// Drain acknowledged.
    ShutdownReply,
    /// Fetch serve counters.
    Stats,
    /// Counter snapshot, name-sorted. On the wire each entry is
    /// `name | tag u8 | length-prefixed payload`; decoders skip entries
    /// with unknown tags, so a client keeps working against a newer
    /// daemon that exports field types it does not know.
    StatsReply {
        /// `(name, value)` pairs.
        entries: Vec<(String, u64)>,
    },
    /// Fetch the live telemetry snapshot.
    Metrics,
    /// Live telemetry snapshot.
    MetricsReply(Box<LiveMetrics>),
    /// Fetch a job's flight recorder.
    Flight {
        /// Job id.
        job: u64,
    },
    /// Flight recorder contents.
    FlightReply(Box<FlightLog>),
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

pub(crate) fn encode_degradation(d: Degradation) -> u8 {
    match d {
        Degradation::Exact => 0,
        Degradation::CheckpointFallback => 1,
        Degradation::ColdFallback => 2,
        Degradation::IntervalOnly => 3,
        Degradation::TimedOut => 4,
    }
}

fn decode_degradation(v: u8) -> Result<Degradation, ProtocolError> {
    Ok(match v {
        0 => Degradation::Exact,
        1 => Degradation::CheckpointFallback,
        2 => Degradation::ColdFallback,
        3 => Degradation::IntervalOnly,
        4 => Degradation::TimedOut,
        _ => return Err(ProtocolError::Malformed("unknown degradation code")),
    })
}

fn encode_status(s: MilpStatus) -> u8 {
    match s {
        MilpStatus::Optimal => 0,
        MilpStatus::Infeasible => 1,
        MilpStatus::Unbounded => 2,
        MilpStatus::TimeLimit => 3,
        MilpStatus::NodeLimit => 4,
        MilpStatus::TargetReached => 5,
        MilpStatus::BoundCutoff => 6,
        MilpStatus::Aborted => 7,
    }
}

fn decode_status(v: u8) -> Result<MilpStatus, ProtocolError> {
    Ok(match v {
        0 => MilpStatus::Optimal,
        1 => MilpStatus::Infeasible,
        2 => MilpStatus::Unbounded,
        3 => MilpStatus::TimeLimit,
        4 => MilpStatus::NodeLimit,
        5 => MilpStatus::TargetReached,
        6 => MilpStatus::BoundCutoff,
        7 => MilpStatus::Aborted,
        _ => return Err(ProtocolError::Malformed("unknown solver status")),
    })
}

/// Encodes a request body (shared by the wire and the on-disk spool).
pub fn encode_request(e: &mut Enc, req: &JobRequest) {
    e.str(&req.network_text);
    e.u64(req.bounds.len() as u64);
    for &(lo, hi) in &req.bounds {
        e.f64(lo);
        e.f64(hi);
    }
    e.u64(req.constraints.len() as u64);
    for c in &req.constraints {
        e.u8(c.relation);
        e.f64(c.rhs);
        e.u64(c.terms.len() as u64);
        for &(i, v) in &c.terms {
            e.u64(i);
            e.f64(v);
        }
    }
    e.u64(req.objective_terms.len() as u64);
    for &(i, v) in &req.objective_terms {
        e.u64(i);
        e.f64(v);
    }
    e.f64(req.objective_constant);
    e.u64(req.time_limit_ms);
    e.u64(req.node_limit);
    e.u64(req.threads);
    e.u8(u8::from(req.warm_start));
    e.u64(req.alpha_iters);
    e.u8(u8::from(req.lp_skip));
}

/// Decodes a request body.
///
/// # Errors
///
/// [`ProtocolError`] on any truncation or structural violation.
pub fn decode_request(d: &mut Dec<'_>) -> Result<JobRequest, ProtocolError> {
    let network_text = d.str()?;
    let nb = d.len(16)?;
    let mut bounds = Vec::with_capacity(nb);
    for _ in 0..nb {
        bounds.push((d.f64()?, d.f64()?));
    }
    let nc = d.len(17)?;
    let mut constraints = Vec::with_capacity(nc);
    for _ in 0..nc {
        let relation = d.u8()?;
        let rhs = d.f64()?;
        let nt = d.len(16)?;
        let mut terms = Vec::with_capacity(nt);
        for _ in 0..nt {
            terms.push((d.u64()?, d.f64()?));
        }
        constraints.push(WireConstraint { relation, rhs, terms });
    }
    let no = d.len(16)?;
    let mut objective_terms = Vec::with_capacity(no);
    for _ in 0..no {
        objective_terms.push((d.u64()?, d.f64()?));
    }
    Ok(JobRequest {
        network_text,
        bounds,
        constraints,
        objective_terms,
        objective_constant: d.f64()?,
        time_limit_ms: d.u64()?,
        node_limit: d.u64()?,
        threads: d.u64()?,
        warm_start: d.u8()? != 0,
        alpha_iters: d.u64()?,
        lp_skip: d.u8()? != 0,
    })
}

/// Encodes an outcome body (shared by the wire and the certificate
/// cache's on-disk entries, so a cached certificate replays the exact
/// bytes a fresh solve would have produced).
pub fn encode_outcome(e: &mut Enc, o: &JobOutcome) {
    e.u64(o.key);
    e.u8(encode_status(o.status));
    e.f64(o.upper_bound);
    match o.best_value {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            e.f64(v);
        }
    }
    match &o.witness {
        None => e.u8(0),
        Some(w) => {
            e.u8(1);
            e.u64(w.len() as u64);
            for &x in w {
                e.f64(x);
            }
        }
    }
    let s = &o.stats;
    for v in [
        s.nodes,
        s.lp_iterations,
        s.binaries,
        s.rows,
        s.warm_solves,
        s.cold_solves,
        s.pivots_saved,
        s.lp_skipped,
        s.lp_forced,
        s.elapsed_nanos,
    ] {
        e.u64(v);
    }
    e.u8(encode_degradation(o.degradation));
    e.u8(u8::from(o.cache_hit));
}

/// Decodes an outcome body.
///
/// # Errors
///
/// [`ProtocolError`] on any truncation or structural violation.
pub fn decode_outcome(d: &mut Dec<'_>) -> Result<JobOutcome, ProtocolError> {
    let key = d.u64()?;
    let status = decode_status(d.u8()?)?;
    let upper_bound = d.f64()?;
    let best_value = match d.u8()? {
        0 => None,
        1 => Some(d.f64()?),
        _ => return Err(ProtocolError::Malformed("bad best-value flag")),
    };
    let witness = match d.u8()? {
        0 => None,
        1 => {
            let n = d.len(8)?;
            let mut w = Vec::with_capacity(n);
            for _ in 0..n {
                w.push(d.f64()?);
            }
            Some(w)
        }
        _ => return Err(ProtocolError::Malformed("bad witness flag")),
    };
    let mut nums = [0u64; 10];
    for v in &mut nums {
        *v = d.u64()?;
    }
    let degradation = decode_degradation(d.u8()?)?;
    let cache_hit = d.u8()? != 0;
    Ok(JobOutcome {
        key,
        status,
        upper_bound,
        best_value,
        witness,
        stats: WireStats {
            nodes: nums[0],
            lp_iterations: nums[1],
            binaries: nums[2],
            rows: nums[3],
            warm_solves: nums[4],
            cold_solves: nums[5],
            pivots_saved: nums[6],
            lp_skipped: nums[7],
            lp_forced: nums[8],
            elapsed_nanos: nums[9],
        },
        degradation,
        cache_hit,
    })
}

/// Encodes a live-metrics body.
pub fn encode_metrics(e: &mut Enc, m: &LiveMetrics) {
    e.u64(m.uptime_ns);
    e.u64(m.queue_depth);
    e.u64(m.workers_total);
    e.u64(m.workers_busy);
    e.f64(m.cache_hit_ratio);
    e.u64(m.counters.len() as u64);
    for (name, v) in &m.counters {
        e.str(name);
        e.u64(*v);
    }
    e.u64(m.rates.len() as u64);
    for (name, v) in &m.rates {
        e.str(name);
        e.f64(*v);
    }
    e.u64(m.windows.len() as u64);
    for (name, w) in &m.windows {
        e.str(name);
        e.u64(w.count);
        e.u64(w.p50);
        e.u64(w.p95);
        e.u64(w.p99);
    }
    e.u64(m.events.len() as u64);
    for (t, text) in &m.events {
        e.u64(*t);
        e.str(text);
    }
}

/// Decodes a live-metrics body.
///
/// # Errors
///
/// [`ProtocolError`] on any truncation or structural violation.
pub fn decode_metrics(d: &mut Dec<'_>) -> Result<LiveMetrics, ProtocolError> {
    let uptime_ns = d.u64()?;
    let queue_depth = d.u64()?;
    let workers_total = d.u64()?;
    let workers_busy = d.u64()?;
    let cache_hit_ratio = d.f64()?;
    let nc = d.len(16)?;
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        let name = d.str()?;
        counters.push((name, d.u64()?));
    }
    let nr = d.len(16)?;
    let mut rates = Vec::with_capacity(nr);
    for _ in 0..nr {
        let name = d.str()?;
        rates.push((name, d.f64()?));
    }
    let nw = d.len(40)?;
    let mut windows = Vec::with_capacity(nw);
    for _ in 0..nw {
        let name = d.str()?;
        windows.push((
            name,
            WindowHist {
                count: d.u64()?,
                p50: d.u64()?,
                p95: d.u64()?,
                p99: d.u64()?,
            },
        ));
    }
    let ne = d.len(16)?;
    let mut events = Vec::with_capacity(ne);
    for _ in 0..ne {
        let t = d.u64()?;
        events.push((t, d.str()?));
    }
    Ok(LiveMetrics {
        uptime_ns,
        queue_depth,
        workers_total,
        workers_busy,
        cache_hit_ratio,
        counters,
        rates,
        windows,
        events,
    })
}

impl Msg {
    /// Encodes the message into a frame (kind byte + body).
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::new();
        let kind = match self {
            Msg::Submit { req, ctx } => {
                encode_request(&mut e, req);
                if let Some(ctx) = ctx {
                    e.u8(1);
                    ctx.inject(&mut e.0);
                }
                kind::SUBMIT
            }
            Msg::Submitted { job, key, disposition } => {
                e.u64(*job);
                e.u64(*key);
                e.u8(disposition.as_u8());
                kind::SUBMITTED
            }
            Msg::Status { job } => {
                e.u64(*job);
                kind::STATUS
            }
            Msg::StatusReply { state, queue_depth, cache_hit } => {
                e.u8(state.as_u8());
                e.u64(*queue_depth);
                e.u8(u8::from(*cache_hit));
                kind::STATUS_REPLY
            }
            Msg::Result { job, wait } => {
                e.u64(*job);
                e.u8(u8::from(*wait));
                kind::RESULT
            }
            Msg::ResultReply(outcome) => {
                encode_outcome(&mut e, outcome);
                kind::RESULT_REPLY
            }
            Msg::Cancel { job } => {
                e.u64(*job);
                kind::CANCEL
            }
            Msg::CancelReply { outcome } => {
                e.u8(*outcome);
                kind::CANCEL_REPLY
            }
            Msg::Watch { job } => {
                e.u64(*job);
                kind::WATCH
            }
            Msg::Event { job, seq, state, nodes, detail } => {
                e.u64(*job);
                e.u64(*seq);
                e.u8(state.as_u8());
                e.u64(*nodes);
                e.str(detail);
                kind::EVENT
            }
            Msg::Error { code, message } => {
                e.u8(code.as_u8());
                e.str(message);
                kind::ERROR
            }
            Msg::Shutdown => kind::SHUTDOWN,
            Msg::ShutdownReply => kind::SHUTDOWN_REPLY,
            Msg::Stats => kind::STATS,
            Msg::StatsReply { entries } => {
                e.u64(entries.len() as u64);
                for (name, v) in entries {
                    e.str(name);
                    // Tagged payload (tag 0 = LE u64): a peer that meets
                    // a tag it does not know skips the entry instead of
                    // failing the whole frame.
                    e.u8(0);
                    e.bytes(&v.to_le_bytes());
                }
                kind::STATS_REPLY
            }
            Msg::Metrics => kind::METRICS,
            Msg::MetricsReply(m) => {
                encode_metrics(&mut e, m);
                kind::METRICS_REPLY
            }
            Msg::Flight { job } => {
                e.u64(*job);
                kind::FLIGHT
            }
            Msg::FlightReply(log) => {
                encode_flight(&mut e, log);
                kind::FLIGHT_REPLY
            }
        };
        (kind, e.0)
    }

    /// Decodes a frame into a typed message.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownKind`] for an unrecognised kind byte, any
    /// other variant for a malformed body.
    pub fn from_frame(frame: &Frame) -> Result<Msg, ProtocolError> {
        let mut d = Dec::new(&frame.body);
        let msg = match frame.kind {
            kind::SUBMIT => {
                let req = Box::new(decode_request(&mut d)?);
                let ctx = if d.done() {
                    None
                } else {
                    if d.u8()? != 1 {
                        return Err(ProtocolError::Malformed("bad span context flag"));
                    }
                    Some(SpanContext {
                        trace_id: d.u64()?,
                        span_id: d.u64()?,
                    })
                };
                Msg::Submit { req, ctx }
            }
            kind::SUBMITTED => Msg::Submitted {
                job: d.u64()?,
                key: d.u64()?,
                disposition: Disposition::from_u8(d.u8()?)?,
            },
            kind::STATUS => Msg::Status { job: d.u64()? },
            kind::STATUS_REPLY => Msg::StatusReply {
                state: JobState::from_u8(d.u8()?)?,
                queue_depth: d.u64()?,
                cache_hit: d.u8()? != 0,
            },
            kind::RESULT => Msg::Result {
                job: d.u64()?,
                wait: d.u8()? != 0,
            },
            kind::RESULT_REPLY => Msg::ResultReply(Box::new(decode_outcome(&mut d)?)),
            kind::CANCEL => Msg::Cancel { job: d.u64()? },
            kind::CANCEL_REPLY => Msg::CancelReply { outcome: d.u8()? },
            kind::WATCH => Msg::Watch { job: d.u64()? },
            kind::EVENT => Msg::Event {
                job: d.u64()?,
                seq: d.u64()?,
                state: JobState::from_u8(d.u8()?)?,
                nodes: d.u64()?,
                detail: d.str()?,
            },
            kind::ERROR => Msg::Error {
                code: ErrorCode::from_u8(d.u8()?),
                message: d.str()?,
            },
            kind::SHUTDOWN => Msg::Shutdown,
            kind::SHUTDOWN_REPLY => Msg::ShutdownReply,
            kind::STATS => Msg::Stats,
            kind::STATS_REPLY => {
                let n = d.len(17)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = d.str()?;
                    let tag = d.u8()?;
                    let payload = d.bytes()?;
                    if tag == 0 && payload.len() == 8 {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(payload);
                        entries.push((name, u64::from_le_bytes(a)));
                    }
                    // Unknown tag (or an unexpected width for a known
                    // one): a field from a different daemon version —
                    // skip it, keep every entry we do understand.
                }
                Msg::StatsReply { entries }
            }
            kind::METRICS => Msg::Metrics,
            kind::METRICS_REPLY => Msg::MetricsReply(Box::new(decode_metrics(&mut d)?)),
            kind::FLIGHT => Msg::Flight { job: d.u64()? },
            kind::FLIGHT_REPLY => Msg::FlightReply(Box::new(decode_flight(&mut d)?)),
            other => return Err(ProtocolError::UnknownKind(other)),
        };
        d.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Interval;

    fn sample_request() -> JobRequest {
        let net = Network::relu_mlp(3, &[4], 2, 11).expect("tiny net");
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3])
            .expect("box")
            .constrain(LinearConstraint {
                terms: vec![(0, 1.0), (2, -0.5)],
                relation: Relation::Le,
                rhs: 0.25,
            });
        let obj = LinearObjective {
            terms: vec![(0, 1.0), (1, -1.0)],
            constant: 0.5,
        };
        let opts = VerifierOptions {
            time_limit: Some(Duration::from_millis(1234)),
            threads: 1,
            alpha_iters: 2,
            ..VerifierOptions::default()
        };
        JobRequest::from_query(&net, &spec, &obj, &opts, Some(4096))
    }

    fn sample_outcome() -> JobOutcome {
        JobOutcome {
            key: 0xfeed_f00d_dead_beef,
            status: MilpStatus::Optimal,
            upper_bound: 1.5,
            best_value: Some(1.5),
            witness: Some(vec![0.25, -1.0, 0.75]),
            stats: WireStats {
                nodes: 42,
                lp_iterations: 999,
                binaries: 4,
                rows: 31,
                warm_solves: 30,
                cold_solves: 2,
                pivots_saved: 100,
                lp_skipped: 7,
                lp_forced: 1,
                elapsed_nanos: 123_456_789,
            },
            degradation: Degradation::ColdFallback,
            cache_hit: true,
        }
    }

    #[test]
    fn request_round_trips_through_frame_and_query_parts() {
        let req = sample_request();
        let msg = Msg::Submit {
            req: Box::new(req.clone()),
            ctx: None,
        };
        let (kind, body) = msg.to_frame();
        let back = Msg::from_frame(&Frame { kind, body }).expect("decodes");
        assert_eq!(back, msg);
        // The typed query parts survive the trip bit-for-bit.
        let net = req.parse_network().expect("network parses");
        let spec = req.input_spec().expect("spec rebuilds");
        assert_eq!(spec.bounds().len(), 3);
        assert_eq!(spec.constraints().len(), 1);
        assert_eq!(req.objective().constant, 0.5);
        assert_eq!(req.verifier_options().time_limit, Some(Duration::from_millis(1234)));
        assert_eq!(req.verifier_options().node_limit, Some(4096));
        // Key is stable and sensitive to the budget.
        let k1 = req.job_key().expect("key");
        assert_eq!(k1, job_key_of(&net, &spec, &req.objective(), &req));
        let mut other = req;
        other.time_limit_ms += 1;
        assert_ne!(k1, other.job_key().expect("key"));
    }

    #[test]
    fn outcome_round_trips_bit_identically() {
        let o = sample_outcome();
        let (kind, body) = Msg::ResultReply(Box::new(o.clone())).to_frame();
        let back = Msg::from_frame(&Frame { kind, body }).expect("decodes");
        match back {
            Msg::ResultReply(b) => {
                assert_eq!(*b, o);
                assert_eq!(b.upper_bound.to_bits(), o.upper_bound.to_bits());
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn every_message_shape_round_trips() {
        let msgs = vec![
            Msg::Submitted {
                job: 7,
                key: 9,
                disposition: Disposition::Coalesced,
            },
            Msg::Status { job: 3 },
            Msg::StatusReply {
                state: JobState::Running,
                queue_depth: 4,
                cache_hit: false,
            },
            Msg::Result { job: 3, wait: true },
            Msg::Cancel { job: 3 },
            Msg::CancelReply { outcome: 1 },
            Msg::Watch { job: 3 },
            Msg::Event {
                job: 3,
                seq: 2,
                state: JobState::Done,
                nodes: 500,
                detail: "done".into(),
            },
            Msg::Error {
                code: ErrorCode::UnknownJob,
                message: "no such job".into(),
            },
            Msg::Shutdown,
            Msg::ShutdownReply,
            Msg::Stats,
            Msg::StatsReply {
                entries: vec![("serve.cache_hits".into(), 3)],
            },
        ];
        for msg in msgs {
            let (kind, body) = msg.to_frame();
            let back = Msg::from_frame(&Frame { kind, body }).expect("decodes");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_typed_errors() {
        assert!(matches!(
            Msg::from_frame(&Frame { kind: 250, body: vec![] }),
            Err(ProtocolError::UnknownKind(250))
        ));
        let (kind, mut body) = Msg::Status { job: 1 }.to_frame();
        body.push(0xaa);
        assert!(matches!(
            Msg::from_frame(&Frame { kind, body }),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn submit_span_context_rides_as_trailing_extension() {
        let req = sample_request();
        let ctx = SpanContext {
            trace_id: 0x1234_5678_9abc_def0,
            span_id: 99,
        };
        let msg = Msg::Submit {
            req: Box::new(req.clone()),
            ctx: Some(ctx),
        };
        let (kind, body) = msg.to_frame();
        // The context is a *trailing* extension: stripping it yields a
        // valid v1 SUBMIT body, so an old client's frames still decode.
        let back = Msg::from_frame(&Frame { kind, body: body.clone() }).expect("decodes");
        assert_eq!(back, msg);
        let bare = &body[..body.len() - 17];
        let back = Msg::from_frame(&Frame { kind, body: bare.to_vec() }).expect("decodes");
        assert_eq!(
            back,
            Msg::Submit {
                req: Box::new(req.clone()),
                ctx: None,
            }
        );
        // And the context never perturbs the content-address: coalescing
        // and cache hits must be trace-independent.
        assert_eq!(req.job_key().expect("key"), sample_request().job_key().expect("key"));
    }

    #[test]
    fn stats_reply_skips_unknown_tags() {
        // A daemon from the future exports an entry with tag 7; the
        // decoder must keep the entries it understands and drop the rest.
        let mut e = Enc::new();
        e.u64(3);
        e.str("serve.cache_hits");
        e.u8(0);
        e.bytes(&5u64.to_le_bytes());
        e.str("serve.solve_temperature_milli_kelvin");
        e.u8(7);
        e.bytes(b"some future payload");
        e.str("serve.jobs_completed");
        e.u8(0);
        e.bytes(&2u64.to_le_bytes());
        let back = Msg::from_frame(&Frame {
            kind: kind::STATS_REPLY,
            body: e.0,
        })
        .expect("decodes despite unknown tag");
        assert_eq!(
            back,
            Msg::StatsReply {
                entries: vec![
                    ("serve.cache_hits".into(), 5),
                    ("serve.jobs_completed".into(), 2),
                ],
            }
        );
    }

    #[test]
    fn metrics_and_flight_round_trip() {
        let m = LiveMetrics {
            uptime_ns: 123,
            queue_depth: 4,
            workers_total: 8,
            workers_busy: 3,
            cache_hit_ratio: 0.75,
            counters: vec![("serve.jobs_submitted".into(), 10)],
            rates: vec![("serve.frames_rx".into(), 2.5)],
            windows: vec![(
                "serve.job_wall_nanos".into(),
                WindowHist { count: 7, p50: 100, p95: 900, p99: 1000 },
            )],
            events: vec![(55, "serve.started".into())],
        };
        for msg in [
            Msg::Metrics,
            Msg::MetricsReply(Box::new(m)),
            Msg::Flight { job: 12 },
            Msg::FlightReply(Box::new(crate::flight::FlightLog {
                key: 9,
                trace_id: 3,
                truncated: 0,
                events: vec![crate::flight::FlightEvent {
                    t_ns: 1,
                    kind: crate::flight::FlightKind::Accepted,
                    a: 3,
                    b: 0,
                    detail: String::new(),
                }],
            })),
        ] {
            let (kind, body) = msg.to_frame();
            let back = Msg::from_frame(&Frame { kind, body }).expect("decodes");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn request_truncation_every_prefix_is_detected() {
        let msg = Msg::Submit {
            req: Box::new(sample_request()),
            ctx: None,
        };
        let (_, body) = msg.to_frame();
        for cut in 0..body.len() {
            let mut d = Dec::new(&body[..cut]);
            assert!(
                decode_request(&mut d).is_err() || !d.done(),
                "prefix of {cut}/{} must not decode cleanly",
                body.len()
            );
        }
    }
}
