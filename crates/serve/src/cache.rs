//! Content-addressed certificate cache and crash-safe job spool.
//!
//! Both stores follow the checkpoint layer's file discipline: a magic +
//! version header, an FNV-1a checksum trailer over the body, and atomic
//! publication (temp file in the same directory → `fsync` → rename).
//! A crash at any moment leaves either a previous complete file or no
//! file — never a torn one under the real name.
//!
//! **Cache** (`cache/c<key>.cert`): a finished [`JobOutcome`] under its
//! job key, sealed together with the *full request* that produced it.
//! The 64-bit FNV job key only names the file; before an entry is
//! served, its embedded request is compared byte-for-byte against the
//! submitted one, so a key collision (FNV-1a is not collision
//! resistant) can never exchange one query's certificate for another's.
//! Serving a cached certificate replays the exact bytes a fresh solve
//! produced — the verdict, bound, witness and statistics are
//! bit-identical. A corrupt or truncated entry is *detected* (checksum),
//! deleted, and answered by a fresh solve tagged with the degradation
//! ladder — the cache can lose work, never correctness.
//!
//! **Spool** (`jobs/j<key>.job`): the [`JobRequest`] of every accepted,
//! unfinished job. Written before the job is queued, removed after its
//! certificate is cached; a daemon restarted over the same directory
//! re-queues every spooled job and resumes its branch-and-bound from the
//! query's checkpoint.

use crate::flight::{decode_flight, encode_flight, FlightLog};
use crate::protocol::{decode_outcome, decode_request, encode_outcome, encode_request, JobOutcome, JobRequest};
use crate::wire::{Dec, Enc, ProtocolError};
use certnn_verify::checkpoint::Fnv1a;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic of a certificate cache entry.
const CERT_MAGIC: [u8; 4] = *b"CNCE";
/// Magic of a spooled job.
const JOB_MAGIC: [u8; 4] = *b"CNJB";
/// Magic of a persisted flight log.
const FLIGHT_MAGIC: [u8; 4] = *b"CNFL";
/// On-disk format version of both stores. Version 2 embeds the full
/// request in every certificate entry so a served certificate is
/// provably for the submitted query, not merely for a colliding key.
const STORE_VERSION: u32 = 2;

/// Why a load returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Miss {
    /// No entry exists under the key.
    Absent,
    /// An entry exists but is corrupt or truncated; it has been deleted.
    Corrupt,
}

pub(crate) fn seal(magic: [u8; 4], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(body);
    let mut h = Fnv1a::new();
    h.write(body);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

pub(crate) fn unseal(magic: [u8; 4], bytes: &[u8]) -> Result<&[u8], ProtocolError> {
    if bytes.len() < 16 {
        return Err(ProtocolError::Truncated { wanted: 16 });
    }
    if bytes[..4] != magic {
        return Err(ProtocolError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != STORE_VERSION {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let body = &bytes[8..bytes.len() - 8];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - 8..]
            .try_into()
            .map_err(|_| ProtocolError::Truncated { wanted: 8 })?,
    );
    let mut h = Fnv1a::new();
    h.write(body);
    if h.finish() != stored {
        return Err(ProtocolError::Checksum);
    }
    Ok(body)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; losing it on a power cut only costs
        // the newest entry, never corrupts one.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Canonical encoding of a request, used both inside certificate
/// entries and for the byte-exact comparison that guards against job
/// key collisions (bit-pattern floats make it NaN-proof where a
/// `PartialEq` comparison would not be).
fn request_bytes(req: &JobRequest) -> Vec<u8> {
    let mut e = Enc::new();
    encode_request(&mut e, req);
    e.0
}

/// Encodes a sealed certificate entry: the request it answers followed
/// by the outcome (exposed for the fault-injection tests, which
/// truncate and corrupt these bytes directly).
pub fn encode_entry(outcome: &JobOutcome, req: &JobRequest) -> Vec<u8> {
    let mut e = Enc::new();
    e.bytes(&request_bytes(req));
    encode_outcome(&mut e, outcome);
    seal(CERT_MAGIC, &e.0)
}

/// Decodes a sealed certificate entry into the request it answers and
/// the stored outcome.
///
/// # Errors
///
/// [`ProtocolError`] on any structural or checksum violation.
pub fn decode_entry(bytes: &[u8]) -> Result<(JobRequest, JobOutcome), ProtocolError> {
    let body = unseal(CERT_MAGIC, bytes)?;
    let mut d = Dec::new(body);
    let req_bytes = d.bytes()?.to_vec();
    let outcome = decode_outcome(&mut d)?;
    d.finish()?;
    let mut rd = Dec::new(&req_bytes);
    let req = decode_request(&mut rd)?;
    rd.finish()?;
    Ok((req, outcome))
}

/// The daemon's on-disk state: certificate cache + job spool under one
/// root directory.
#[derive(Debug)]
pub struct Store {
    cache_dir: PathBuf,
    jobs_dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store under `root`.
    ///
    /// # Errors
    ///
    /// I/O error when the directories cannot be created.
    pub fn open(root: &Path) -> std::io::Result<Self> {
        let cache_dir = root.join("cache");
        let jobs_dir = root.join("jobs");
        fs::create_dir_all(&cache_dir)?;
        fs::create_dir_all(&jobs_dir)?;
        Ok(Self { cache_dir, jobs_dir })
    }

    /// Path of the certificate for `key`.
    pub fn cert_path(&self, key: u64) -> PathBuf {
        self.cache_dir.join(format!("c{key:016x}.cert"))
    }

    /// Path of the spooled job for `key`.
    pub fn job_path(&self, key: u64) -> PathBuf {
        self.jobs_dir.join(format!("j{key:016x}.job"))
    }

    /// Publishes a finished certificate atomically, sealed with the
    /// request it answers.
    ///
    /// # Errors
    ///
    /// I/O error from the filesystem.
    pub fn put_cert(&self, outcome: &JobOutcome, req: &JobRequest) -> std::io::Result<()> {
        write_atomic(&self.cert_path(outcome.key), &encode_entry(outcome, req))
    }

    /// Loads the certificate for `key`, fully verifying its checksum
    /// *and* that the stored entry answers exactly `req` (byte-for-byte
    /// on the canonical request encoding — the 64-bit key alone is not
    /// collision resistant). A corrupt or truncated entry is deleted and
    /// reported as [`Miss::Corrupt`]; a structurally valid entry for a
    /// *different* query under a colliding key is left on disk and
    /// reported as [`Miss::Absent`] — either way the caller schedules a
    /// fresh solve, never serves a foreign certificate.
    pub fn get_cert(&self, key: u64, req: &JobRequest) -> Result<JobOutcome, Miss> {
        let path = self.cert_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Err(Miss::Absent),
        };
        match decode_entry(&bytes) {
            Ok((stored_req, outcome)) if outcome.key == key => {
                if request_bytes(&stored_req) == request_bytes(req) {
                    Ok(outcome)
                } else {
                    Err(Miss::Absent)
                }
            }
            _ => {
                let _ = fs::remove_file(&path);
                Err(Miss::Corrupt)
            }
        }
    }

    /// Path of the persisted flight log for `key`.
    pub fn flight_path(&self, key: u64) -> PathBuf {
        self.cache_dir.join(format!("f{key:016x}.flight"))
    }

    /// Persists a job's flight log atomically next to its certificate,
    /// so the audit trail of how a cached verdict was produced survives
    /// daemon restarts.
    ///
    /// # Errors
    ///
    /// I/O error from the filesystem.
    pub fn put_flight(&self, log: &FlightLog) -> std::io::Result<()> {
        let mut e = Enc::new();
        encode_flight(&mut e, log);
        write_atomic(&self.flight_path(log.key), &seal(FLIGHT_MAGIC, &e.0))
    }

    /// Loads the persisted flight log for `key`. `None` when absent; a
    /// corrupt or truncated log is deleted and reported as absent —
    /// flight logs are audit telemetry, losing one never blocks serving
    /// the (independently checksummed) certificate.
    pub fn get_flight(&self, key: u64) -> Option<FlightLog> {
        let path = self.flight_path(key);
        let bytes = fs::read(&path).ok()?;
        let decoded = unseal(FLIGHT_MAGIC, &bytes).ok().and_then(|body| {
            let mut d = Dec::new(body);
            let log = decode_flight(&mut d).ok()?;
            d.finish().ok()?;
            Some(log)
        });
        if decoded.is_none() {
            let _ = fs::remove_file(&path);
        }
        decoded
    }

    /// Spools an accepted job so a restarted daemon can resume it.
    ///
    /// # Errors
    ///
    /// I/O error from the filesystem.
    pub fn put_job(&self, key: u64, req: &JobRequest) -> std::io::Result<()> {
        let mut e = Enc::new();
        encode_request(&mut e, req);
        write_atomic(&self.job_path(key), &seal(JOB_MAGIC, &e.0))
    }

    /// Removes a finished job's spool entry (missing is fine).
    pub fn remove_job(&self, key: u64) {
        let _ = fs::remove_file(self.job_path(key));
    }

    /// Loads every valid spooled job, deleting corrupt ones. Returns
    /// `(key, request)` pairs sorted by key for deterministic re-queue
    /// order, plus the number of corrupt entries dropped.
    pub fn load_jobs(&self) -> (Vec<(u64, JobRequest)>, usize) {
        let mut jobs = Vec::new();
        let mut dropped = 0usize;
        let Ok(entries) = fs::read_dir(&self.jobs_dir) else {
            return (jobs, dropped);
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_prefix('j').and_then(|n| n.strip_suffix(".job")) else {
                // Stale temp files from a crashed publication are garbage
                // by construction; sweep them.
                if name.ends_with(".tmp") {
                    let _ = fs::remove_file(&path);
                }
                continue;
            };
            let Ok(key) = u64::from_str_radix(hex, 16) else { continue };
            let decoded = fs::read(&path).ok().and_then(|bytes| {
                let body = unseal(JOB_MAGIC, &bytes).ok()?;
                let mut d = Dec::new(body);
                let req = decode_request(&mut d).ok()?;
                d.finish().ok()?;
                Some(req)
            });
            match decoded {
                Some(req) => jobs.push((key, req)),
                None => {
                    dropped += 1;
                    let _ = fs::remove_file(&path);
                }
            }
        }
        jobs.sort_by_key(|&(key, _)| key);
        (jobs, dropped)
    }

    /// `true` if any in-progress temp file exists under the store (used
    /// by the robustness suite to prove no publication ever leaks one).
    pub fn has_temp_files(&self) -> bool {
        for dir in [&self.cache_dir, &self.jobs_dir] {
            if let Ok(entries) = fs::read_dir(dir) {
                for entry in entries.flatten() {
                    if entry.path().extension().is_some_and(|e| e == "tmp") {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireStats;
    use certnn_verify::{Degradation, MilpStatus};

    fn outcome(key: u64) -> JobOutcome {
        JobOutcome {
            key,
            status: MilpStatus::Optimal,
            upper_bound: 2.25,
            best_value: Some(2.25),
            witness: Some(vec![0.5, -0.5]),
            stats: WireStats {
                nodes: 10,
                elapsed_nanos: 42,
                ..WireStats::default()
            },
            degradation: Degradation::Exact,
            cache_hit: false,
        }
    }

    fn request() -> JobRequest {
        JobRequest {
            network_text: "not parsed here".into(),
            bounds: vec![(-1.0, 1.0)],
            constraints: vec![],
            objective_terms: vec![(0, 1.0)],
            objective_constant: 0.0,
            time_limit_ms: 0,
            node_limit: 0,
            threads: 1,
            warm_start: true,
            alpha_iters: 1,
            lp_skip: true,
        }
    }

    fn temp_store(tag: &str) -> (PathBuf, Store) {
        let root = std::env::temp_dir().join(format!(
            "certnn-serve-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        let store = Store::open(&root).expect("store opens");
        (root, store)
    }

    #[test]
    fn cert_round_trips_bit_identically() {
        let (root, store) = temp_store("rt");
        let req = request();
        let o = outcome(0xabcd);
        store.put_cert(&o, &req).expect("cert writes");
        let back = store.get_cert(0xabcd, &req).expect("cert loads");
        assert_eq!(back, o);
        assert_eq!(back.upper_bound.to_bits(), o.upper_bound.to_bits());
        assert_eq!(store.get_cert(0x9999, &req), Err(Miss::Absent));
        assert!(!store.has_temp_files());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn every_truncation_prefix_is_detected_and_deleted() {
        let (root, store) = temp_store("trunc");
        let req = request();
        let o = outcome(0x1111);
        let full = encode_entry(&o, &req);
        for cut in 0..full.len() {
            fs::write(store.cert_path(o.key), &full[..cut]).expect("writes");
            assert_eq!(
                store.get_cert(o.key, &req),
                Err(Miss::Corrupt),
                "truncation to {cut}/{} bytes must be detected",
                full.len()
            );
            assert!(
                !store.cert_path(o.key).exists(),
                "corrupt entry must be deleted"
            );
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (root, store) = temp_store("flip");
        let req = request();
        let o = outcome(0x2222);
        let full = encode_entry(&o, &req);
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x01;
            fs::write(store.cert_path(o.key), &bad).expect("writes");
            // Either detected as corrupt, or (if the flip lands in a
            // benign spot like the cache_hit flag) it must still decode
            // to a *checksummed* body — but FNV over the body makes any
            // body flip fail, and header flips fail magic/version, so
            // every flip is a miss.
            assert_eq!(
                store.get_cert(o.key, &req),
                Err(Miss::Corrupt),
                "flip at byte {i} must be detected"
            );
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn key_mismatch_inside_valid_entry_is_corrupt() {
        let (root, store) = temp_store("keymix");
        let req = request();
        let o = outcome(0x3333);
        // A valid entry filed under the wrong name must not be served.
        fs::write(store.cert_path(0x4444), encode_entry(&o, &req)).expect("writes");
        assert_eq!(store.get_cert(0x4444, &req), Err(Miss::Corrupt));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn colliding_key_with_different_request_is_never_served() {
        // Simulates an FNV job-key collision: a structurally valid entry
        // whose embedded key matches the filename but whose request is a
        // *different* query. It must answer Absent (fresh solve), not
        // serve the foreign certificate, and not be destroyed — it is a
        // valid entry for its own query.
        let (root, store) = temp_store("collide");
        let req_a = request();
        let mut req_b = request();
        req_b.objective_constant = 42.0;
        let o = outcome(0x5555);
        store.put_cert(&o, &req_a).expect("cert writes");
        assert_eq!(store.get_cert(0x5555, &req_b), Err(Miss::Absent));
        assert!(store.cert_path(0x5555).exists(), "colliding entry survives");
        // The rightful owner still gets its certificate.
        assert_eq!(store.get_cert(0x5555, &req_a), Ok(o));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn spool_round_trip_and_corrupt_drop() {
        let (root, store) = temp_store("spool");
        let req = request();
        store.put_job(7, &req).expect("job spools");
        store.put_job(3, &req).expect("job spools");
        fs::write(store.job_path(9), b"garbage").expect("writes");
        let (jobs, dropped) = store.load_jobs();
        assert_eq!(dropped, 1);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].0, 3, "re-queue order is key-sorted");
        assert_eq!(jobs[1].1, req);
        store.remove_job(7);
        store.remove_job(7); // idempotent
        assert_eq!(store.load_jobs().0.len(), 1);
        let _ = fs::remove_dir_all(root);
    }
}
