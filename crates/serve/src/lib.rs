//! Verification-as-a-service for the certnn stack.
//!
//! A safety case is not certified once: every retrained fleet member,
//! every quantization sweep and every re-run of the evidence pipeline
//! re-asks the same MILP queries. This crate turns the workspace's
//! [`certnn_verify::verifier::Verifier`] into a long-running daemon so
//! those queries are *submitted* rather than *recomputed*:
//!
//! - [`wire`] — length-prefixed, versioned, checksummed binary framing
//!   over TCP; every malformed byte sequence maps to a typed
//!   [`wire::ProtocolError`], never a panic.
//! - [`protocol`] — the message layer: `SUBMIT`/`STATUS`/`RESULT`/
//!   `CANCEL`/`WATCH`/`EVENT`/`STATS`/`SHUTDOWN`, plus the
//!   [`protocol::JobRequest`]/[`protocol::JobOutcome`] payload codecs
//!   shared with the on-disk cache.
//! - [`cache`] — content-addressed certificate cache and crash-safe job
//!   spool, reusing the checkpoint layer's fingerprint + checksum +
//!   atomic-rename discipline.
//! - [`server`] — the daemon: bounded worker pool, job table with
//!   request coalescing, cancellation via [`certnn_verify::Deadline`],
//!   graceful drain, and resume of spooled jobs on restart.
//! - [`client`] — a small synchronous client used by the CLI bins, the
//!   fleet bridge and the test suites.
//! - [`fleet`] — [`fleet::run_fleet_over`]: the certification fleet of
//!   the paper's case study, executed over the wire with bit-identical
//!   verdicts to the in-process [`certnn_core::fleet::run_fleet`].
//! - [`flight`] — bounded per-job flight recorders: span tree,
//!   degradation transitions, checkpoint activity and phase profile,
//!   retrievable over the wire (`FLIGHT`) and persisted next to the
//!   certificate so audits survive restarts.
//! - [`prom`] — Prometheus text exposition of the daemon's live
//!   telemetry (`METRICS` over the CNSF wire, or plain HTTP via
//!   `--prom`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod client;
pub mod fleet;
pub mod flight;
pub mod prom;
pub mod protocol;
pub mod server;
pub mod wire;

use std::error::Error;
use std::fmt;

/// Error raised by the serve layer (client side or daemon side).
#[derive(Debug)]
pub enum ServeError {
    /// A wire/protocol violation.
    Protocol(wire::ProtocolError),
    /// The daemon reported a typed error for a request.
    Remote {
        /// Machine-readable code.
        code: protocol::ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Local I/O failure (socket setup, cache/spool files).
    Io(std::io::Error),
    /// The pipeline around the wire failed (dataset, training).
    Core(certnn_core::CoreError),
    /// An unexpected reply kind for the request that was sent.
    UnexpectedReply(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Core(e) => write!(f, "pipeline error: {e}"),
            ServeError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Protocol(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::ProtocolError> for ServeError {
    fn from(e: wire::ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<certnn_core::CoreError> for ServeError {
    fn from(e: certnn_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}
