//! The highway case study's rule set.
//!
//! Wires the generic rules of [`crate::rule`] to the concrete feature
//! layout of `certnn-sim`: the guard is the *vehicle abreast on the left*
//! flag, the capped target is the commanded lateral velocity — exactly
//! the data-validity requirement the paper states before verification
//! ("we validated that the training data never contains such inputs").

use crate::rule::{FiniteRule, GuardedCapRule, InputBoundsRule, TargetRangeRule};
use crate::validator::Validator;
use certnn_sim::features::{slot_index, FeatureExtractor, Orientation, SlotFeature};

/// Index of the "vehicle abreast on the left" flag in the feature vector.
pub fn left_present_feature() -> usize {
    slot_index(Orientation::SideLeft, SlotFeature::Present)
}

/// Index of the lateral-velocity component in the action target.
pub const TARGET_LATERAL: usize = 0;

/// Index of the longitudinal-acceleration component in the action target.
pub const TARGET_ACCEL: usize = 1;

/// Builds the full highway validation rule set.
///
/// * samples must be finite,
/// * inputs must lie in the physical feature box,
/// * actions must be physically plausible (|v_lat| ≤ 4 m/s, |a| ≤ 6 m/s²),
/// * and the safety rule: with a vehicle abreast on the left, the
///   commanded lateral velocity must stay below `lateral_cap` (m/s).
pub fn highway_validator(lateral_cap: f64) -> Validator {
    Validator::new()
        .with_rule(FiniteRule)
        .with_rule(InputBoundsRule::new(FeatureExtractor::bounds(), 1e-6))
        .with_rule(TargetRangeRule {
            index: TARGET_LATERAL,
            lo: -4.0,
            hi: 4.0,
        })
        .with_rule(TargetRangeRule {
            index: TARGET_ACCEL,
            lo: -6.0,
            hi: 6.0,
        })
        .with_rule(GuardedCapRule {
            guard_feature: left_present_feature(),
            guard_threshold: 0.5,
            target_index: TARGET_LATERAL,
            cap: lateral_cap,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Vector;
    use certnn_sim::features::FEATURE_COUNT;
    use certnn_sim::scenario::{generate_dataset, ScenarioConfig};

    fn neutral_input() -> Vector {
        // All-zero features are inside every declared bound.
        Vector::zeros(FEATURE_COUNT)
    }

    #[test]
    fn curated_simulator_data_is_clean() {
        let cfg = ScenarioConfig {
            vehicles: 12,
            episode_seconds: 8.0,
            warmup_seconds: 1.0,
            sample_every: 10,
            seeds: vec![3],
            ..Default::default()
        };
        let data = generate_dataset(&cfg).unwrap();
        let report = highway_validator(1.0).audit(&data);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn risky_sample_is_caught() {
        let mut x = neutral_input();
        x[left_present_feature()] = 1.0;
        let y = Vector::from(vec![1.4, 0.0]); // strong left command
        let report = highway_validator(1.0).audit(&[(x, y)]);
        assert!(!report.is_clean());
        assert_eq!(report.by_rule["guarded-cap"], 1);
    }

    #[test]
    fn same_action_without_left_vehicle_is_fine() {
        let x = neutral_input();
        let y = Vector::from(vec![1.4, 0.0]);
        let report = highway_validator(1.0).audit(&[(x, y)]);
        assert!(report.is_clean());
    }

    #[test]
    fn out_of_box_feature_is_caught() {
        let mut x = neutral_input();
        x[0] = 9.0; // speed history way above the physical range
        let y = Vector::from(vec![0.0, 0.0]);
        let report = highway_validator(1.0).audit(&[(x, y)]);
        assert_eq!(report.by_rule["input-bounds"], 1);
    }

    #[test]
    fn implausible_action_is_caught() {
        let x = neutral_input();
        let y = Vector::from(vec![0.0, 30.0]); // 30 m/s² acceleration
        let report = highway_validator(1.0).audit(&[(x, y)]);
        assert_eq!(report.by_rule["target-range"], 1);
    }

    #[test]
    fn sanitizing_raw_simulator_data_yields_clean_set() {
        let cfg = ScenarioConfig {
            vehicles: 14,
            episode_seconds: 15.0,
            warmup_seconds: 1.0,
            sample_every: 5,
            seeds: vec![5, 6],
            exclude_risky: false, // raw, uncurated
            ..Default::default()
        };
        let mut data = generate_dataset(&cfg).unwrap();
        let v = highway_validator(1.0);
        let before = v.audit(&data);
        v.sanitize(&mut data);
        let after = v.audit(&data);
        assert!(after.is_clean());
        assert!(before.total >= after.total);
    }
}
