//! Specification validity: validating training data as a new kind of
//! specification (the paper's Sec. II (C)).
//!
//! For ANN-based systems "the specification refers to a combination of
//! data [...] as well as classical specifications". The data part is
//! implicit, so before training one must "check the validity of the data,
//! to ensure that only sanitized data will be used in training" — e.g.
//! "no data containing risky driving has been introduced for training the
//! maneuver of vehicles."
//!
//! * [`rule::Rule`] — a declarative check over one `(input, target)`
//!   sample; the crate ships generic rules (finiteness, bounds, target
//!   ranges) and the guarded-cap rule behind the case study.
//! * [`validator::Validator`] — audits a dataset into an
//!   [`validator::AuditReport`] and sanitizes it (removing violators).
//! * [`highway`] — the rule set of the highway case study, wired to the
//!   `certnn-sim` feature layout.
//!
//! # Example
//!
//! ```
//! use certnn_datacheck::rule::{FiniteRule, Rule};
//! use certnn_linalg::Vector;
//!
//! let rule = FiniteRule;
//! let ok = (Vector::from(vec![1.0]), Vector::from(vec![0.0]));
//! let bad = (Vector::from(vec![f64::NAN]), Vector::from(vec![0.0]));
//! assert!(rule.check(&ok.0, &ok.1).is_none());
//! assert!(rule.check(&bad.0, &bad.1).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod dataset_rule;
pub mod highway;
pub mod rule;
pub mod validator;
