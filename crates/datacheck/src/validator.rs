//! Dataset auditing and sanitization.

use crate::rule::{Rule, Violation};
use certnn_linalg::Vector;
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of auditing a dataset against a rule set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Number of samples inspected.
    pub total: usize,
    /// `(sample index, violation)` pairs, in dataset order.
    pub violations: Vec<(usize, Violation)>,
    /// Violation counts per rule name.
    pub by_rule: BTreeMap<String, usize>,
}

impl AuditReport {
    /// `true` if every sample passed every rule.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Indices of the offending samples (deduplicated, ascending).
    pub fn offending_samples(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self.violations.iter().map(|(i, _)| *i).collect();
        idx.dedup();
        idx
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {}/{} samples clean",
            self.total - self.offending_samples().len(),
            self.total
        )?;
        for (rule, count) in &self.by_rule {
            writeln!(f, "  {rule}: {count} violations")?;
        }
        Ok(())
    }
}

/// A rule set applied to whole datasets.
///
/// # Example
///
/// ```
/// use certnn_datacheck::rule::FiniteRule;
/// use certnn_datacheck::validator::Validator;
/// use certnn_linalg::Vector;
///
/// let validator = Validator::new().with_rule(FiniteRule);
/// let data = vec![(Vector::from(vec![1.0]), Vector::from(vec![2.0]))];
/// assert!(validator.audit(&data).is_clean());
/// ```
#[derive(Default)]
pub struct Validator {
    rules: Vec<Box<dyn Rule>>,
}

impl fmt::Debug for Validator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Validator")
            .field(
                "rules",
                &self.rules.iter().map(|r| r.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Validator {
    /// Creates an empty validator (all data passes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder style).
    pub fn with_rule<R: Rule + 'static>(mut self, rule: R) -> Self {
        self.rules.push(Box::new(rule));
        self
    }

    /// Adds a boxed rule.
    pub fn push_rule(&mut self, rule: Box<dyn Rule>) {
        self.rules.push(rule);
    }

    /// Names of the configured rules.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Audits every sample against every rule.
    pub fn audit(&self, data: &[(Vector, Vector)]) -> AuditReport {
        let mut report = AuditReport {
            total: data.len(),
            ..AuditReport::default()
        };
        for (i, (x, y)) in data.iter().enumerate() {
            for rule in &self.rules {
                if let Some(v) = rule.check(x, y) {
                    *report.by_rule.entry(v.rule.clone()).or_insert(0) += 1;
                    report.violations.push((i, v));
                }
            }
        }
        report
    }

    /// Removes every violating sample in place; returns the audit report
    /// of the *original* data (so the caller can see what was removed).
    pub fn sanitize(&self, data: &mut Vec<(Vector, Vector)>) -> AuditReport {
        let report = self.audit(data);
        let offenders: std::collections::BTreeSet<usize> =
            report.offending_samples().into_iter().collect();
        let mut i = 0;
        data.retain(|_| {
            let keep = !offenders.contains(&i);
            i += 1;
            keep
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{FiniteRule, GuardedCapRule};

    fn sample(x: f64, y: f64) -> (Vector, Vector) {
        (Vector::from(vec![x]), Vector::from(vec![y]))
    }

    fn validator() -> Validator {
        Validator::new().with_rule(FiniteRule).with_rule(GuardedCapRule {
            guard_feature: 0,
            guard_threshold: 0.5,
            target_index: 0,
            cap: 1.0,
        })
    }

    #[test]
    fn clean_data_audits_clean() {
        let data = vec![sample(0.0, 5.0), sample(1.0, 0.5)];
        let report = validator().audit(&data);
        assert!(report.is_clean());
        assert_eq!(report.total, 2);
    }

    #[test]
    fn violations_counted_per_rule() {
        let data = vec![
            sample(1.0, 2.0),          // guarded-cap
            sample(f64::NAN, 0.0),     // finite
            sample(1.0, 3.0),          // guarded-cap
            sample(0.0, 9.0),          // clean (guard off)
        ];
        let report = validator().audit(&data);
        assert_eq!(report.by_rule["guarded-cap"], 2);
        assert_eq!(report.by_rule["finite"], 1);
        assert_eq!(report.offending_samples(), vec![0, 1, 2]);
        assert!(report.to_string().contains("guarded-cap"));
    }

    #[test]
    fn sanitize_removes_only_offenders() {
        let mut data = vec![
            sample(1.0, 2.0),
            sample(0.0, 9.0),
            sample(f64::NAN, 0.0),
            sample(1.0, 0.2),
        ];
        let report = validator().sanitize(&mut data);
        assert_eq!(report.total, 4);
        assert_eq!(data.len(), 2);
        // Survivors are the clean ones, in order.
        assert_eq!(data[0].1[0], 9.0);
        assert_eq!(data[1].1[0], 0.2);
    }

    #[test]
    fn sanitize_is_idempotent() {
        let mut data = vec![sample(1.0, 2.0), sample(0.0, 1.0)];
        let v = validator();
        v.sanitize(&mut data);
        let second = v.sanitize(&mut data);
        assert!(second.is_clean());
        assert_eq!(data.len(), 1);
    }

    #[test]
    fn one_sample_can_violate_multiple_rules() {
        let data = vec![(
            Vector::from(vec![1.0]),
            Vector::from(vec![f64::INFINITY]),
        )];
        // Infinity exceeds the cap and is non-finite.
        let report = validator().audit(&data);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.offending_samples(), vec![0]);
    }

    #[test]
    fn rule_names_listed() {
        assert_eq!(validator().rule_names(), vec!["finite", "guarded-cap"]);
    }
}
