//! Scenario-coverage statistics of a dataset.
//!
//! Validating data as a specification (paper Sec. II (C)) is not only
//! about *excluding* bad samples — the data must also *cover* the
//! situations the property quantifies over. A predictor verified for
//! "vehicle on the left" scenarios that never saw such a scenario in
//! training is formally safe but behaviourally arbitrary there. This
//! module measures how well a dataset covers declared scenario cells.

use certnn_linalg::Vector;
use std::fmt;

/// Boxed predicate over one `(input, target)` sample.
pub type SamplePredicate = Box<dyn Fn(&Vector, &Vector) -> bool + Send + Sync>;

/// A named predicate over `(input, target)` samples defining one
/// scenario cell.
pub struct ScenarioCell {
    name: String,
    predicate: SamplePredicate,
}

impl ScenarioCell {
    /// Creates a cell from a name and predicate.
    pub fn new<F>(name: &str, predicate: F) -> Self
    where
        F: Fn(&Vector, &Vector) -> bool + Send + Sync + 'static,
    {
        Self {
            name: name.to_string(),
            predicate: Box::new(predicate),
        }
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for ScenarioCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioCell").field("name", &self.name).finish()
    }
}

/// Coverage of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCoverage {
    /// Cell name.
    pub name: String,
    /// Samples falling into the cell.
    pub count: usize,
    /// Fraction of the dataset in the cell.
    pub fraction: f64,
}

/// Coverage report over all declared cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoverageReport {
    /// Per-cell coverage, declaration order.
    pub cells: Vec<CellCoverage>,
    /// Total samples inspected.
    pub total: usize,
}

impl CoverageReport {
    /// Cells with fewer than `min_count` samples — the under-covered
    /// scenarios a certification reviewer should flag.
    pub fn under_covered(&self, min_count: usize) -> Vec<&CellCoverage> {
        self.cells.iter().filter(|c| c.count < min_count).collect()
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario coverage over {} samples:", self.total)?;
        for c in &self.cells {
            writeln!(f, "  {:<32} {:>7} ({:>5.1}%)", c.name, c.count, 100.0 * c.fraction)?;
        }
        Ok(())
    }
}

/// Measures how a dataset covers the given scenario cells.
pub fn measure_coverage(
    data: &[(Vector, Vector)],
    cells: &[ScenarioCell],
) -> CoverageReport {
    let total = data.len();
    let cells = cells
        .iter()
        .map(|cell| {
            let count = data
                .iter()
                .filter(|(x, y)| (cell.predicate)(x, y))
                .count();
            CellCoverage {
                name: cell.name.clone(),
                count,
                fraction: if total > 0 {
                    count as f64 / total as f64
                } else {
                    0.0
                },
            }
        })
        .collect();
    CoverageReport { cells, total }
}

/// The highway case study's scenario cells, wired to the `certnn-sim`
/// feature layout.
pub fn highway_cells() -> Vec<ScenarioCell> {
    use certnn_sim::features::{slot_index, Orientation, SlotFeature};
    let left = slot_index(Orientation::SideLeft, SlotFeature::Present);
    let right = slot_index(Orientation::SideRight, SlotFeature::Present);
    let front = slot_index(Orientation::FrontSame, SlotFeature::Present);
    vec![
        ScenarioCell::new("vehicle abreast on the left", move |x, _| x[left] >= 0.5),
        ScenarioCell::new("vehicle abreast on the right", move |x, _| x[right] >= 0.5),
        ScenarioCell::new("leader in own lane", move |x, _| x[front] >= 0.5),
        ScenarioCell::new("free road (no neighbours)", move |x, _| {
            x[left] < 0.5 && x[right] < 0.5 && x[front] < 0.5
        }),
        ScenarioCell::new("lane change commanded", |_, y| y[0].abs() > 0.5),
        ScenarioCell::new("hard braking", |_, y| y[1] < -1.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_sim::scenario::{generate_dataset, ScenarioConfig};

    #[test]
    fn coverage_counts_are_exact() {
        let data = vec![
            (Vector::from(vec![1.0]), Vector::from(vec![0.0])),
            (Vector::from(vec![0.0]), Vector::from(vec![0.0])),
            (Vector::from(vec![1.0]), Vector::from(vec![0.0])),
        ];
        let cells = vec![ScenarioCell::new("flag set", |x, _| x[0] >= 0.5)];
        let report = measure_coverage(&data, &cells);
        assert_eq!(report.total, 3);
        assert_eq!(report.cells[0].count, 2);
        assert!((report.cells[0].fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!(report.to_string().contains("flag set"));
    }

    #[test]
    fn under_covered_cells_flagged() {
        let data = vec![(Vector::from(vec![0.0]), Vector::from(vec![0.0]))];
        let cells = vec![
            ScenarioCell::new("never", |_, _| false),
            ScenarioCell::new("always", |_, _| true),
        ];
        let report = measure_coverage(&data, &cells);
        let under = report.under_covered(1);
        assert_eq!(under.len(), 1);
        assert_eq!(under[0].name, "never");
    }

    #[test]
    fn empty_dataset_has_zero_fractions() {
        let report = measure_coverage(&[], &highway_cells());
        assert_eq!(report.total, 0);
        assert!(report.cells.iter().all(|c| c.fraction == 0.0));
    }

    #[test]
    fn simulator_data_covers_the_property_scenario() {
        let cfg = ScenarioConfig {
            vehicles: 16,
            episode_seconds: 15.0,
            warmup_seconds: 2.0,
            sample_every: 5,
            seeds: vec![2, 3],
            ..Default::default()
        };
        let data = generate_dataset(&cfg).unwrap();
        let report = measure_coverage(&data, &highway_cells());
        // The cell the safety property quantifies over must be populated.
        let left = &report.cells[0];
        assert_eq!(left.name, "vehicle abreast on the left");
        assert!(
            left.count > 10,
            "training data barely covers the property scenario: {}",
            left.count
        );
        // And there must be leaders (car-following situations).
        assert!(report.cells[2].fraction > 0.3);
    }
}
