//! Declarative per-sample validation rules.

use certnn_linalg::{Interval, Vector};
use std::fmt;

/// A violation found by a rule on one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated rule.
    pub rule: String,
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// A validation rule over one `(input, target)` training sample.
///
/// Rules are object-safe so a [`Validator`](crate::validator::Validator)
/// can hold a heterogeneous list.
pub trait Rule: Send + Sync {
    /// Stable rule name used in audit reports.
    fn name(&self) -> &str;

    /// Checks one sample; `None` means the sample passes.
    fn check(&self, input: &Vector, target: &Vector) -> Option<Violation>;
}

/// Rejects samples containing NaN or infinite values anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FiniteRule;

impl Rule for FiniteRule {
    fn name(&self) -> &str {
        "finite"
    }

    fn check(&self, input: &Vector, target: &Vector) -> Option<Violation> {
        let bad_in = input.iter().position(|v| !v.is_finite());
        let bad_t = target.iter().position(|v| !v.is_finite());
        match (bad_in, bad_t) {
            (Some(i), _) => Some(Violation {
                rule: self.name().into(),
                message: format!("input feature {i} is not finite"),
            }),
            (None, Some(i)) => Some(Violation {
                rule: self.name().into(),
                message: format!("target {i} is not finite"),
            }),
            (None, None) => None,
        }
    }
}

/// Requires every input feature to lie in its declared physical range.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBoundsRule {
    bounds: Vec<Interval>,
    tolerance: f64,
}

impl InputBoundsRule {
    /// Creates a bounds rule with tolerance `tolerance`.
    pub fn new(bounds: Vec<Interval>, tolerance: f64) -> Self {
        Self { bounds, tolerance }
    }
}

impl Rule for InputBoundsRule {
    fn name(&self) -> &str {
        "input-bounds"
    }

    fn check(&self, input: &Vector, _target: &Vector) -> Option<Violation> {
        if input.len() != self.bounds.len() {
            return Some(Violation {
                rule: self.name().into(),
                message: format!(
                    "input has {} features, expected {}",
                    input.len(),
                    self.bounds.len()
                ),
            });
        }
        for (i, (&v, b)) in input.iter().zip(&self.bounds).enumerate() {
            if !b.widened(self.tolerance).contains(v) {
                return Some(Violation {
                    rule: self.name().into(),
                    message: format!("feature {i} = {v} outside {b}"),
                });
            }
        }
        None
    }
}

/// Requires a target component to lie in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetRangeRule {
    /// Target component index.
    pub index: usize,
    /// Minimum allowed value.
    pub lo: f64,
    /// Maximum allowed value.
    pub hi: f64,
}

impl Rule for TargetRangeRule {
    fn name(&self) -> &str {
        "target-range"
    }

    fn check(&self, _input: &Vector, target: &Vector) -> Option<Violation> {
        let v = target.get(self.index)?;
        if v < self.lo || v > self.hi {
            Some(Violation {
                rule: self.name().into(),
                message: format!(
                    "target[{}] = {v} outside [{}, {}]",
                    self.index, self.lo, self.hi
                ),
            })
        } else {
            None
        }
    }
}

/// The case-study rule: when a guard feature fires, a target component
/// must stay below a cap ("no risky driving in the training data").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedCapRule {
    /// Guard feature index.
    pub guard_feature: usize,
    /// Guard fires when the feature is at least this value.
    pub guard_threshold: f64,
    /// Capped target component.
    pub target_index: usize,
    /// Maximum allowed value under the guard.
    pub cap: f64,
}

impl Rule for GuardedCapRule {
    fn name(&self) -> &str {
        "guarded-cap"
    }

    fn check(&self, input: &Vector, target: &Vector) -> Option<Violation> {
        let guard = input.get(self.guard_feature)?;
        if guard < self.guard_threshold {
            return None;
        }
        let v = target.get(self.target_index)?;
        if v > self.cap {
            Some(Violation {
                rule: self.name().into(),
                message: format!(
                    "guard feature {} active but target[{}] = {v} exceeds cap {}",
                    self.guard_feature, self.target_index, self.cap
                ),
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(xs: Vec<f64>, ys: Vec<f64>) -> (Vector, Vector) {
        (Vector::from(xs), Vector::from(ys))
    }

    #[test]
    fn finite_rule_catches_nan_and_inf() {
        let r = FiniteRule;
        let (x, y) = sample(vec![1.0, f64::INFINITY], vec![0.0]);
        assert!(r.check(&x, &y).is_some());
        let (x, y) = sample(vec![1.0], vec![f64::NAN]);
        let v = r.check(&x, &y).unwrap();
        assert!(v.message.contains("target"));
        let (x, y) = sample(vec![1.0], vec![0.0]);
        assert!(r.check(&x, &y).is_none());
    }

    #[test]
    fn bounds_rule_checks_each_feature() {
        let r = InputBoundsRule::new(
            vec![Interval::new(0.0, 1.0), Interval::new(-1.0, 1.0)],
            1e-9,
        );
        let (x, y) = sample(vec![0.5, 0.0], vec![]);
        assert!(r.check(&x, &y).is_none());
        let (x, y) = sample(vec![1.5, 0.0], vec![]);
        assert!(r.check(&x, &y).unwrap().message.contains("feature 0"));
        let (x, y) = sample(vec![0.5], vec![]);
        assert!(r.check(&x, &y).is_some()); // wrong arity
    }

    #[test]
    fn target_range_rule() {
        let r = TargetRangeRule {
            index: 1,
            lo: -2.0,
            hi: 2.0,
        };
        let (x, y) = sample(vec![], vec![0.0, 1.5]);
        assert!(r.check(&x, &y).is_none());
        let (x, y) = sample(vec![], vec![0.0, 3.0]);
        assert!(r.check(&x, &y).is_some());
        // Missing component: rule cannot fire.
        let (x, y) = sample(vec![], vec![0.0]);
        assert!(r.check(&x, &y).is_none());
    }

    #[test]
    fn guarded_cap_rule_matches_case_study_semantics() {
        let r = GuardedCapRule {
            guard_feature: 0,
            guard_threshold: 0.5,
            target_index: 0,
            cap: 1.0,
        };
        // Guard off: anything goes.
        let (x, y) = sample(vec![0.0], vec![5.0]);
        assert!(r.check(&x, &y).is_none());
        // Guard on, under cap: fine.
        let (x, y) = sample(vec![1.0], vec![0.5]);
        assert!(r.check(&x, &y).is_none());
        // Guard on, over cap: violation.
        let (x, y) = sample(vec![1.0], vec![2.0]);
        let v = r.check(&x, &y).unwrap();
        assert_eq!(v.rule, "guarded-cap");
        assert!(v.to_string().contains("exceeds cap"));
    }
}
