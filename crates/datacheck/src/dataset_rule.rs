//! Whole-dataset validation rules.
//!
//! [`crate::rule::Rule`] checks one sample at a time; some data-validity
//! requirements are only meaningful over the *entire* set — duplicated
//! samples inflate apparent coverage, constant features silently shrink
//! the specification, and contradictory labels make the regression target
//! ill-posed. These are exactly the "implicit specification" hazards the
//! paper's Sec. II (C) warns about.

use certnn_linalg::Vector;
use std::collections::HashMap;
use std::fmt;

/// A finding of a dataset-level rule.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetFinding {
    /// Name of the rule that fired.
    pub rule: String,
    /// Human-readable description.
    pub message: String,
    /// Sample indices involved (may be empty for global findings).
    pub samples: Vec<usize>,
}

impl fmt::Display for DatasetFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// A rule over a whole dataset.
pub trait DatasetRule: Send + Sync {
    /// Stable rule name.
    fn name(&self) -> &str;

    /// Inspects the dataset; returns all findings.
    fn check(&self, data: &[(Vector, Vector)]) -> Vec<DatasetFinding>;
}

/// Hashable key for an f64 slice (bitwise; NaN-free data assumed — pair
/// with [`crate::rule::FiniteRule`]).
fn key(v: &Vector) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Flags exactly duplicated `(input, target)` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DuplicateRule;

impl DatasetRule for DuplicateRule {
    fn name(&self) -> &str {
        "duplicates"
    }

    fn check(&self, data: &[(Vector, Vector)]) -> Vec<DatasetFinding> {
        let mut seen: HashMap<(Vec<u64>, Vec<u64>), usize> = HashMap::new();
        let mut findings = Vec::new();
        for (i, (x, y)) in data.iter().enumerate() {
            let k = (key(x), key(y));
            match seen.get(&k) {
                Some(&first) => findings.push(DatasetFinding {
                    rule: self.name().to_string(),
                    message: format!("sample {i} duplicates sample {first}"),
                    samples: vec![first, i],
                }),
                None => {
                    seen.insert(k, i);
                }
            }
        }
        findings
    }
}

/// Flags input features that are constant across the whole dataset —
/// the trained network cannot depend on them, yet the verified input
/// box may still leave them free, silently widening the property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantFeatureRule {
    /// Maximum spread still considered constant.
    pub tolerance: f64,
}

impl Default for ConstantFeatureRule {
    fn default() -> Self {
        Self { tolerance: 1e-12 }
    }
}

impl DatasetRule for ConstantFeatureRule {
    fn name(&self) -> &str {
        "constant-feature"
    }

    fn check(&self, data: &[(Vector, Vector)]) -> Vec<DatasetFinding> {
        let Some((first, _)) = data.first() else {
            return Vec::new();
        };
        let n = first.len();
        let mut lo = first.clone();
        let mut hi = first.clone();
        for (x, _) in data.iter().skip(1) {
            for f in 0..n.min(x.len()) {
                lo[f] = lo[f].min(x[f]);
                hi[f] = hi[f].max(x[f]);
            }
        }
        (0..n)
            .filter(|&f| hi[f] - lo[f] <= self.tolerance)
            .map(|f| DatasetFinding {
                rule: self.name().to_string(),
                message: format!("feature {f} is constant at {}", lo[f]),
                samples: Vec::new(),
            })
            .collect()
    }
}

/// Flags contradictory labels: identical inputs mapped to targets that
/// differ by more than `tolerance` in some component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContradictionRule {
    /// Maximum target disagreement allowed for identical inputs.
    pub tolerance: f64,
}

impl Default for ContradictionRule {
    fn default() -> Self {
        Self { tolerance: 1e-6 }
    }
}

impl DatasetRule for ContradictionRule {
    fn name(&self) -> &str {
        "contradiction"
    }

    fn check(&self, data: &[(Vector, Vector)]) -> Vec<DatasetFinding> {
        let mut by_input: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut findings = Vec::new();
        for (i, (x, y)) in data.iter().enumerate() {
            let k = key(x);
            match by_input.get(&k) {
                Some(&first) => {
                    let (_, y0) = &data[first];
                    let disagrees = y0
                        .iter()
                        .zip(y.iter())
                        .any(|(a, b)| (a - b).abs() > self.tolerance)
                        || y0.len() != y.len();
                    if disagrees {
                        findings.push(DatasetFinding {
                            rule: self.name().to_string(),
                            message: format!(
                                "samples {first} and {i} share an input but disagree on the target"
                            ),
                            samples: vec![first, i],
                        });
                    }
                }
                None => {
                    by_input.insert(k, i);
                }
            }
        }
        findings
    }
}

/// Runs a set of dataset-level rules and collects all findings.
pub fn audit_dataset(
    data: &[(Vector, Vector)],
    rules: &[Box<dyn DatasetRule>],
) -> Vec<DatasetFinding> {
    rules.iter().flat_map(|r| r.check(data)).collect()
}

/// The standard dataset-level rule set.
pub fn standard_dataset_rules() -> Vec<Box<dyn DatasetRule>> {
    vec![
        Box::new(DuplicateRule),
        Box::new(ConstantFeatureRule::default()),
        Box::new(ContradictionRule::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[f64]) -> Vector {
        Vector::from(xs.to_vec())
    }

    #[test]
    fn duplicates_found_with_original_index() {
        let data = vec![
            (v(&[1.0, 2.0]), v(&[0.0])),
            (v(&[3.0, 4.0]), v(&[1.0])),
            (v(&[1.0, 2.0]), v(&[0.0])),
        ];
        let f = DuplicateRule.check(&data);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].samples, vec![0, 2]);
    }

    #[test]
    fn same_input_different_target_is_not_a_duplicate() {
        let data = vec![
            (v(&[1.0]), v(&[0.0])),
            (v(&[1.0]), v(&[5.0])),
        ];
        assert!(DuplicateRule.check(&data).is_empty());
        // But it *is* a contradiction.
        let c = ContradictionRule::default().check(&data);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].samples, vec![0, 1]);
    }

    #[test]
    fn constant_features_detected() {
        let data = vec![
            (v(&[1.0, 7.0]), v(&[0.0])),
            (v(&[2.0, 7.0]), v(&[0.0])),
            (v(&[3.0, 7.0]), v(&[0.0])),
        ];
        let f = ConstantFeatureRule::default().check(&data);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("feature 1"));
    }

    #[test]
    fn near_identical_targets_tolerated() {
        let data = vec![
            (v(&[1.0]), v(&[0.5])),
            (v(&[1.0]), v(&[0.5 + 1e-9])),
        ];
        assert!(ContradictionRule::default().check(&data).is_empty());
    }

    #[test]
    fn standard_rules_run_together() {
        let data = vec![
            (v(&[1.0, 2.0]), v(&[0.0])),
            (v(&[1.0, 2.0]), v(&[0.0])), // duplicate
            (v(&[1.0, 2.0]), v(&[9.0])), // contradiction (vs 0 and 1)
        ];
        let findings = audit_dataset(&data, &standard_dataset_rules());
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"duplicates"));
        assert!(rules.contains(&"contradiction"));
        assert!(rules.contains(&"constant-feature")); // both features constant
        assert!(findings.iter().all(|f| !f.to_string().is_empty()));
    }

    #[test]
    fn empty_dataset_is_clean() {
        assert!(audit_dataset(&[], &standard_dataset_rules()).is_empty());
    }
}
