//! The end-to-end certification pipeline.
//!
//! One [`CertificationPipeline::run`] call walks the paper's methodology:
//!
//! 1. **Generate** raw driving data from the highway simulator.
//! 2. **Validate & sanitize** it (specification validity, Sec. II (C)).
//! 3. **Train** the Gaussian-mixture motion predictor, optionally with a
//!    safety hint (Sec. IV (iii)).
//! 4. **Trace** neurons to features (understandability, Sec. II (A)) and
//!    measure ReLU branch coverage (the MC/DC discussion).
//! 5. **Verify** the safety property with the MILP engine (correctness,
//!    Sec. II (B) and Table II).

use crate::scenario::{
    left_vehicle_spec, max_lateral_velocity, prove_lateral_below, LateralVelocityResult,
};
use crate::CoreError;
use certnn_datacheck::coverage::{highway_cells, measure_coverage, CoverageReport};
use certnn_datacheck::highway::{highway_validator, left_present_feature};
use certnn_datacheck::validator::AuditReport;
use certnn_nn::gmm::{ActionDim, OutputLayout};
use certnn_nn::hints::SafetyHint;
use certnn_nn::loss::GmmNll;
use certnn_nn::metrics::{evaluate_gmm, EvalMetrics};
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, TrainConfig, TrainReport, Trainer};
use certnn_sim::features::FEATURE_COUNT;
use certnn_sim::scenario::{generate_dataset, ScenarioConfig};
use certnn_trace::attribution::{correlation_attribution, TraceabilityReport};
use certnn_trace::mcdc::{obligation_count, pattern_space_size, BranchCoverage};
use certnn_verify::verifier::{Verdict, Verifier, VerifierOptions, VerifyStats};
use certnn_verify::{Deadline, Degradation};

/// Configuration of a full certification run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Data-generation settings (run with `exclude_risky = false`; the
    /// validator performs the curation, as the methodology demands).
    pub scenario: ScenarioConfig,
    /// Hidden ReLU widths (the paper's `I4×N` uses four equal widths).
    pub hidden: Vec<usize>,
    /// Gaussian-mixture components of the output head.
    pub mixture_components: usize,
    /// Training settings (hints are added by the pipeline when
    /// `hint_weight > 0`).
    pub train: TrainConfig,
    /// Lateral-velocity cap (m/s) used by the data rule and the hint.
    pub lateral_cap: f64,
    /// Weight of the safety hint; `0` trains without hints.
    pub hint_weight: f64,
    /// Number of *virtual hint examples* (Abu-Mostafa 1995) sampled
    /// uniformly from the property scenario and fed to the hint during
    /// training. `0` applies hints to the training data only — which
    /// rarely fires, since sanitized data already respects the rule;
    /// virtual examples enforce it across the verified region.
    pub hint_virtual_samples: usize,
    /// Verifier settings.
    pub verifier: VerifierOptions,
    /// Weight-initialisation seed.
    pub network_seed: u64,
    /// Threshold of the decision query ("prove ≤ 3 m/s" in the paper).
    pub proof_threshold: f64,
}

impl PipelineConfig {
    /// A minutes-scale configuration approximating the case study:
    /// `I4×width` networks on a few simulated episodes.
    pub fn case_study(width: usize) -> Self {
        Self {
            scenario: ScenarioConfig {
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
            hidden: vec![width; 4],
            mixture_components: 2,
            train: TrainConfig {
                epochs: 60,
                batch_size: 64,
                weight_decay: 5e-4,
                ..TrainConfig::default()
            },
            lateral_cap: 1.0,
            hint_weight: 0.0,
            hint_virtual_samples: 0,
            verifier: VerifierOptions {
                time_limit: Some(std::time::Duration::from_secs(180)),
                ..VerifierOptions::default()
            },
            network_seed: 1,
            proof_threshold: 3.0,
        }
    }

    /// A seconds-scale configuration for tests and the quickstart example.
    pub fn smoke_test() -> Self {
        Self {
            scenario: ScenarioConfig {
                vehicles: 12,
                episode_seconds: 10.0,
                warmup_seconds: 1.0,
                sample_every: 10,
                seeds: vec![1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
            hidden: vec![6, 6],
            mixture_components: 1,
            train: TrainConfig {
                epochs: 15,
                batch_size: 32,
                ..TrainConfig::default()
            },
            lateral_cap: 1.0,
            hint_weight: 0.0,
            hint_virtual_samples: 0,
            verifier: VerifierOptions::default(),
            network_seed: 1,
            proof_threshold: 3.0,
        }
    }
}

/// Everything a certification run produces.
#[derive(Debug, Clone)]
pub struct CertificationReport {
    /// Audit of the raw data (pillar: specification validity).
    pub audit: AuditReport,
    /// Samples removed by sanitization.
    pub removed: usize,
    /// Samples used for training.
    pub samples_used: usize,
    /// Scenario coverage of the sanitized data (does the data exercise
    /// the situations the property quantifies over?).
    pub scenario_coverage: CoverageReport,
    /// Training curve.
    pub training: TrainReport,
    /// Held-out evaluation metrics of the trained predictor.
    pub metrics: EvalMetrics,
    /// Neuron-to-feature traceability of the first hidden layer
    /// (pillar: understandability).
    pub traceability: TraceabilityReport,
    /// ReLU branch coverage achieved by the training inputs.
    pub branch_coverage: f64,
    /// MC/DC obligations of the trained network.
    pub obligations: u64,
    /// Size of the branch-pattern space (`2^neurons`).
    pub pattern_space: f64,
    /// The Table II optimisation query (pillar: correctness).
    pub lateral: LateralVelocityResult,
    /// The Table II decision query verdict and its statistics.
    pub proof: (Verdict, VerifyStats),
    /// The trained network itself.
    pub network: Network,
    /// Mixture layout of the network's output head.
    pub layout: OutputLayout,
}

impl CertificationReport {
    /// Human-readable multi-line summary covering all three pillars.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "=== certification report for {} ===\n",
            self.network.label()
        ));
        s.push_str(&format!(
            "[validity]        raw samples {}, removed {}, trained on {}\n",
            self.audit.total, self.removed, self.samples_used
        ));
        if let Some(left) = self.scenario_coverage.cells.first() {
            s.push_str(&format!(
                "[validity]        property-scenario coverage: {} samples with a vehicle abreast on the left ({:.1}%)\n",
                left.count,
                100.0 * left.fraction
            ));
        }
        s.push_str(&format!(
            "[statistical]     held-out RMSE {:.4}, lateral MAE {:.4}, mean NLL {:.3} ({} samples)\n",
            self.metrics.rmse, self.metrics.lateral_mae, self.metrics.mean_nll, self.metrics.samples
        ));
        s.push_str(&format!(
            "[understandable]  untraceable neurons: {:.0}%  branch coverage: {:.0}%  obligations: {}  pattern space: 2^{:.0}\n",
            100.0 * self.traceability.untraceable_fraction(),
            100.0 * self.branch_coverage,
            self.obligations,
            self.pattern_space.log2()
        ));
        match self.lateral.max_lateral {
            Some(v) => s.push_str(&format!(
                "[correctness]     max lateral velocity (vehicle on left): {v:.6} m/s in {:?} ({} nodes)\n",
                self.lateral.stats.elapsed, self.lateral.stats.nodes
            )),
            None => s.push_str("[correctness]     max lateral velocity: query did not close\n"),
        }
        let verdict = match &self.proof.0 {
            Verdict::Holds { bound } => format!("HOLDS (bound {bound:.4})"),
            Verdict::Violated { value, .. } => format!("VIOLATED (witness value {value:.4})"),
            Verdict::Unknown { upper_bound, .. } => format!("UNKNOWN (bound {upper_bound:.4})"),
        };
        s.push_str(&format!("[correctness]     property \"lateral ≤ threshold\": {verdict}\n"));
        let worst = self.lateral.stats.degradation.merge(self.proof.1.degradation);
        if worst > Degradation::Exact {
            s.push_str(&format!(
                "[correctness]     degraded results: worst mode \"{}\" — bounds remain sound but looser than an exact solve\n",
                worst.as_str()
            ));
        }
        s
    }
}

/// The orchestrator.
#[derive(Debug, Clone)]
pub struct CertificationPipeline {
    config: PipelineConfig,
    deadline: Deadline,
}

impl CertificationPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            deadline: Deadline::none(),
        }
    }

    /// Attaches an ambient [`Deadline`]/cancellation token observed by the
    /// verification stage, down to simplex pivot batches (each query
    /// additionally tightens it by [`VerifierOptions::time_limit`]). On
    /// expiry the report carries sound partial bounds tagged
    /// [`Degradation::TimedOut`] instead of the run hanging.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs all five stages and collects the report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if any stage fails structurally (simulation,
    /// training, verification) or the sanitized dataset is empty.
    pub fn run(&self) -> Result<CertificationReport, CoreError> {
        let cfg = &self.config;
        let layout = OutputLayout::new(cfg.mixture_components);
        let _run_span = certnn_obs::span("pipeline.run");

        // 1. Generate raw data.
        let stage_span = certnn_obs::span("pipeline.generate");
        let mut raw = generate_dataset(&cfg.scenario)?;
        drop(stage_span);

        // 2. Validate and sanitize (specification validity).
        let stage_span = certnn_obs::span("pipeline.validate");
        let validator = highway_validator(cfg.lateral_cap);
        let audit = validator.sanitize(&mut raw);
        let removed = audit.total - raw.len();
        if raw.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let samples_used = raw.len();
        let scenario_coverage = measure_coverage(&raw, &highway_cells());
        let inputs_only: Vec<certnn_linalg::Vector> =
            raw.iter().map(|(x, _)| x.clone()).collect();
        let (data, held_out) = Dataset::from_samples(raw).split(0.2);
        drop(stage_span);

        // 3. Train.
        let stage_span = certnn_obs::span("pipeline.train");
        let mut net = Network::relu_mlp(
            FEATURE_COUNT,
            &cfg.hidden,
            layout.output_len(),
            cfg.network_seed,
        )?;
        let loss = GmmNll::new(cfg.mixture_components);
        let mut train_cfg = cfg.train.clone();
        if cfg.hint_weight > 0.0 {
            for k in 0..cfg.mixture_components {
                train_cfg.hints.push(SafetyHint {
                    guard_feature: left_present_feature(),
                    guard_threshold: 0.5,
                    output_index: layout.mean(k, ActionDim::LateralVelocity),
                    max_value: cfg.lateral_cap,
                    weight: cfg.hint_weight,
                });
            }
            if cfg.hint_virtual_samples > 0 {
                use rand::{rngs::StdRng, Rng, SeedableRng};
                let spec = left_vehicle_spec();
                let mut rng = StdRng::seed_from_u64(cfg.network_seed ^ 0x9e3779b9);
                // Half the virtual examples are random box *corners*:
                // piecewise-linear networks take their extreme values at
                // vertices, so uniform interior samples alone rarely
                // trigger the hint.
                train_cfg.hint_inputs = (0..cfg.hint_virtual_samples)
                    .map(|k| {
                        let corner = k % 2 == 0;
                        spec.bounds()
                            .iter()
                            .map(|iv| {
                                if iv.width() == 0.0 {
                                    iv.lo()
                                } else if corner {
                                    if rng.gen_bool(0.5) {
                                        iv.lo()
                                    } else {
                                        iv.hi()
                                    }
                                } else {
                                    rng.gen_range(iv.lo()..=iv.hi())
                                }
                            })
                            .collect()
                    })
                    .collect();
            }
        }
        let training = Trainer::new(train_cfg).train(&mut net, &data, &loss)?;
        let eval_set = if held_out.is_empty() { &data } else { &held_out };
        let metrics = evaluate_gmm(&net, eval_set, layout)?;
        drop(stage_span);

        // 4. Traceability + coverage (understandability).
        let stage_span = certnn_obs::span("pipeline.trace");
        let trace_inputs: Vec<&certnn_linalg::Vector> =
            inputs_only.iter().take(300).collect();
        let traceability = correlation_attribution(
            &net,
            &inputs_only[..inputs_only.len().min(300)],
            0,
            5,
        )?;
        let coverage = BranchCoverage::measure(&net, trace_inputs)
            .map_err(CoreError::from)?;
        drop(stage_span);

        // 5. Verify (correctness).
        let _stage_span = certnn_obs::span("pipeline.verify");
        let spec = left_vehicle_spec();
        let verifier =
            Verifier::with_options(cfg.verifier).with_deadline(self.deadline.clone());
        let lateral = max_lateral_velocity(&verifier, &net, layout, &spec)?;
        let proof = prove_lateral_below(&verifier, &net, layout, &spec, cfg.proof_threshold)?;

        Ok(CertificationReport {
            audit,
            removed,
            samples_used,
            scenario_coverage,
            training,
            metrics,
            traceability,
            branch_coverage: coverage.coverage(),
            obligations: obligation_count(&net),
            pattern_space: pattern_space_size(&net),
            lateral,
            proof,
            network: net,
            layout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pipeline_produces_consistent_report() {
        let report = CertificationPipeline::new(PipelineConfig::smoke_test())
            .run()
            .unwrap();
        // Validity stage saw data and kept most of it.
        assert!(report.audit.total > 100);
        assert!(report.samples_used > 0);
        assert_eq!(report.removed, report.audit.total - report.samples_used);
        // Training ran all epochs; evaluation happened on held-out data.
        assert_eq!(report.training.epoch_losses.len(), 15);
        assert!(report.metrics.samples > 0);
        assert!(report.metrics.rmse.is_finite());
        // The property scenario is represented in the data.
        assert_eq!(
            report.scenario_coverage.cells[0].name,
            "vehicle abreast on the left"
        );
        // Coverage and obligations describe a 12-neuron ReLU network.
        assert_eq!(report.obligations, 24);
        assert_eq!(report.pattern_space, 2f64.powi(12));
        assert!(report.branch_coverage > 0.0 && report.branch_coverage <= 1.0);
        // Verification closed exactly on this tiny network.
        assert!(report.lateral.is_exact());
        let max = report.lateral.max_lateral.unwrap();
        // Verdict must agree with the computed maximum.
        match &report.proof.0 {
            Verdict::Holds { .. } => assert!(max <= 3.0 + 1e-6),
            Verdict::Violated { value, .. } => {
                assert!(max > 3.0 - 1e-6);
                assert!(*value > 3.0);
            }
            Verdict::Unknown { .. } => panic!("tiny query must close"),
        }
        // Summary renders all pillar lines.
        let s = report.summary();
        assert!(s.contains("[validity]"));
        assert!(s.contains("[understandable]"));
        assert!(s.contains("[correctness]"));
    }

    #[test]
    fn hint_configuration_adds_hints() {
        let mut cfg = PipelineConfig::smoke_test();
        cfg.hint_weight = 5.0;
        cfg.mixture_components = 2;
        // Just construct and run a shortened training to confirm the
        // plumbing (hints are per component).
        cfg.train.epochs = 2;
        let report = CertificationPipeline::new(cfg).run().unwrap();
        assert!(report
            .training
            .epoch_hint_penalties
            .iter()
            .all(|p| p.is_finite()));
    }
}
