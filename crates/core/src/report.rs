//! The certification dossier: a complete markdown document from one
//! pipeline run.
//!
//! Certification is ultimately a *document* handed to an assessor. This
//! module renders a [`CertificationReport`] into a self-contained
//! markdown dossier: the concept matrix, the data audit, scenario
//! coverage, statistical evaluation, traceability, coverage analysis,
//! and the formal verification results with their witnesses.

use crate::pillars::render_matrix;
use crate::pipeline::CertificationReport;
use crate::scenario::{describe_witness, left_vehicle_spec};
use certnn_sim::features::FeatureExtractor;
use certnn_verify::verifier::Verdict;
use std::fmt::Write as _;

/// Renders the full markdown dossier for a completed certification run.
pub fn render_dossier(report: &CertificationReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Certification dossier — {}\n", report.network.label());
    let _ = writeln!(
        s,
        "Network: `{}` with {} parameters, {} ReLU neurons.\n",
        report.network.label(),
        report.network.num_params(),
        report.network.num_relu_neurons()
    );

    let _ = writeln!(s, "## Certification concept\n");
    let _ = writeln!(s, "```text\n{}```\n", render_matrix());

    let _ = writeln!(s, "## Pillar 1 — specification validity\n");
    let _ = writeln!(
        s,
        "* raw samples: {} — removed by sanitization: {} — trained on: {}",
        report.audit.total, report.removed, report.samples_used
    );
    for (rule, count) in &report.audit.by_rule {
        let _ = writeln!(s, "* rule `{rule}`: {count} violations found and removed");
    }
    let _ = writeln!(s, "\nScenario coverage of the sanitized data:\n");
    let _ = writeln!(s, "```text\n{}```\n", report.scenario_coverage);

    let _ = writeln!(s, "## Statistical evaluation (held-out)\n");
    let _ = writeln!(
        s,
        "| metric | value |\n|---|---|\n| RMSE | {:.4} |\n| lateral MAE | {:.4} |\n| mean NLL | {:.4} |\n| samples | {} |\n",
        report.metrics.rmse,
        report.metrics.lateral_mae,
        report.metrics.mean_nll,
        report.metrics.samples
    );

    let _ = writeln!(s, "## Pillar 2 — implementation understandability\n");
    let _ = writeln!(
        s,
        "* untraceable neurons (first hidden layer): {:.0}%",
        100.0 * report.traceability.untraceable_fraction()
    );
    let _ = writeln!(
        s,
        "* ReLU branch coverage by the training inputs: {:.1}%",
        100.0 * report.branch_coverage
    );
    let _ = writeln!(
        s,
        "* MC/DC obligations: {} — branch-pattern space: 2^{:.0} (why testing cannot certify correctness)\n",
        report.obligations,
        report.pattern_space.log2()
    );
    let names = FeatureExtractor::names();
    let _ = writeln!(s, "Strongest neuron-to-feature links:\n");
    let mut traces: Vec<_> = report.traceability.traces.iter().collect();
    traces.sort_by(|a, b| {
        let sa = a.dominant().map(|(_, v)| v.abs()).unwrap_or(0.0);
        let sb = b.dominant().map(|(_, v)| v.abs()).unwrap_or(0.0);
        sb.partial_cmp(&sa).expect("finite scores")
    });
    for t in traces.iter().take(8) {
        if let Some((f, score)) = t.dominant() {
            let _ = writeln!(s, "* `{}` ↔ `{}` (correlation {score:+.3})", t.neuron, names[f]);
        }
    }

    let _ = writeln!(s, "\n## Pillar 3 — implementation correctness (formal)\n");
    let spec = left_vehicle_spec();
    let pinned = spec
        .bounds()
        .iter()
        .filter(|iv| iv.width() == 0.0)
        .count();
    let _ = writeln!(
        s,
        "Property scenario: *a vehicle is abreast on the left* — {} of {} features pinned, the rest ranging over their physical bounds.\n",
        pinned,
        spec.num_inputs()
    );
    match report.lateral.max_lateral {
        Some(v) => {
            let _ = writeln!(
                s,
                "* **verified maximum lateral velocity: {v:.6} m/s** ({} search nodes, {} binaries, {:.2?})",
                report.lateral.stats.nodes, report.lateral.stats.binaries, report.lateral.stats.elapsed
            );
        }
        None => {
            let _ = writeln!(s, "* maximisation did not close within budget");
        }
    }
    match &report.proof.0 {
        Verdict::Holds { bound } => {
            let _ = writeln!(
                s,
                "* **property `lateral ≤ threshold`: PROVED** (bound {bound:.4}, {:.2?})",
                report.proof.1.elapsed
            );
        }
        Verdict::Violated { value, witness } => {
            let _ = writeln!(
                s,
                "* **property VIOLATED** — witness reaches {value:.4} m/s ({:.2?})",
                report.proof.1.elapsed
            );
            let _ = writeln!(s, "\n```text\n{}```", describe_witness(witness, 8));
        }
        Verdict::Unknown {
            best_seen,
            upper_bound,
        } => {
            let _ = writeln!(
                s,
                "* property undecided within budget (best seen {best_seen:?}, bound {upper_bound:.4})"
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CertificationPipeline, PipelineConfig};

    #[test]
    fn dossier_renders_every_section() {
        let report = CertificationPipeline::new(PipelineConfig::smoke_test())
            .run()
            .unwrap();
        let doc = render_dossier(&report);
        for section in [
            "# Certification dossier",
            "## Certification concept",
            "## Pillar 1",
            "## Statistical evaluation",
            "## Pillar 2",
            "## Pillar 3",
        ] {
            assert!(doc.contains(section), "missing `{section}`");
        }
        // The verdict line exists in one of its three forms.
        assert!(
            doc.contains("PROVED") || doc.contains("VIOLATED") || doc.contains("undecided"),
            "no verdict rendered"
        );
        // Feature names resolve (no raw indices for the links).
        assert!(doc.contains("ego.") || doc.contains("road.") || doc.contains(".present"));
    }
}
