//! The paper's certification methodology as an executable API.
//!
//! `certnn-core` is the top of the workspace: it wires the substrates —
//! simulator, data validation, training, traceability, formal
//! verification — into the three-pillar methodology the paper proposes
//! for dependable neural networks:
//!
//! 1. **Specification validity** — validate the training data as a new
//!    kind of specification ([`certnn_datacheck`]).
//! 2. **Implementation understandability** — neuron-to-feature
//!    traceability ([`certnn_trace`]).
//! 3. **Implementation correctness** — formal analysis against safety
//!    properties instead of coverage testing ([`certnn_verify`]).
//!
//! * [`pillars`] — Table I of the paper as typed, printable data.
//! * [`scenario`] — the case-study property: *if a vehicle is abreast on
//!   the left, the predictor's lateral-velocity mean stays bounded*.
//! * [`pipeline`] — [`pipeline::CertificationPipeline`] runs the whole
//!   methodology end to end and emits a
//!   [`pipeline::CertificationReport`].
//!
//! # Example
//!
//! ```no_run
//! use certnn_core::pipeline::{CertificationPipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), certnn_core::CoreError> {
//! let config = PipelineConfig::smoke_test();
//! let report = CertificationPipeline::new(config).run()?;
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod pillars;
pub mod report;
pub mod pipeline;
pub mod scenario;

use certnn_nn::NnError;
use certnn_sim::SimError;
use certnn_verify::VerifyError;
use std::error::Error;
use std::fmt;

/// Error raised by the certification pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Simulation / data generation failed.
    Sim(SimError),
    /// Training or network construction failed.
    Nn(NnError),
    /// Verification failed structurally.
    Verify(VerifyError),
    /// The sanitized dataset is empty — nothing to train on.
    EmptyDataset,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Verify(e) => write!(f, "verification error: {e}"),
            CoreError::EmptyDataset => f.write_str("sanitized dataset is empty"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Verify(e) => Some(e),
            CoreError::EmptyDataset => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<VerifyError> for CoreError {
    fn from(e: VerifyError) -> Self {
        CoreError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = CoreError::from(SimError::UnknownVehicle(1));
        assert!(e.to_string().contains("simulation"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CoreError::EmptyDataset).is_none());
    }
}
