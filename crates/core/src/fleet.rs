//! The paper's fleet observation: networks trained on the same data do
//! not all satisfy the safety property.
//!
//! "Surprisingly, we have trained a couple of neural networks under the
//! same data, but not all of them can guarantee the safety property."
//! [`run_fleet`] reproduces this: it trains several predictors on one
//! sanitized dataset — differing only in weight initialisation and
//! shuffle order — verifies every one, and reports which satisfy the
//! bound. The lesson is the paper's core argument for formal analysis:
//! clean data alone does not certify the *function* the optimiser found.

use crate::scenario::{left_vehicle_spec, max_lateral_velocity};
use crate::CoreError;
use certnn_datacheck::highway::highway_validator;
use certnn_nn::gmm::OutputLayout;
use certnn_nn::loss::GmmNll;
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, TrainConfig, Trainer};
use certnn_sim::features::FEATURE_COUNT;
use certnn_sim::scenario::{generate_dataset, ScenarioConfig};
use certnn_verify::bab::resolve_threads;
use certnn_verify::checkpoint::CheckpointPolicy;
use certnn_verify::verifier::{Verifier, VerifierOptions};
use certnn_verify::{Deadline, Degradation};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of the fleet experiment.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of networks to train (distinct seeds, same data).
    pub fleet_size: usize,
    /// Hidden widths of each network.
    pub hidden: Vec<usize>,
    /// Training epochs per network.
    pub epochs: usize,
    /// The safety bound each network must satisfy (m/s).
    pub bound: f64,
    /// Data-generation settings.
    pub scenario: ScenarioConfig,
    /// Per-network verification time limit.
    pub time_limit: Duration,
    /// Members trained/verified concurrently: `0` = one worker per
    /// available core, `1` = serial. Each member is deterministic given
    /// its seed, so the thread count never changes the results — only
    /// the wall-clock time.
    pub threads: usize,
    /// Reuse parent LP bases across branch-and-bound nodes (see
    /// [`VerifierOptions::warm_start`]). Verdict-preserving; disable to
    /// benchmark the cold path.
    pub warm_start: bool,
    /// α-optimization rounds per branch-and-bound node (see
    /// [`VerifierOptions::alpha_iters`]); `0` reproduces the fixed-slope
    /// heuristic bit-for-bit.
    pub alpha_iters: usize,
    /// Skip per-node LP relaxations far above the prune level (see
    /// [`VerifierOptions::lp_skip`]).
    pub lp_skip: bool,
    /// Crash-safe checkpointing of every member's verification queries
    /// (see [`CheckpointPolicy`]). Members verify distinct networks, so
    /// each query checkpoints to its own file under the policy's
    /// directory. `None` disables checkpointing.
    pub checkpoints: Option<CheckpointPolicy>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            fleet_size: 6,
            hidden: vec![10, 10],
            epochs: 60,
            bound: 3.0,
            scenario: ScenarioConfig {
                vehicles: 14,
                episode_seconds: 25.0,
                warmup_seconds: 3.0,
                sample_every: 5,
                seeds: vec![0, 1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
            time_limit: Duration::from_secs(60),
            threads: 0,
            warm_start: true,
            alpha_iters: certnn_verify::bab::DEFAULT_ALPHA_ITERS,
            lp_skip: true,
            checkpoints: None,
        }
    }
}

impl FleetConfig {
    /// Verifier options a fleet member is verified under when `workers`
    /// members run concurrently. Exposed so out-of-process verification
    /// paths (the `certnn-serve` daemon) can reproduce the in-process
    /// fleet verdicts bit-for-bit: any drift between this and what
    /// [`run_fleet`] uses would silently fork the two code paths.
    pub fn verifier_options(&self, workers: usize) -> VerifierOptions {
        VerifierOptions {
            time_limit: Some(self.time_limit),
            // Outer query-parallelism saturates the cores; keep the inner
            // search serial to avoid oversubscription. A lone worker hands
            // its cores to the search instead.
            threads: if workers > 1 { 1 } else { self.threads },
            warm_start: self.warm_start,
            alpha_iters: self.alpha_iters,
            lp_skip: self.lp_skip,
            ..VerifierOptions::default()
        }
    }

    /// Seconds-scale configuration for tests.
    pub fn smoke_test() -> Self {
        Self {
            fleet_size: 3,
            hidden: vec![6, 6],
            epochs: 8,
            bound: 1.5,
            scenario: ScenarioConfig {
                vehicles: 12,
                episode_seconds: 10.0,
                warmup_seconds: 1.0,
                sample_every: 10,
                seeds: vec![1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
            time_limit: Duration::from_secs(30),
            threads: 0,
            warm_start: true,
            alpha_iters: certnn_verify::bab::DEFAULT_ALPHA_ITERS,
            lp_skip: true,
            checkpoints: None,
        }
    }
}

/// One verified network of the fleet.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// Initialisation/shuffle seed of this member.
    pub seed: u64,
    /// Final training loss (identical data across members).
    pub final_loss: f64,
    /// Verified maximum lateral velocity, if the query closed.
    pub verified_max: Option<f64>,
    /// Whether this member satisfies the bound (`None` = undecided).
    pub safe: Option<bool>,
    /// Wall-clock seconds to train *and* verify this member.
    pub wall_secs: f64,
    /// Branch-and-bound nodes explored verifying this member.
    pub nodes: usize,
    /// Simplex pivots across all LP solves verifying this member.
    pub lp_iterations: usize,
    /// LP solves that reused a parent basis.
    pub warm_solves: usize,
    /// LP solves started from scratch.
    pub cold_solves: usize,
    /// Estimated pivots avoided by warm starts.
    pub pivots_saved: usize,
    /// B&B nodes whose LP relaxation the α-bound skip gate elided.
    pub lp_skipped: usize,
    /// Worst degradation across this member's verification queries:
    /// `Exact` on a clean run, worse if a numeric fault, worker panic or
    /// deadline forced a (still sound) fallback bound.
    pub degradation: Degradation,
}

/// Result of the fleet experiment.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-member outcomes, seed order.
    pub members: Vec<FleetMember>,
    /// The bound used.
    pub bound: f64,
    /// Training samples shared by all members.
    pub samples: usize,
}

impl FleetResult {
    /// Number of members proven safe.
    pub fn safe_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.safe == Some(true))
            .count()
    }

    /// Number of members proven unsafe.
    pub fn unsafe_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.safe == Some(false))
            .count()
    }

    /// Text table of the fleet.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "FLEET — {} networks, same {} samples, bound {} m/s",
            self.members.len(),
            self.samples,
            self.bound
        );
        let _ = writeln!(
            s,
            "{:>6} {:>12} {:>22} {:>8} {:>14}",
            "seed", "final loss", "verified max (m/s)", "safe?", "mode"
        );
        for m in &self.members {
            let v = m
                .verified_max
                .map(|v| format!("{v:.6}"))
                .unwrap_or_else(|| "n.a.".into());
            let safe = match m.safe {
                Some(true) => "YES",
                Some(false) => "no",
                None => "?",
            };
            let _ = writeln!(
                s,
                "{:>6} {:>12.4} {:>22} {:>8} {:>14}",
                m.seed,
                m.final_loss,
                v,
                safe,
                m.degradation.as_str()
            );
        }
        let _ = writeln!(
            s,
            "=> {}/{} safe — identical data, different optimisation outcomes",
            self.safe_count(),
            self.members.len()
        );
        s
    }
}

/// Initialisation/shuffle seed of fleet member `index` — the fleet's
/// deterministic seed schedule, shared by every execution path (local
/// threads, the serve daemon) so "member 2" means the same network
/// everywhere.
pub fn member_seed(index: usize) -> u64 {
    100 + index as u64
}

/// Generates and sanitizes the shared training dataset of a fleet run.
/// Returns the dataset plus the raw sample count (after sanitization).
/// Deterministic given the config's scenario seeds.
///
/// # Errors
///
/// [`CoreError::Sim`] on generation failure, [`CoreError::EmptyDataset`]
/// if sanitization leaves nothing to train on.
pub fn fleet_dataset(config: &FleetConfig) -> Result<(Dataset, usize), CoreError> {
    let mut raw = generate_dataset(&config.scenario)?;
    highway_validator(1.0).sanitize(&mut raw);
    if raw.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let samples = raw.len();
    Ok((Dataset::from_samples(raw), samples))
}

/// Trains one fleet member's predictor on the shared dataset. Fully
/// deterministic given `seed`: the same (config, seed, data) triple
/// produces bit-identical weights on every machine and execution path,
/// which is what lets a remote verifier answer for a locally trained
/// network.
///
/// # Errors
///
/// [`CoreError::Nn`] on construction or training failure.
pub fn train_member(
    config: &FleetConfig,
    seed: u64,
    data: &Dataset,
) -> Result<(Network, f64), CoreError> {
    let layout = OutputLayout::new(1);
    let loss = GmmNll::new(1);
    let mut net = Network::relu_mlp(FEATURE_COUNT, &config.hidden, layout.output_len(), seed)?;
    let report = Trainer::new(TrainConfig {
        epochs: config.epochs,
        batch_size: 32,
        seed,
        weight_decay: 2e-4,
        ..TrainConfig::default()
    })
    .train(&mut net, data, &loss)?;
    Ok((net, report.final_loss()))
}

/// Trains and verifies one fleet member end to end. Deterministic given
/// `seed`; safe to run concurrently with other members.
fn run_member(
    config: &FleetConfig,
    seed: u64,
    data: &Dataset,
    layout: OutputLayout,
    spec: &certnn_verify::property::InputSpec,
    verifier: &Verifier,
) -> Result<FleetMember, CoreError> {
    let start = Instant::now();
    let (net, final_loss) = train_member(config, seed, data)?;
    let result = max_lateral_velocity(verifier, &net, layout, spec)?;
    let safe = result.max_lateral.map(|v| v <= config.bound);
    Ok(FleetMember {
        seed,
        final_loss,
        verified_max: result.max_lateral,
        safe,
        wall_secs: start.elapsed().as_secs_f64(),
        nodes: result.stats.nodes,
        lp_iterations: result.stats.lp_iterations,
        warm_solves: result.stats.warm_solves,
        cold_solves: result.stats.cold_solves,
        pivots_saved: result.stats.pivots_saved,
        lp_skipped: result.stats.lp_skipped,
        degradation: result.stats.degradation,
    })
}

/// Runs the fleet experiment.
///
/// Members are independent (same data, distinct seeds), so they are
/// dispatched to [`FleetConfig::threads`] scoped workers pulling member
/// indices from a shared counter. Results land in seed order regardless
/// of completion order, and each member's training/verification is fully
/// deterministic, so the report is identical at any thread count.
///
/// # Errors
///
/// Returns [`CoreError`] if data generation, training or verification
/// fails structurally (first failing member in seed order).
pub fn run_fleet(config: &FleetConfig) -> Result<FleetResult, CoreError> {
    run_fleet_under(config, Deadline::none())
}

/// [`run_fleet`] under an ambient [`Deadline`]/cancellation token.
///
/// The deadline is threaded through every member's verifier down to
/// individual simplex pivot batches (tightened per query by
/// [`FleetConfig::time_limit`]); on expiry the affected members report
/// sound partial bounds tagged `TimedOut` instead of the run hanging or
/// crashing.
///
/// # Errors
///
/// Same contract as [`run_fleet`].
pub fn run_fleet_under(config: &FleetConfig, deadline: Deadline) -> Result<FleetResult, CoreError> {
    let (data, samples) = fleet_dataset(config)?;
    let layout = OutputLayout::new(1);
    let spec = left_vehicle_spec();
    let workers = resolve_threads(config.threads).min(config.fleet_size.max(1));
    let mut verifier =
        Verifier::with_options(config.verifier_options(workers)).with_deadline(deadline);
    if let Some(ckpt) = &config.checkpoints {
        verifier = verifier.with_checkpoints(ckpt.clone());
    }

    let slots: Vec<Mutex<Option<Result<FleetMember, CoreError>>>> =
        (0..config.fleet_size).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let run_span = certnn_obs::span("fleet.run");
    let run_span_id = run_span.id();
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.fleet_size {
                    break;
                }
                let seed = member_seed(i);
                let member_span = certnn_obs::span_child_of("fleet.member", run_span_id);
                let member = run_member(config, seed, &data, layout, &spec, &verifier);
                drop(member_span);
                if certnn_obs::enabled() {
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Ok(m) = &member {
                        certnn_obs::event(
                            "fleet.member_done",
                            vec![
                                ("seed", seed.into()),
                                ("wall_secs", m.wall_secs.into()),
                                ("nodes", m.nodes.into()),
                                ("safe", m.safe.unwrap_or(false).into()),
                                ("degradation", m.degradation.as_str().into()),
                            ],
                        );
                    }
                    // Live progress line: only when observability is on,
                    // so quiet runs stay byte-identical on stderr.
                    eprintln!(
                        "[fleet] {finished}/{} members done (seed {seed})",
                        config.fleet_size
                    );
                }
                // Poison-tolerant: a worker that panicked elsewhere must
                // not wedge result collection for the surviving members.
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(member);
            });
        }
    });
    drop(run_span);

    let mut members = Vec::with_capacity(config.fleet_size);
    for slot in slots {
        let member = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every member index was claimed by a worker");
        members.push(member?);
    }
    Ok(FleetResult {
        members,
        bound: config.bound,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_members_differ_despite_identical_data() {
        let result = run_fleet(&FleetConfig::smoke_test()).unwrap();
        assert_eq!(result.members.len(), 3);
        assert!(result.samples > 50);
        // All tiny queries close.
        let maxes: Vec<f64> = result
            .members
            .iter()
            .map(|m| m.verified_max.expect("closes"))
            .collect();
        // Different initialisations give measurably different verified
        // maxima — the paper's observation in miniature.
        let spread = maxes.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - maxes.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1e-4, "fleet collapsed to identical maxima: {maxes:?}");
        assert_eq!(result.safe_count() + result.unsafe_count(), 3);
        for m in &result.members {
            assert!(m.wall_secs > 0.0);
            assert!(m.nodes >= 1);
        }
        let table = result.to_table();
        assert!(table.contains("FLEET"));
        assert!(table.contains("safe"));
    }
}
