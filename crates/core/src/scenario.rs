//! The case-study safety property ("vehicle on the left").
//!
//! Formalises the paper's requirement: *"if there is a vehicle in the
//! left of the ego vehicle, the predictor never suggests a large left
//! velocity"*, instantiated on the 84-feature layout of `certnn-sim` and
//! the Gaussian-mixture output layout of `certnn-nn`.

use certnn_nn::gmm::{ActionDim, OutputLayout};
use certnn_nn::network::Network;
use certnn_sim::features::{
    slot_index, FeatureExtractor, Orientation, SlotFeature, ROAD_BASE,
};
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{MaxResult, Verdict, Verifier, VerifyStats};
use certnn_verify::VerifyError;

/// Builds the admissible input set of the property: the physical feature
/// box with the scenario pinned to *a vehicle is abreast on the left*
/// (and the road block fixed to the motorway the data comes from).
pub fn left_vehicle_spec() -> InputSpec {
    let spec = InputSpec::from_box(FeatureExtractor::bounds())
        .expect("feature box is nonempty");
    let present = slot_index(Orientation::SideLeft, SlotFeature::Present);
    let dx = slot_index(Orientation::SideLeft, SlotFeature::Dx);
    spec
        // The scenario guard: someone is abreast on the left…
        .fix(present, 1.0)
        // …within the ±12 m side window (dx is normalised by 100 m).
        .restrict(dx, -0.12, 0.12)
        // A left lane must exist for the guard to be meaningful.
        .fix(ROAD_BASE + 5, 1.0)
        // The concrete motorway of the case study (3 lanes, 3.5 m lanes,
        // dry, 33 m/s limit), matching the training distribution.
        .fix(ROAD_BASE, 3.0 / 5.0)
        .fix(ROAD_BASE + 1, 3.5 / 5.0)
        .fix(ROAD_BASE + 2, 1.0)
        .fix(ROAD_BASE + 3, 33.0 / 50.0)
}

/// The objectives of the property: one per mixture component, each
/// selecting that component's lateral-velocity *mean* output neuron.
pub fn lateral_mean_objectives(layout: OutputLayout) -> Vec<LinearObjective> {
    (0..layout.components())
        .map(|k| LinearObjective::output(layout.mean(k, ActionDim::LateralVelocity)))
        .collect()
}

/// Result of the Table II optimisation query on one network: the maximum
/// lateral-velocity mean over the scenario, with per-component detail.
#[derive(Debug, Clone)]
pub struct LateralVelocityResult {
    /// Per-component maximisation results.
    pub per_component: Vec<MaxResult>,
    /// The overall maximum (max over components), if every component
    /// query closed.
    pub max_lateral: Option<f64>,
    /// Aggregated statistics (summed over component queries).
    pub stats: VerifyStats,
}

impl LateralVelocityResult {
    /// `true` if every component query was solved to optimality.
    pub fn is_exact(&self) -> bool {
        self.per_component.iter().all(MaxResult::is_exact)
    }
}

/// Computes the paper's "maximum lateral velocity, when exists a vehicle
/// in the left" for `net` (Table II rows 1–6).
///
/// # Errors
///
/// Returns [`VerifyError`] if the network does not match the spec or the
/// mixture layout.
pub fn max_lateral_velocity(
    verifier: &Verifier,
    net: &Network,
    layout: OutputLayout,
    spec: &InputSpec,
) -> Result<LateralVelocityResult, VerifyError> {
    let mut per_component = Vec::new();
    let mut stats = VerifyStats::default();
    for obj in lateral_mean_objectives(layout) {
        let r = verifier.maximize(net, spec, &obj)?;
        stats.nodes += r.stats.nodes;
        stats.lp_iterations += r.stats.lp_iterations;
        stats.binaries = stats.binaries.max(r.stats.binaries);
        stats.rows = stats.rows.max(r.stats.rows);
        stats.warm_solves += r.stats.warm_solves;
        stats.cold_solves += r.stats.cold_solves;
        stats.pivots_saved += r.stats.pivots_saved;
        stats.lp_skipped += r.stats.lp_skipped;
        stats.lp_forced += r.stats.lp_forced;
        stats.elapsed += r.stats.elapsed;
        stats.degradation = stats.degradation.merge(r.stats.degradation);
        per_component.push(r);
    }
    let max_lateral = per_component
        .iter()
        .map(|r| r.exact_max())
        .collect::<Option<Vec<f64>>>()
        .map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
    Ok(LateralVelocityResult {
        per_component,
        max_lateral,
        stats,
    })
}

/// Decides the paper's decision query (Table II last row): *prove that
/// the lateral velocity can never be larger than `threshold`* — every
/// component's mean must stay below it.
///
/// # Errors
///
/// Returns [`VerifyError`] if the network does not match the spec or the
/// mixture layout.
pub fn prove_lateral_below(
    verifier: &Verifier,
    net: &Network,
    layout: OutputLayout,
    spec: &InputSpec,
    threshold: f64,
) -> Result<(Verdict, VerifyStats), VerifyError> {
    let mut stats = VerifyStats::default();
    let mut worst_hold_bound = f64::NEG_INFINITY;
    for obj in lateral_mean_objectives(layout) {
        let (verdict, s) = verifier.prove_below(net, spec, &obj, threshold)?;
        stats.nodes += s.nodes;
        stats.lp_iterations += s.lp_iterations;
        stats.binaries = stats.binaries.max(s.binaries);
        stats.rows = stats.rows.max(s.rows);
        stats.warm_solves += s.warm_solves;
        stats.cold_solves += s.cold_solves;
        stats.pivots_saved += s.pivots_saved;
        stats.lp_skipped += s.lp_skipped;
        stats.lp_forced += s.lp_forced;
        stats.elapsed += s.elapsed;
        stats.degradation = stats.degradation.merge(s.degradation);
        match verdict {
            Verdict::Holds { bound } => worst_hold_bound = worst_hold_bound.max(bound),
            other => return Ok((other, stats)),
        }
    }
    Ok((
        Verdict::Holds {
            bound: worst_hold_bound,
        },
        stats,
    ))
}

/// Human-readable description of a verification witness: lists the
/// features that materially deviate from the scenario box's midpoint,
/// resolved to their physical names — the form a certification reviewer
/// needs a counterexample in.
pub fn describe_witness(witness: &certnn_linalg::Vector, top: usize) -> String {
    let names = FeatureExtractor::names();
    let spec = left_vehicle_spec();
    let mut deviations: Vec<(usize, f64)> = spec
        .bounds()
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.width() > 0.0)
        .map(|(i, iv)| {
            let normalized = (witness[i] - iv.midpoint()).abs() / (0.5 * iv.width());
            (i, normalized)
        })
        .collect();
    deviations.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite deviations"));
    let mut s = String::from("counterexample (most extreme scenario features first):\n");
    for &(i, dev) in deviations.iter().take(top) {
        s.push_str(&format!(
            "  {:<24} = {:+.3}  ({:.0}% towards its bound)\n",
            names[i],
            witness[i],
            100.0 * dev.min(1.0)
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Vector;
    use certnn_sim::features::FEATURE_COUNT;

    #[test]
    fn spec_pins_the_scenario_features() {
        let spec = left_vehicle_spec();
        assert_eq!(spec.num_inputs(), FEATURE_COUNT);
        let present = slot_index(Orientation::SideLeft, SlotFeature::Present);
        assert_eq!(spec.bounds()[present].lo(), 1.0);
        assert_eq!(spec.bounds()[present].hi(), 1.0);
        let dx = slot_index(Orientation::SideLeft, SlotFeature::Dx);
        assert_eq!(spec.bounds()[dx].lo(), -0.12);
        assert_eq!(spec.bounds()[dx].hi(), 0.12);
    }

    #[test]
    fn spec_rejects_points_without_left_vehicle() {
        let spec = left_vehicle_spec();
        let mut x = Vector::zeros(FEATURE_COUNT);
        assert!(!spec.contains(&x, 1e-9));
        x[slot_index(Orientation::SideLeft, SlotFeature::Present)] = 1.0;
        x[ROAD_BASE + 5] = 1.0;
        x[ROAD_BASE] = 3.0 / 5.0;
        x[ROAD_BASE + 1] = 3.5 / 5.0;
        x[ROAD_BASE + 2] = 1.0;
        x[ROAD_BASE + 3] = 33.0 / 50.0;
        assert!(spec.contains(&x, 1e-9));
    }

    #[test]
    fn objectives_select_lateral_mean_neurons() {
        let layout = OutputLayout::new(3);
        let objs = lateral_mean_objectives(layout);
        assert_eq!(objs.len(), 3);
        let expected = layout.lateral_mean_indices();
        for (obj, idx) in objs.iter().zip(expected) {
            assert_eq!(obj.terms, vec![(idx, 1.0)]);
        }
    }

    #[test]
    fn witness_description_names_extreme_features() {
        let spec = left_vehicle_spec();
        let mut w: Vector = spec.bounds().iter().map(|iv| iv.midpoint()).collect();
        // Push one free feature to its bound.
        let idx = spec
            .bounds()
            .iter()
            .position(|iv| iv.width() > 0.0)
            .expect("has free features");
        w[idx] = spec.bounds()[idx].hi();
        let text = describe_witness(&w, 3);
        let names = FeatureExtractor::names();
        assert!(text.contains(&names[idx]));
        assert!(text.contains("100%"));
    }

    #[test]
    fn max_lateral_velocity_runs_on_a_small_predictor() {
        // Tiny untrained predictor: the point is the plumbing, not the value.
        let layout = OutputLayout::new(1);
        let net = Network::relu_mlp(FEATURE_COUNT, &[6], layout.output_len(), 4).unwrap();
        let spec = left_vehicle_spec();
        let verifier = Verifier::new();
        let result = max_lateral_velocity(&verifier, &net, layout, &spec).unwrap();
        assert!(result.is_exact());
        let max = result.max_lateral.unwrap();
        // The witness is a genuine scenario input.
        let w = result.per_component[0].witness.as_ref().unwrap();
        assert!(spec.contains(w, 1e-6));
        // Consistency with the decision query.
        let (verdict, _) =
            prove_lateral_below(&verifier, &net, layout, &spec, max + 0.5).unwrap();
        assert!(verdict.holds());
        let (verdict, _) =
            prove_lateral_below(&verifier, &net, layout, &spec, max - 0.1).unwrap();
        assert!(!verdict.holds());
    }
}
