//! Table I of the paper as typed data.
//!
//! "Extending the concept in certifying safety-critical systems to new
//! opportunities brought by neural networks" — three certification
//! pillars, each with its classical form and its ANN adaptation. The
//! table is reproduced verbatim so the `certification_pipeline` example
//! and the `table1` report can print it, and tests can pin its content.

use std::fmt;

/// Whether an adaptation adds a technique `(+)` or retires one `(−)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptationKind {
    /// `(+)` — a new technique the methodology adds for ANNs.
    Added,
    /// `(−)` — a classical technique that stops working for ANNs.
    Retired,
}

impl fmt::Display for AdaptationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdaptationKind::Added => "(+)",
            AdaptationKind::Retired => "(−)",
        })
    }
}

/// One adaptation entry of a pillar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Adaptation {
    /// Added or retired.
    pub kind: AdaptationKind,
    /// The technique.
    pub technique: &'static str,
}

/// One certification pillar (row group of Table I).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pillar {
    /// Pillar name.
    pub name: &'static str,
    /// The existing-standard practice.
    pub existing_standard: &'static str,
    /// The ANN adaptations.
    pub adaptations: Vec<Adaptation>,
    /// Which workspace crate operationalises this pillar.
    pub implemented_by: &'static str,
}

/// The certification-concept matrix (Table I).
pub fn certification_matrix() -> Vec<Pillar> {
    vec![
        Pillar {
            name: "Implementation understandability",
            existing_standard: "Fine-grained specification-to-code traceability",
            adaptations: vec![Adaptation {
                kind: AdaptationKind::Added,
                technique: "Fine-grained neuron-to-feature traceability",
            }],
            implemented_by: "certnn-trace",
        },
        Pillar {
            name: "Implementation correctness",
            existing_standard:
                "Verification based on testing and classical coverage criteria such as MC/DC",
            adaptations: vec![
                Adaptation {
                    kind: AdaptationKind::Retired,
                    technique: "coverage criteria such as MC/DC",
                },
                Adaptation {
                    kind: AdaptationKind::Added,
                    technique: "formal analysis against safety properties",
                },
            ],
            implemented_by: "certnn-verify",
        },
        Pillar {
            name: "Specification validity",
            existing_standard:
                "Validation via prototyping, design-time analysis, and product acceptance test",
            adaptations: vec![Adaptation {
                kind: AdaptationKind::Added,
                technique: "Validating data as a new type of specification",
            }],
            implemented_by: "certnn-datacheck",
        },
    ]
}

/// Renders the matrix as a text table (the `table1` report artifact).
pub fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(
        "TABLE I — extending safety-certification concepts to neural networks\n",
    );
    for p in certification_matrix() {
        out.push_str(&format!("\n{}\n", p.name));
        out.push_str(&format!("  existing standard: {}\n", p.existing_standard));
        for a in &p.adaptations {
            out.push_str(&format!("  adaptation for ANN: {} {}\n", a.kind, a.technique));
        }
        out.push_str(&format!("  implemented by: {}\n", p.implemented_by));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_three_pillars_in_paper_order() {
        let m = certification_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].name, "Implementation understandability");
        assert_eq!(m[1].name, "Implementation correctness");
        assert_eq!(m[2].name, "Specification validity");
    }

    #[test]
    fn correctness_pillar_retires_mcdc_and_adds_formal_analysis() {
        let m = certification_matrix();
        let correctness = &m[1];
        assert_eq!(correctness.adaptations.len(), 2);
        assert_eq!(correctness.adaptations[0].kind, AdaptationKind::Retired);
        assert!(correctness.adaptations[0].technique.contains("MC/DC"));
        assert_eq!(correctness.adaptations[1].kind, AdaptationKind::Added);
        assert!(correctness.adaptations[1]
            .technique
            .contains("formal analysis"));
    }

    #[test]
    fn every_pillar_maps_to_a_crate() {
        for p in certification_matrix() {
            assert!(p.implemented_by.starts_with("certnn-"));
        }
    }

    #[test]
    fn rendered_table_mentions_all_pillars_and_signs() {
        let t = render_matrix();
        assert!(t.contains("TABLE I"));
        assert!(t.contains("neuron-to-feature"));
        assert!(t.contains("(+)"));
        assert!(t.contains("(−)"));
    }
}
