//! CSC-style sparse column storage for the simplex kernels.
//!
//! ReLU encodings are typically >90 % sparse: each big-M row touches one
//! neuron, its binary, and the fan-in of the previous layer. Storing the
//! constraint matrix column-major in flat arrays lets FTRAN, pricing, and
//! the dual ratio test iterate exactly the nonzero entries of a column with
//! no per-column allocation and good cache behaviour.

/// Compressed sparse columns: `col_ptr[j]..col_ptr[j + 1]` indexes the
/// `(rows, vals)` entries of column `j`. Columns are append-only, matching
/// how the tableau is assembled (structurals, then slacks, then artificials).
#[derive(Debug, Clone, Default)]
pub(crate) struct ColMatrix {
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
    vals: Vec<f64>,
}

impl ColMatrix {
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with_capacity(cols: usize, nnz: usize) -> Self {
        let mut col_ptr = Vec::with_capacity(cols + 1);
        col_ptr.push(0);
        Self {
            col_ptr,
            rows: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Builds the structural block from row-major `(col, coeff)` lists.
    /// `rows` yields, per constraint row, the coefficients of that row;
    /// exact zeros are dropped so downstream scans never touch them.
    pub(crate) fn from_row_major<'a, I>(n_cols: usize, row_major: I) -> Self
    where
        I: Iterator<Item = &'a [(usize, f64)]> + Clone,
    {
        let mut counts = vec![0usize; n_cols];
        for row in row_major.clone() {
            for &(j, c) in row {
                if c != 0.0 {
                    counts[j] += 1;
                }
            }
        }
        let mut col_ptr = vec![0usize; n_cols + 1];
        for j in 0..n_cols {
            col_ptr[j + 1] = col_ptr[j] + counts[j];
        }
        let nnz = col_ptr[n_cols];
        let mut rows = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (i, row) in row_major.enumerate() {
            for &(j, c) in row {
                if c != 0.0 {
                    rows[cursor[j]] = i;
                    vals[cursor[j]] = c;
                    cursor[j] += 1;
                }
            }
        }
        Self { col_ptr, rows, vals }
    }

    /// Appends one column given its `(row, value)` entries; zeros are dropped.
    pub(crate) fn push_col<I: IntoIterator<Item = (usize, f64)>>(&mut self, entries: I) {
        for (r, v) in entries {
            if v != 0.0 {
                self.rows.push(r);
                self.vals.push(v);
            }
        }
        self.col_ptr.push(self.rows.len());
    }

    pub(crate) fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Nonzero `(row, value)` pairs of column `j`.
    #[inline]
    pub(crate) fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.rows[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_row_major_transposes_and_drops_zeros() {
        // Rows: [2x0 + 0x1 + 1x2], [0x0 + 3x1]
        let rows: Vec<Vec<(usize, f64)>> =
            vec![vec![(0, 2.0), (1, 0.0), (2, 1.0)], vec![(0, 0.0), (1, 3.0)]];
        let m = ColMatrix::from_row_major(3, rows.iter().map(|r| r.as_slice()));
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 2.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(m.col(2).collect::<Vec<_>>(), vec![(0, 1.0)]);
    }

    #[test]
    fn push_col_appends() {
        let mut m = ColMatrix::with_capacity(2, 2);
        m.push_col([(1, 4.0), (2, 0.0)]);
        m.push_col([]);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(1, 4.0)]);
        assert_eq!(m.col(1).count(), 0);
    }
}
