//! Export of models to the CPLEX LP text format.
//!
//! Verification encodings can be dumped and inspected, diffed across
//! code changes, or cross-checked against an external solver. The format
//! follows the widely supported LP-file conventions (`Maximize` /
//! `Subject To` / `Bounds` / `End`, with `Generals`/`Binaries` emitted by
//! the MILP wrapper in `certnn-milp`).

use crate::model::{LpModel, RowKind, Sense};
use std::fmt::Write as _;

/// Renders the model in LP format.
pub fn to_lp_format(model: &LpModel) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\\ {} variables, {} rows (exported by certnn-lp)",
        model.num_vars(),
        model.num_rows()
    );
    let _ = writeln!(
        s,
        "{}",
        match model.sense {
            Sense::Maximize => "Maximize",
            Sense::Minimize => "Minimize",
        }
    );
    s.push_str(" obj:");
    let mut any = false;
    for (j, &c) in model.objective.iter().enumerate() {
        if c != 0.0 {
            let _ = write!(s, " {} {}", signed(c), var_name(model, j));
            any = true;
        }
    }
    if !any {
        s.push_str(" 0 x0");
    }
    s.push('\n');

    let _ = writeln!(s, "Subject To");
    for (i, row) in model.rows.iter().enumerate() {
        let _ = write!(s, " r{i}:");
        if row.coeffs.is_empty() {
            s.push_str(" 0 x0");
        }
        for &(j, c) in &row.coeffs {
            let _ = write!(s, " {} {}", signed(c), var_name(model, j));
        }
        let op = match row.kind {
            RowKind::Le => "<=",
            RowKind::Ge => ">=",
            RowKind::Eq => "=",
        };
        let _ = writeln!(s, " {op} {}", row.rhs);
    }

    let _ = writeln!(s, "Bounds");
    for (j, v) in model.vars.iter().enumerate() {
        let name = var_name(model, j);
        match (v.lo.is_finite(), v.hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(s, " {} <= {name} <= {}", v.lo, v.hi);
            }
            (true, false) => {
                let _ = writeln!(s, " {name} >= {}", v.lo);
            }
            (false, true) => {
                let _ = writeln!(s, " {name} <= {}", v.hi);
            }
            (false, false) => {
                let _ = writeln!(s, " {name} free");
            }
        }
    }
    s.push_str("End\n");
    s
}

/// LP-file-safe variable name: the declared name if it is plain
/// alphanumeric/underscore, else a positional `x<j>`.
fn var_name(model: &LpModel, j: usize) -> String {
    let n = &model.vars[j].name;
    if !n.is_empty()
        && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !n.starts_with(|c: char| c.is_ascii_digit())
    {
        n.clone()
    } else {
        format!("x{j}")
    }
}

/// Renders a coefficient with an explicit sign, LP style.
fn signed(c: f64) -> String {
    if c >= 0.0 {
        format!("+ {c}")
    } else {
        format!("- {}", -c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, RowKind, Sense};

    fn sample() -> LpModel {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0);
        let y = m.add_var("weird name!", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(&[(x, 3.0), (y, -5.0)]);
        m.add_row("r", &[(x, 1.0), (y, 2.0)], RowKind::Le, 14.0)
            .unwrap();
        m.add_row("e", &[(y, 1.0)], RowKind::Eq, 1.0).unwrap();
        m
    }

    #[test]
    fn sections_present_and_ordered() {
        let text = to_lp_format(&sample());
        let max_pos = text.find("Maximize").unwrap();
        let st_pos = text.find("Subject To").unwrap();
        let b_pos = text.find("Bounds").unwrap();
        let end_pos = text.find("End").unwrap();
        assert!(max_pos < st_pos && st_pos < b_pos && b_pos < end_pos);
    }

    #[test]
    fn coefficients_and_relations_rendered() {
        let text = to_lp_format(&sample());
        assert!(text.contains("+ 3 x"));
        assert!(text.contains("- 5 x1")); // sanitised name
        assert!(text.contains("<= 14"));
        assert!(text.contains("= 1"));
    }

    #[test]
    fn bounds_cover_all_variants() {
        let text = to_lp_format(&sample());
        assert!(text.contains("0 <= x <= 4"));
        assert!(text.contains("x1 free"));
    }

    #[test]
    fn unsafe_names_are_sanitised() {
        let text = to_lp_format(&sample());
        assert!(!text.contains("weird name!"));
    }

    #[test]
    fn empty_objective_still_valid() {
        let mut m = LpModel::new(Sense::Minimize);
        m.add_var("x", 0.0, 1.0);
        let text = to_lp_format(&m);
        assert!(text.contains("Minimize"));
        assert!(text.contains(" obj: 0 x0"));
    }
}
