//! LP model builder.

use crate::LpError;
use std::fmt;

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Creates a handle from a zero-based variable position.
    ///
    /// Useful for iterating over all variables of a model; handles built
    /// this way are only meaningful for models with at least `index + 1`
    /// variables.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// Zero-based position of the variable in the model.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Opaque handle to a model row (constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// Zero-based position of the row in the model.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Relational operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowKind {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

impl fmt::Display for RowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RowKind::Le => "<=",
            RowKind::Eq => "=",
            RowKind::Ge => ">=",
        })
    }
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimise the objective.
    #[default]
    Minimize,
    /// Maximise the objective.
    Maximize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarDef {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RowDef {
    pub name: String,
    pub coeffs: Vec<(usize, f64)>,
    pub kind: RowKind,
    pub rhs: f64,
}

/// A linear program under construction.
///
/// Variables carry individual (possibly infinite) bounds; rows are sparse
/// linear constraints. The model itself performs no solving — hand it to
/// [`Simplex`](crate::Simplex).
///
/// # Example
///
/// ```
/// use certnn_lp::{LpModel, RowKind, Sense};
///
/// # fn main() -> Result<(), certnn_lp::LpError> {
/// let mut m = LpModel::new(Sense::Minimize);
/// let x = m.add_var("x", -1.0, 1.0);
/// m.set_objective(&[(x, 2.0)]);
/// m.add_row("r", &[(x, 1.0)], RowKind::Ge, 0.0)?;
/// assert_eq!(m.num_vars(), 1);
/// assert_eq!(m.num_rows(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LpModel {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) rows: Vec<RowDef>,
    pub(crate) objective: Vec<f64>,
    pub(crate) sense: Sense,
}

impl LpModel {
    /// Creates an empty model with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            ..Self::default()
        }
    }

    /// Adds a variable with bounds `[lo, hi]` (either may be infinite) and
    /// returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN. Use
    /// [`set_bounds`](Self::set_bounds) for fallible bound updates.
    pub fn add_var(&mut self, name: &str, lo: f64, hi: f64) -> VarId {
        assert!(!lo.is_nan() && !hi.is_nan(), "variable bound is NaN");
        assert!(lo <= hi, "invalid bounds [{lo}, {hi}] for variable {name}");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.to_string(),
            lo,
            hi,
        });
        self.objective.push(0.0);
        id
    }

    /// Updates the bounds of an existing variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVar`], [`LpError::InvalidBounds`] or
    /// [`LpError::NotANumber`] on bad input.
    pub fn set_bounds(&mut self, var: VarId, lo: f64, hi: f64) -> Result<(), LpError> {
        if var.0 >= self.vars.len() {
            return Err(LpError::UnknownVar {
                var,
                model_vars: self.vars.len(),
            });
        }
        if lo.is_nan() || hi.is_nan() {
            return Err(LpError::NotANumber);
        }
        if lo > hi {
            return Err(LpError::InvalidBounds { var, lo, hi });
        }
        self.vars[var.0].lo = lo;
        self.vars[var.0].hi = hi;
        Ok(())
    }

    /// Returns the bounds `(lo, hi)` of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.0];
        (v.lo, v.hi)
    }

    /// Returns the name of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Sets the objective coefficients; variables not mentioned keep
    /// coefficient `0`. Later calls overwrite earlier ones entirely.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is unknown or a coefficient is NaN.
    pub fn set_objective(&mut self, coeffs: &[(VarId, f64)]) {
        for c in &mut self.objective {
            *c = 0.0;
        }
        for &(v, c) in coeffs {
            assert!(v.0 < self.vars.len(), "unknown variable in objective");
            assert!(!c.is_nan(), "NaN objective coefficient");
            self.objective[v.0] = c;
        }
    }

    /// Adds one objective coefficient (accumulating onto any existing value).
    ///
    /// # Panics
    ///
    /// Panics if the variable is unknown or the coefficient is NaN.
    pub fn add_objective_term(&mut self, var: VarId, coeff: f64) {
        assert!(var.0 < self.vars.len(), "unknown variable in objective");
        assert!(!coeff.is_nan(), "NaN objective coefficient");
        self.objective[var.0] += coeff;
    }

    /// Adds a constraint row `Σ coeffs {≤,=,≥} rhs` and returns its handle.
    ///
    /// Duplicate variable entries are summed.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVar`] or [`LpError::NotANumber`] on bad input.
    pub fn add_row(
        &mut self,
        name: &str,
        coeffs: &[(VarId, f64)],
        kind: RowKind,
        rhs: f64,
    ) -> Result<RowId, LpError> {
        if rhs.is_nan() {
            return Err(LpError::NotANumber);
        }
        let mut acc: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(v, c) in coeffs {
            if v.0 >= self.vars.len() {
                return Err(LpError::UnknownVar {
                    var: v,
                    model_vars: self.vars.len(),
                });
            }
            if c.is_nan() {
                return Err(LpError::NotANumber);
            }
            match acc.iter_mut().find(|(idx, _)| *idx == v.0) {
                Some((_, existing)) => *existing += c,
                None => acc.push((v.0, c)),
            }
        }
        let id = RowId(self.rows.len());
        self.rows.push(RowDef {
            name: name.to_string(),
            coeffs: acc,
            kind,
            rhs,
        });
        Ok(id)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.objective[var.0]
    }

    /// Evaluates the objective at a point given as a slice indexed by
    /// variable position.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "point has wrong dimension");
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol` (bounds and
    /// all rows).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.num_vars(), "point has wrong dimension");
        for (v, &xv) in self.vars.iter().zip(x) {
            if xv < v.lo - tol || xv > v.hi + tol {
                return false;
            }
        }
        for row in &self.rows {
            let lhs: f64 = row.coeffs.iter().map(|&(j, c)| c * x[j]).sum();
            let ok = match row.kind {
                RowKind::Le => lhs <= row.rhs + tol,
                RowKind::Ge => lhs >= row.rhs - tol,
                RowKind::Eq => (lhs - row.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for LpModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} LP: {} vars, {} rows",
            match self.sense {
                Sense::Minimize => "min",
                Sense::Maximize => "max",
            },
            self.num_vars(),
            self.num_rows()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_and_bounds_roundtrip() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", -2.0, 5.0);
        assert_eq!(m.bounds(x), (-2.0, 5.0));
        assert_eq!(m.var_name(x), "x");
        m.set_bounds(x, 0.0, 1.0).unwrap();
        assert_eq!(m.bounds(x), (0.0, 1.0));
    }

    #[test]
    fn set_bounds_validates() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        assert!(matches!(
            m.set_bounds(x, 2.0, 1.0),
            Err(LpError::InvalidBounds { .. })
        ));
        assert!(matches!(
            m.set_bounds(VarId(99), 0.0, 1.0),
            Err(LpError::UnknownVar { .. })
        ));
        assert_eq!(m.set_bounds(x, f64::NAN, 1.0), Err(LpError::NotANumber));
    }

    #[test]
    fn add_row_merges_duplicate_vars() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        let r = m
            .add_row("r", &[(x, 1.0), (x, 2.0)], RowKind::Le, 3.0)
            .unwrap();
        assert_eq!(r.index(), 0);
        assert_eq!(m.rows[0].coeffs, vec![(0, 3.0)]);
    }

    #[test]
    fn add_row_rejects_unknown_var_and_nan() {
        let mut m = LpModel::new(Sense::Minimize);
        let _x = m.add_var("x", 0.0, 1.0);
        assert!(m
            .add_row("bad", &[(VarId(3), 1.0)], RowKind::Le, 0.0)
            .is_err());
        let x = VarId(0);
        assert!(m.add_row("nan", &[(x, f64::NAN)], RowKind::Le, 0.0).is_err());
        assert!(m.add_row("nan2", &[(x, 1.0)], RowKind::Le, f64::NAN).is_err());
    }

    #[test]
    fn objective_set_overwrites_and_term_accumulates() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        m.set_objective(&[(x, 1.0), (y, 2.0)]);
        m.set_objective(&[(y, 5.0)]);
        assert_eq!(m.objective_coeff(x), 0.0);
        assert_eq!(m.objective_coeff(y), 5.0);
        m.add_objective_term(y, 1.0);
        assert_eq!(m.objective_coeff(y), 6.0);
    }

    #[test]
    fn feasibility_check_covers_rows_and_bounds() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        m.add_row("r1", &[(x, 1.0), (y, 1.0)], RowKind::Le, 5.0)
            .unwrap();
        m.add_row("r2", &[(x, 1.0)], RowKind::Ge, 1.0).unwrap();
        assert!(m.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!m.is_feasible(&[0.0, 2.0], 1e-9)); // violates r2
        assert!(!m.is_feasible(&[4.0, 4.0], 1e-9)); // violates r1
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // violates bound
    }

    #[test]
    fn eval_objective() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        m.set_objective(&[(x, 2.0), (y, -1.0)]);
        assert_eq!(m.eval_objective(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn display_mentions_counts() {
        let mut m = LpModel::new(Sense::Maximize);
        m.add_var("x", 0.0, 1.0);
        assert!(m.to_string().contains("1 vars"));
    }
}
