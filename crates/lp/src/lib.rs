//! Linear programming for the `certnn` workspace.
//!
//! This crate implements a bounded-variable, two-phase, revised primal
//! simplex solver from scratch. It is the substrate underneath
//! `certnn-milp`'s branch-and-bound, which in turn powers the MILP-based
//! neural-network verification of the paper's Table II.
//!
//! # Design
//!
//! * [`LpModel`] is a builder for problems of the form
//!   `opt cᵀx  s.t.  aᵢᵀx {≤,=,≥} bᵢ,  l ≤ x ≤ u` with per-variable bounds
//!   that may be infinite.
//! * [`Simplex`] converts the model to computational form (one slack per
//!   row, artificials where the slack basis is bound-infeasible), runs a
//!   phase-1/phase-2 bounded-variable simplex with an explicitly maintained
//!   dense basis inverse, Dantzig pricing and Bland's rule as anti-cycling
//!   fallback, and reports an exact [`LpSolution`].
//! * Branch-and-bound re-solves the same model under tightened variable
//!   bounds via [`Simplex::solve_with_bounds`], so bound changes never
//!   require rebuilding the model.
//!
//! # Example
//!
//! ```
//! use certnn_lp::{LpModel, RowKind, Sense, Simplex, LpStatus};
//!
//! # fn main() -> Result<(), certnn_lp::LpError> {
//! // max x + y  s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
//! let mut m = LpModel::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY);
//! let y = m.add_var("y", 0.0, f64::INFINITY);
//! m.set_objective(&[(x, 1.0), (y, 1.0)]);
//! m.add_row("c1", &[(x, 1.0), (y, 2.0)], RowKind::Le, 4.0)?;
//! m.add_row("c2", &[(x, 3.0), (y, 1.0)], RowKind::Le, 6.0)?;
//! let sol = Simplex::new().solve(&m)?;
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 2.8).abs() < 1e-7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csc;
pub mod export;
mod model;
mod simplex;

pub use model::{LpModel, RowId, RowKind, Sense, VarId};
pub use simplex::{Simplex, SimplexOptions, WarmSolve, WarmStart};

use std::error::Error;
use std::fmt;

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

/// Result of an LP solve.
///
/// `x` and `duals` are meaningful only when `status` is
/// [`LpStatus::Optimal`]; for other statuses they hold the last iterate and
/// are useful for diagnostics only.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the model's own sense (maximisation objectives are
    /// reported as maxima).
    pub objective: f64,
    /// Primal values for the structural variables, indexed by [`VarId`].
    pub x: Vec<f64>,
    /// Dual values (simplex multipliers) per row, indexed by [`RowId`],
    /// reported for the model's own sense.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub iterations: usize,
}

impl LpSolution {
    /// Value of variable `v` in the solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }
}

/// Error raised while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A referenced variable does not belong to the model.
    UnknownVar {
        /// The offending variable id.
        var: VarId,
        /// Number of variables in the model.
        model_vars: usize,
    },
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// The offending variable id.
        var: VarId,
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// A coefficient, bound or right-hand side is NaN.
    NotANumber,
    /// A bounds override has the wrong length.
    BoundsLength {
        /// Provided length.
        got: usize,
        /// Expected length (number of model variables).
        expected: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVar { var, model_vars } => {
                write!(f, "variable {:?} out of range ({} vars)", var, model_vars)
            }
            LpError::InvalidBounds { var, lo, hi } => {
                write!(f, "invalid bounds [{lo}, {hi}] for {:?}", var)
            }
            LpError::NotANumber => f.write_str("NaN coefficient, bound or rhs"),
            LpError::BoundsLength { got, expected } => {
                write!(f, "bounds override has length {got}, expected {expected}")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
        assert_eq!(LpStatus::Infeasible.to_string(), "infeasible");
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            LpError::NotANumber,
            LpError::BoundsLength { got: 1, expected: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn types_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LpModel>();
        check::<LpSolution>();
        check::<LpError>();
    }
}
