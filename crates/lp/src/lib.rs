//! Linear programming for the `certnn` workspace.
//!
//! This crate implements a bounded-variable, two-phase, revised primal
//! simplex solver from scratch. It is the substrate underneath
//! `certnn-milp`'s branch-and-bound, which in turn powers the MILP-based
//! neural-network verification of the paper's Table II.
//!
//! # Design
//!
//! * [`LpModel`] is a builder for problems of the form
//!   `opt cᵀx  s.t.  aᵢᵀx {≤,=,≥} bᵢ,  l ≤ x ≤ u` with per-variable bounds
//!   that may be infinite.
//! * [`Simplex`] converts the model to computational form (one slack per
//!   row, artificials where the slack basis is bound-infeasible), runs a
//!   phase-1/phase-2 bounded-variable simplex over a factorized basis (LU
//!   with partial pivoting plus a capped product-form eta file), Dantzig
//!   pricing and Bland's rule as anti-cycling fallback, and reports an
//!   exact [`LpSolution`].
//! * Branch-and-bound re-solves the same model under tightened variable
//!   bounds via [`Simplex::solve_with_bounds`], so bound changes never
//!   require rebuilding the model.
//!
//! # Example
//!
//! ```
//! use certnn_lp::{LpModel, RowKind, Sense, Simplex, LpStatus};
//!
//! # fn main() -> Result<(), certnn_lp::LpError> {
//! // max x + y  s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
//! let mut m = LpModel::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY);
//! let y = m.add_var("y", 0.0, f64::INFINITY);
//! m.set_objective(&[(x, 1.0), (y, 1.0)]);
//! m.add_row("c1", &[(x, 1.0), (y, 2.0)], RowKind::Le, 4.0)?;
//! m.add_row("c2", &[(x, 3.0), (y, 1.0)], RowKind::Le, 6.0)?;
//! let sol = Simplex::new().solve(&m)?;
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 2.8).abs() < 1e-7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod csc;
mod deadline;
pub mod export;
mod factor;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod model;
mod obs;
mod simplex;

pub use deadline::Deadline;
pub use model::{LpModel, RowId, RowKind, Sense, VarId};
pub use simplex::{Simplex, SimplexOptions, WarmSolve, WarmStart};

use std::error::Error;
use std::fmt;

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
    /// A [`Deadline`] expired (or was cancelled) before convergence.
    Deadline,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit",
            LpStatus::Deadline => "deadline expired",
        };
        f.write_str(s)
    }
}

/// How far a reported result degraded from an exact solve.
///
/// Every layer of the stack (LP → MILP → neuron branch-and-bound →
/// verifier → fleet) reports the *worst* degradation it encountered, so a
/// consumer can tell an exact verdict from one that survived a numeric
/// fault or a deadline. Ordering follows severity: merging two levels
/// with [`Degradation::merge`] (or `max`) keeps the worse one.
///
/// Crucially, every level is still *sound*: a degraded bound is looser,
/// never wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Degradation {
    /// Fully converged solve; no fault or deadline interfered.
    #[default]
    Exact,
    /// A checkpoint resume was rejected (corruption, torn write, or a
    /// query-hash mismatch) and the solve restarted from scratch. The
    /// answer is as tight as an exact one — only the salvaged work was
    /// lost — but the rejected snapshot is worth surfacing.
    CheckpointFallback,
    /// A warm solve failed on a numeric fault (singular basis, NaN
    /// poisoning, corrupt snapshot) and a cold re-solve recovered. The
    /// result is as tight as an exact one but the fault is worth
    /// surfacing.
    ColdFallback,
    /// A subproblem fell back to interval arithmetic (or a subtree's LP
    /// relaxation bound was folded unexplored), loosening the bound.
    IntervalOnly,
    /// A deadline expired; the bound folds every unexplored subproblem
    /// conservatively.
    TimedOut,
}

impl Degradation {
    /// The worse (more degraded) of two levels.
    #[must_use]
    pub fn merge(self, other: Self) -> Self {
        self.max(other)
    }

    /// Stable machine-readable name, used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Degradation::Exact => "exact",
            Degradation::CheckpointFallback => "checkpoint_fallback",
            Degradation::ColdFallback => "cold_fallback",
            Degradation::IntervalOnly => "interval_only",
            Degradation::TimedOut => "timed_out",
        }
    }

    /// Parses the output of [`Degradation::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(Degradation::Exact),
            "checkpoint_fallback" => Some(Degradation::CheckpointFallback),
            "cold_fallback" => Some(Degradation::ColdFallback),
            "interval_only" => Some(Degradation::IntervalOnly),
            "timed_out" => Some(Degradation::TimedOut),
            _ => None,
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Result of an LP solve.
///
/// `x` and `duals` are meaningful only when `status` is
/// [`LpStatus::Optimal`]; for other statuses they hold the last iterate and
/// are useful for diagnostics only.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the model's own sense (maximisation objectives are
    /// reported as maxima).
    pub objective: f64,
    /// Primal values for the structural variables, indexed by [`VarId`].
    pub x: Vec<f64>,
    /// Dual values (simplex multipliers) per row, indexed by [`RowId`],
    /// reported for the model's own sense.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub iterations: usize,
}

impl LpSolution {
    /// Value of variable `v` in the solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }
}

/// A recoverable numeric failure inside a simplex solve.
///
/// These replace panics (and silent continuation) on conditions a caller
/// can recover from by climbing the retry ladder: warm solve → cold
/// re-solve → sound interval fallback. They are surfaced through
/// [`LpError::Solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveError {
    /// The basis matrix could not be (re)factorised: numerically singular.
    SingularBasis,
    /// A non-finite value (NaN/±Inf) appeared in the tableau.
    NumericalPoison,
    /// A warm-start snapshot is internally inconsistent (corrupt basis).
    StaleWarmStart,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveError::SingularBasis => "singular basis matrix",
            SolveError::NumericalPoison => "non-finite value in tableau",
            SolveError::StaleWarmStart => "corrupt warm-start snapshot",
        };
        f.write_str(s)
    }
}

impl Error for SolveError {}

/// Error raised while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A referenced variable does not belong to the model.
    UnknownVar {
        /// The offending variable id.
        var: VarId,
        /// Number of variables in the model.
        model_vars: usize,
    },
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// The offending variable id.
        var: VarId,
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// A coefficient, bound or right-hand side is NaN.
    NotANumber,
    /// A bounds override has the wrong length.
    BoundsLength {
        /// Provided length.
        got: usize,
        /// Expected length (number of model variables).
        expected: usize,
    },
    /// A recoverable numeric failure occurred during the solve itself.
    Solve(SolveError),
}

impl From<SolveError> for LpError {
    fn from(e: SolveError) -> Self {
        LpError::Solve(e)
    }
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVar { var, model_vars } => {
                write!(f, "variable {:?} out of range ({} vars)", var, model_vars)
            }
            LpError::InvalidBounds { var, lo, hi } => {
                write!(f, "invalid bounds [{lo}, {hi}] for {:?}", var)
            }
            LpError::NotANumber => f.write_str("NaN coefficient, bound or rhs"),
            LpError::BoundsLength { got, expected } => {
                write!(f, "bounds override has length {got}, expected {expected}")
            }
            LpError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl Error for LpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LpError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
        assert_eq!(LpStatus::Infeasible.to_string(), "infeasible");
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            LpError::NotANumber,
            LpError::BoundsLength { got: 1, expected: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn types_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LpModel>();
        check::<LpSolution>();
        check::<LpError>();
        check::<Deadline>();
        check::<Degradation>();
    }

    #[test]
    fn degradation_merge_keeps_the_worse_level() {
        use Degradation::*;
        assert_eq!(Exact.merge(ColdFallback), ColdFallback);
        assert_eq!(TimedOut.merge(IntervalOnly), TimedOut);
        assert_eq!(IntervalOnly.merge(ColdFallback), IntervalOnly);
        assert_eq!(Exact.merge(Exact), Exact);
        assert_eq!(Exact.merge(CheckpointFallback), CheckpointFallback);
        assert_eq!(CheckpointFallback.merge(ColdFallback), ColdFallback);
        assert_eq!(Degradation::default(), Exact);
    }

    #[test]
    fn degradation_round_trips_through_strings() {
        for d in [
            Degradation::Exact,
            Degradation::CheckpointFallback,
            Degradation::ColdFallback,
            Degradation::IntervalOnly,
            Degradation::TimedOut,
        ] {
            assert_eq!(Degradation::from_str_opt(d.as_str()), Some(d));
            assert_eq!(d.to_string(), d.as_str());
        }
        assert_eq!(Degradation::from_str_opt("bogus"), None);
    }

    #[test]
    fn solve_error_wraps_into_lp_error() {
        let e: LpError = SolveError::SingularBasis.into();
        assert_eq!(e, LpError::Solve(SolveError::SingularBasis));
        assert!(e.to_string().contains("singular"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
