//! Cached observability handles for the LP layer.
//!
//! All metric names live under `lp.*` (see DESIGN.md §Observability). The
//! full name set is registered on first touch so serial and parallel runs
//! expose identical metric names regardless of which code paths fire.

use std::sync::OnceLock;
use std::time::Instant;

use certnn_obs::{counter, histogram, Counter, Histogram};

/// Handles for every `lp.*` metric.
pub(crate) struct LpMetrics {
    /// Total simplex pivots (primal + dual), all solves.
    pub pivots: Counter,
    /// Solves completed on the warm (dual-restore) path.
    pub warm_solves: Counter,
    /// Cold two-phase solves (including warm fallbacks).
    pub cold_solves: Counter,
    /// Warm attempts that fell back to a cold solve.
    pub cold_fallbacks: Counter,
    /// Warm attempts declined up-front because the snapshot basis had too
    /// many bound violations (the stale-basis gate) — routine, distinct
    /// from singular-basis failures.
    pub stale_basis_bails: Counter,
    /// Warm attempts abandoned mid-walk (dual pivot budget or numeric
    /// stall), also routine.
    pub warm_budget_stalls: Counter,
    /// Basis refactorizations (LU from scratch): warm thaw misses, eta-cap
    /// hits, unstable pivots and drift resets.
    pub refactorizations: Counter,
    /// Cooperative deadline polls executed inside pivot loops.
    pub deadline_checks: Counter,
    /// Solves that terminated with `LpStatus::Deadline`.
    pub deadline_expired: Counter,
    /// Wall time of successful warm-path solves, nanoseconds.
    pub warm_solve_nanos: Histogram,
    /// Wall time of cold solves, nanoseconds.
    pub cold_solve_nanos: Histogram,
    /// Eta-chain length at each refactorization or solve end: how much
    /// product-form history a basis accumulated before being reset.
    pub eta_chain_len: Histogram,
}

pub(crate) fn lp_metrics() -> &'static LpMetrics {
    static M: OnceLock<LpMetrics> = OnceLock::new();
    M.get_or_init(|| LpMetrics {
        pivots: counter("lp.pivots"),
        warm_solves: counter("lp.warm_solves"),
        cold_solves: counter("lp.cold_solves"),
        cold_fallbacks: counter("lp.cold_fallbacks"),
        stale_basis_bails: counter("lp.stale_basis_bails"),
        warm_budget_stalls: counter("lp.warm_budget_stalls"),
        refactorizations: counter("lp.refactorizations"),
        deadline_checks: counter("lp.deadline_checks"),
        deadline_expired: counter("lp.deadline_expired"),
        warm_solve_nanos: histogram("lp.warm_solve_nanos"),
        cold_solve_nanos: histogram("lp.cold_solve_nanos"),
        eta_chain_len: histogram("lp.eta_chain_len"),
    })
}

/// Start a wall-clock timer only when observability is live, so disabled
/// runs never call `Instant::now`.
#[inline]
pub(crate) fn timer() -> Option<Instant> {
    certnn_obs::enabled().then(Instant::now)
}

/// Nanoseconds elapsed on a [`timer`], if one was started.
#[inline]
pub(crate) fn elapsed_ns(start: Option<Instant>) -> Option<u64> {
    start.map(|s| s.elapsed().as_nanos() as u64)
}
