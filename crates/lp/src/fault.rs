//! Deterministic fault injection for chaos testing (feature
//! `fault-inject`).
//!
//! The verifier is itself a safety-critical tool, so its failure paths
//! need the same test coverage as its happy paths. This module plants
//! seeded, reproducible faults inside the solve stack:
//!
//! * **NaN poisoning** — a basis-inverse entry is overwritten with NaN,
//!   exercising the [`SolveError::NumericalPoison`](crate::SolveError)
//!   detection and the cold-retry / interval-fallback ladder above it.
//! * **Forced singular bases** — a refactorisation is reported singular,
//!   exercising [`SolveError::SingularBasis`](crate::SolveError).
//! * **Worker panics** — branch-and-bound workers poll
//!   [`fire_panic`] and unwind, exercising `catch_unwind` isolation and
//!   poison-tolerant frontier locks in `certnn-verify`.
//! * **Artificial stalls** — pivot batches sleep, exercising
//!   [`Deadline`](crate::Deadline) expiry and `TimedOut` degradation.
//!
//! Faults are *counter-based*: each kind fires every `period`-th time its
//! hook is polled, process-wide. With a single solver thread the fault
//! schedule is fully deterministic for a given [`FaultPlan`]; with
//! several threads the interleaving varies but the fault *rate* does not,
//! which is what the chaos suite's soundness assertions rely on. The plan
//! is process-global, so concurrent tests must serialise through
//! [`serial_guard`].
//!
//! This module compiles only under the `fault-inject` feature; release
//! builds carry no hooks and are byte-identical to a fault-free build.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Fault schedule: per-kind firing periods (`0` = never fire).
///
/// A fault of a given kind fires on every `period`-th poll of its hook,
/// counted process-wide from the last [`install`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Poison a basis-inverse entry with NaN every this many polls.
    pub nan_period: u64,
    /// Report a refactorisation as singular every this many polls.
    pub singular_period: u64,
    /// Sleep [`FaultPlan::stall_millis`] every this many polls.
    pub stall_period: u64,
    /// Tell a branch-and-bound worker to panic every this many polls.
    pub panic_period: u64,
    /// Duration of an injected stall, in milliseconds.
    pub stall_millis: u64,
}

impl FaultPlan {
    /// Derives a full mixed-fault plan from a seed (LCG-expanded), for
    /// `--fault-inject <seed>` style chaos runs.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        Self {
            nan_period: 5 + next() % 23,
            singular_period: 7 + next() % 29,
            stall_period: 11 + next() % 37,
            panic_period: 3 + next() % 11,
            stall_millis: 1 + next() % 5,
        }
    }

    /// A plan firing only NaN poisoning, every `period` polls.
    pub fn nan_only(period: u64) -> Self {
        Self {
            nan_period: period,
            ..Self::default()
        }
    }

    /// A plan firing only forced singular bases, every `period` polls.
    pub fn singular_only(period: u64) -> Self {
        Self {
            singular_period: period,
            ..Self::default()
        }
    }

    /// A plan firing only worker panics, every `period` polls.
    pub fn panic_only(period: u64) -> Self {
        Self {
            panic_period: period,
            ..Self::default()
        }
    }

    /// A plan firing only stalls of `millis` ms, every `period` polls.
    pub fn stall_only(period: u64, millis: u64) -> Self {
        Self {
            stall_period: period,
            stall_millis: millis,
            ..Self::default()
        }
    }
}

struct Kind {
    period: AtomicU64,
    counter: AtomicU64,
}

impl Kind {
    const fn new() -> Self {
        Self {
            period: AtomicU64::new(0),
            counter: AtomicU64::new(0),
        }
    }

    fn arm(&self, period: u64) {
        self.period.store(period, Ordering::Relaxed);
        self.counter.store(0, Ordering::Relaxed);
    }

    fn fires(&self) -> bool {
        let p = self.period.load(Ordering::Relaxed);
        if p == 0 {
            return false;
        }
        self.counter.fetch_add(1, Ordering::Relaxed) % p == p - 1
    }
}

static NAN: Kind = Kind::new();
static SINGULAR: Kind = Kind::new();
static STALL: Kind = Kind::new();
static PANIC: Kind = Kind::new();
static STALL_MILLIS: AtomicU64 = AtomicU64::new(0);

/// Serialises chaos tests that reconfigure the process-global plan.
/// Poison-tolerant: a test that panicked mid-fault must not wedge the
/// rest of the suite.
static SERIAL: Mutex<()> = Mutex::new(());

/// Installs `plan` process-wide and resets all fault counters.
pub fn install(plan: FaultPlan) {
    NAN.arm(plan.nan_period);
    SINGULAR.arm(plan.singular_period);
    STALL.arm(plan.stall_period);
    PANIC.arm(plan.panic_period);
    STALL_MILLIS.store(plan.stall_millis, Ordering::Relaxed);
}

/// Disarms all faults.
pub fn clear() {
    install(FaultPlan::default());
}

/// Whether any fault kind is currently armed.
pub fn active() -> bool {
    [&NAN, &SINGULAR, &STALL, &PANIC]
        .iter()
        .any(|k| k.period.load(Ordering::Relaxed) != 0)
}

/// Locks the global fault configuration for the duration of a test.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Polled by the simplex at pivot batches: `true` means "poison the
/// basis inverse now".
pub fn fire_nan() -> bool {
    NAN.fires()
}

/// Polled around refactorisations: `true` means "report this basis as
/// singular".
pub fn fire_singular() -> bool {
    SINGULAR.fires()
}

/// Polled by branch-and-bound workers: `true` means "panic now".
pub fn fire_panic() -> bool {
    PANIC.fires()
}

/// Polled at pivot batches; sleeps for the plan's stall duration when
/// the stall fault fires.
pub fn maybe_stall() {
    if STALL.fires() {
        let ms = STALL_MILLIS.load(Ordering::Relaxed);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fires_on_schedule() {
        let _g = serial_guard();
        install(FaultPlan::nan_only(3));
        let fires: Vec<bool> = (0..9).map(|_| fire_nan()).collect();
        assert_eq!(
            fires,
            [false, false, true, false, false, true, false, false, true]
        );
        assert!(!fire_singular(), "other kinds stay disarmed");
        clear();
        assert!(!active());
        assert!((0..16).all(|_| !fire_nan()), "cleared plan never fires");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_armed() {
        let _g = serial_guard();
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43);
        assert_ne!(a, c);
        assert!(a.nan_period > 0 && a.panic_period > 0 && a.stall_millis > 0);
        install(a);
        assert!(active());
        clear();
    }
}
