//! Cooperative deadline / cancellation token threaded through the solve
//! stack.
//!
//! A [`Deadline`] is a cheap, clonable handle that every layer — fleet
//! runner, verifier, branch-and-bound, simplex — can poll between pivot
//! batches. It combines a wall-clock expiry with an explicit cancellation
//! flag, and supports *tightening*: a child deadline created by
//! [`Deadline::tighten`] expires when its own budget runs out **or** when
//! any ancestor expires or is cancelled, so a fleet-level abort propagates
//! into every nested sub-solve without extra plumbing.
//!
//! Expiry is always observed cooperatively: solvers that notice an expired
//! deadline stop early and report a *sound* (conservative) bound tagged
//! with a [`Degradation`](crate::Degradation) level — they never tear
//! threads down.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    /// Wall-clock expiry, if this link carries one.
    at: Option<Instant>,
    /// Explicit cancellation, observed by this link and all descendants.
    cancelled: AtomicBool,
    /// Parent link; expiry/cancellation there also expires this deadline.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(at) = self.at {
            if Instant::now() >= at {
                return true;
            }
        }
        match &self.parent {
            Some(p) => p.expired(),
            None => false,
        }
    }

    /// Tightest remaining budget along the chain, if any link carries one.
    fn remaining(&self) -> Option<Duration> {
        let now = Instant::now();
        let own = self.at.map(|at| at.saturating_duration_since(now));
        let up = self.parent.as_ref().and_then(|p| p.remaining());
        match (own, up) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A shared cancellation token with an optional wall-clock expiry.
///
/// The default value ([`Deadline::none`]) never expires and costs nothing
/// to poll, so solver hot loops can check unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Option<Arc<Inner>>,
}

impl Deadline {
    /// A deadline that never expires (and cannot be cancelled).
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// A deadline expiring `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self::at(Instant::now() + budget)
    }

    /// A deadline expiring at `at`.
    pub fn at(at: Instant) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                at: Some(at),
                cancelled: AtomicBool::new(false),
                parent: None,
            })),
        }
    }

    /// A cancellable deadline with no wall-clock expiry.
    pub fn cancellable() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                at: None,
                cancelled: AtomicBool::new(false),
                parent: None,
            })),
        }
    }

    /// Whether the deadline (or any ancestor) has expired or been
    /// cancelled.
    pub fn expired(&self) -> bool {
        match &self.inner {
            None => false,
            Some(i) => i.expired(),
        }
    }

    /// Cancels this deadline: every clone and every child created via
    /// [`Deadline::tighten`] observes expiry from now on. No-op on
    /// [`Deadline::none`].
    pub fn cancel(&self) {
        if let Some(i) = &self.inner {
            i.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Tightest remaining budget, or `None` when unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.as_ref().and_then(|i| i.remaining())
    }

    /// Derives a child deadline that additionally expires `budget` from
    /// now (when `budget` is `Some`). The child still observes expiry and
    /// cancellation of `self`, so nested time limits compose: the
    /// effective budget is the tightest along the chain.
    pub fn tighten(&self, budget: Option<Duration>) -> Self {
        match budget {
            None => self.clone(),
            Some(b) => Self {
                inner: Some(Arc::new(Inner {
                    at: Some(Instant::now() + b),
                    cancelled: AtomicBool::new(false),
                    parent: self.inner.clone(),
                })),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        d.cancel(); // no-op
        assert!(!d.expired());
        assert!(d.remaining().is_none());
    }

    #[test]
    fn elapsed_budget_expires() {
        let d = Deadline::after(Duration::from_secs(0));
        assert!(d.expired());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining().expect("bounded") <= Duration::from_secs(3600));
    }

    #[test]
    fn cancel_propagates_to_clones_and_children() {
        let root = Deadline::cancellable();
        let clone = root.clone();
        let child = root.tighten(Some(Duration::from_secs(3600)));
        assert!(!clone.expired() && !child.expired());
        root.cancel();
        assert!(clone.expired(), "clone observes cancellation");
        assert!(child.expired(), "tightened child observes cancellation");
    }

    #[test]
    fn tighten_takes_the_smaller_budget() {
        let root = Deadline::after(Duration::from_secs(3600));
        let child = root.tighten(Some(Duration::from_secs(0)));
        assert!(child.expired(), "child's own budget expired");
        assert!(!root.expired(), "parent unaffected by child expiry");
        let loose = root.tighten(None);
        assert!(!loose.expired());
    }

    #[test]
    fn remaining_is_tightest_along_chain() {
        let root = Deadline::after(Duration::from_secs(10));
        let child = root.tighten(Some(Duration::from_secs(3600)));
        let rem = child.remaining().expect("bounded");
        assert!(rem <= Duration::from_secs(10));
    }
}
