//! Bounded-variable two-phase revised primal simplex with an incremental
//! dual-simplex warm-start path for branch-and-bound re-solves.

// Indexed loops mirror the textbook pivot formulas; iterator adaptors
// obscure them without changing the generated code meaningfully.
#![allow(clippy::needless_range_loop)]

use crate::csc::ColMatrix;
use crate::deadline::Deadline;
use crate::factor::{basis_signature, BasisFactor, FrozenFactor};
use crate::model::{LpModel, RowKind, Sense};
use crate::obs::{elapsed_ns, lp_metrics, timer};
use crate::{LpError, LpSolution, LpStatus, SolveError};

/// Pivots between cooperative deadline polls. Small enough that even a
/// dense-pivot straggler notices expiry within a pivot batch, large
/// enough that the `Instant::now()` cost disappears in the pivot cost.
const DEADLINE_CHECK_EVERY: usize = 16;

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Pivot limit across both phases.
    pub max_iterations: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost (dual feasibility) tolerance.
    pub opt_tol: f64,
    /// Pivot-element magnitude below which a column is rejected.
    pub pivot_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub stall_limit: usize,
    /// Recompute basic values from scratch every this many pivots; a
    /// refresh whose drift exceeds `feas_tol` also refactorizes.
    pub refresh_every: usize,
    /// Product-form eta updates accumulated on a basis factorization
    /// before the next pivot forces a refactorization. Bounds both solve
    /// cost per `ftran`/`btran` and the drift an eta chain can build up.
    pub eta_cap: usize,
    /// Warm-start staleness gate: bail to a cold solve when more than
    /// this fraction of basic variables violate the new bounds (with a
    /// floor of one tolerated violation on tiny bases).
    pub warm_stale_frac: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 50_000,
            feas_tol: 1e-7,
            opt_tol: 1e-9,
            pivot_tol: 1e-10,
            stall_limit: 60,
            refresh_every: 128,
            eta_cap: 64,
            warm_stale_frac: 0.25,
        }
    }
}

/// A bounded-variable primal simplex solver.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Simplex {
    opts: SimplexOptions,
    deadline: Deadline,
}

/// Opaque snapshot of an optimal simplex basis, used to warm-start the
/// re-solve of the same model under changed variable bounds.
///
/// A snapshot taken at the parent of a branch-and-bound node stays *dual
/// feasible* for the children (costs and constraint matrix are unchanged;
/// only bounds move), so [`Simplex::solve_warm`] can restore primal
/// feasibility with a handful of dual-simplex pivots instead of a cold
/// two-phase run.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    basis: Vec<usize>,
    status: Vec<Status>,
    n_struct: usize,
    m: usize,
    /// Frozen basis factorization (LU + eta chain) so descendants patch
    /// the parent's representation instead of refactorizing O(m³).
    factor: Option<FrozenFactor>,
}

impl WarmStart {
    /// Number of constraint rows the snapshot was taken for.
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Number of structural variables the snapshot was taken for.
    pub fn num_structurals(&self) -> usize {
        self.n_struct
    }

    /// Serialized description of the basis: the basic column per row plus
    /// one status code per column (structurals then slacks), using the
    /// stable encoding `0 = basic, 1 = at lower, 2 = at upper,
    /// 3 = free at zero`. Used by checkpointing; the frozen factorization
    /// is deliberately absent — see [`WarmStart::from_description`].
    pub fn describe(&self) -> (Vec<u64>, Vec<u8>) {
        let basis = self.basis.iter().map(|&b| b as u64).collect();
        let status = self
            .status
            .iter()
            .map(|s| match s {
                Status::Basic => 0u8,
                Status::AtLower => 1,
                Status::AtUpper => 2,
                Status::FreeZero => 3,
            })
            .collect();
        (basis, status)
    }

    /// Rebuilds a snapshot from [`WarmStart::describe`] output.
    ///
    /// The factorization is *not* restored: the first warm solve seeded
    /// from the result refactorizes from the model's own constraint
    /// columns, so no numeric basis data is ever trusted from an external
    /// medium — only the combinatorial basis choice, which is fully
    /// re-validated here and again by `build_warm`. Returns `None` when
    /// the description is internally inconsistent (wrong lengths,
    /// out-of-range or duplicate basis entries, unknown status codes, or
    /// a basic/nonbasic disagreement between the two vectors).
    pub fn from_description(
        basis: &[u64],
        status: &[u8],
        n_struct: usize,
        m: usize,
    ) -> Option<WarmStart> {
        let n_total = n_struct.checked_add(m)?;
        if basis.len() != m || status.len() != n_total {
            return None;
        }
        let mut decoded = Vec::with_capacity(n_total);
        for &code in status {
            decoded.push(match code {
                0 => Status::Basic,
                1 => Status::AtLower,
                2 => Status::AtUpper,
                3 => Status::FreeZero,
                _ => return None,
            });
        }
        let mut in_basis = vec![false; n_total];
        for &b in basis {
            let j = usize::try_from(b).ok()?;
            if j >= n_total || in_basis[j] || decoded[j] != Status::Basic {
                return None;
            }
            in_basis[j] = true;
        }
        if decoded
            .iter()
            .enumerate()
            .any(|(j, &s)| (s == Status::Basic) != in_basis[j])
        {
            return None;
        }
        Some(WarmStart {
            basis: basis.iter().map(|&b| b as usize).collect(),
            status: decoded,
            n_struct,
            m,
            factor: None, // forces a fresh factorization on first use
        })
    }
}

/// Result of a warm-capable solve: the solution plus an optional basis
/// snapshot for seeding descendant solves.
#[derive(Debug, Clone)]
pub struct WarmSolve {
    /// The LP solution.
    pub solution: LpSolution,
    /// Snapshot of the optimal basis, when the solve ended optimal with a
    /// snapshot-able (artificial-free) basis.
    pub warm: Option<WarmStart>,
    /// Whether the solve actually started from the supplied basis (`false`
    /// when the warm path fell back to a cold two-phase run).
    pub warm_used: bool,
    /// The numeric failure that forced an *error-driven* cold fallback,
    /// when one occurred. Routine fallbacks (snapshot too stale, dual walk
    /// over budget, dimension mismatch) leave this `None`: they are normal
    /// warm-start operation, not degradation.
    pub fallback: Option<SolveError>,
}

impl Simplex {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(opts: SimplexOptions) -> Self {
        Self {
            opts,
            deadline: Deadline::none(),
        }
    }

    /// Attaches a cooperative [`Deadline`], polled between pivot batches.
    /// A solve that observes expiry returns [`LpStatus::Deadline`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    fn validate_bounds(model: &LpModel, bounds: &[(f64, f64)]) -> Result<(), LpError> {
        if bounds.len() != model.num_vars() {
            return Err(LpError::BoundsLength {
                got: bounds.len(),
                expected: model.num_vars(),
            });
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo.is_nan() || hi.is_nan() {
                return Err(LpError::NotANumber);
            }
            if lo > hi {
                return Err(LpError::InvalidBounds {
                    var: crate::VarId(i),
                    lo,
                    hi,
                });
            }
        }
        Ok(())
    }

    /// Solves the model with its own variable bounds.
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] if the model contains NaNs or inverted bounds.
    pub fn solve(&self, model: &LpModel) -> Result<LpSolution, LpError> {
        let bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lo, v.hi)).collect();
        self.solve_with_bounds(model, &bounds)
    }

    /// Solves the model with the structural variable bounds replaced by
    /// `bounds` (one `(lo, hi)` pair per variable, in [`VarId`] order).
    ///
    /// This is the entry point used by branch-and-bound: the constraint
    /// matrix is immutable across the tree, only bounds change.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::BoundsLength`] if `bounds.len()` differs from the
    /// number of model variables, other [`LpError`] variants for NaN or
    /// inverted bounds, or [`LpError::Solve`] on a recoverable numeric
    /// failure (singular basis, non-finite tableau values) during the
    /// solve itself.
    ///
    /// [`VarId`]: crate::VarId
    pub fn solve_with_bounds(
        &self,
        model: &LpModel,
        bounds: &[(f64, f64)],
    ) -> Result<LpSolution, LpError> {
        Self::validate_bounds(model, bounds)?;
        let _obs_phase = certnn_obs::phase(certnn_obs::Phase::LpCold);
        let start = timer();
        let mut t = Tableau::build(model, bounds, self.opts, self.deadline.clone());
        let result = t.run(model).map_err(LpError::Solve);
        record_cold_solve(start, t.iterations, t.factor.chain_len(), result.as_ref().ok());
        result
    }

    /// Cold-solves like [`Simplex::solve_with_bounds`] but additionally
    /// returns a [`WarmStart`] snapshot of the optimal basis (when one
    /// exists) for warm-starting descendant solves.
    ///
    /// # Errors
    ///
    /// Same as [`Simplex::solve_with_bounds`].
    pub fn solve_snapshot(
        &self,
        model: &LpModel,
        bounds: &[(f64, f64)],
    ) -> Result<WarmSolve, LpError> {
        Self::validate_bounds(model, bounds)?;
        let _obs_phase = certnn_obs::phase(certnn_obs::Phase::LpCold);
        let start = timer();
        let mut t = Tableau::build(model, bounds, self.opts, self.deadline.clone());
        let result = t.run(model).map_err(LpError::Solve);
        record_cold_solve(start, t.iterations, t.factor.chain_len(), result.as_ref().ok());
        let solution = result?;
        let warm = (solution.status == LpStatus::Optimal)
            .then(|| t.snapshot())
            .flatten();
        Ok(WarmSolve {
            solution,
            warm,
            warm_used: false,
            fallback: None,
        })
    }

    /// Re-solves the model under new `bounds` starting from a basis snapshot
    /// taken on a related solve (same model, different bounds).
    ///
    /// The snapshot basis is refactorized and, because only bounds changed,
    /// remains dual feasible; primal feasibility is restored by a
    /// bound-flipping dual simplex phase followed by a primal clean-up. On
    /// any mismatch — wrong dimensions, numerically singular basis, lost
    /// dual feasibility — the solver transparently falls back to a cold
    /// two-phase run (`warm_used == false` in the result).
    ///
    /// # Errors
    ///
    /// Same as [`Simplex::solve_with_bounds`].
    pub fn solve_warm(
        &self,
        model: &LpModel,
        bounds: &[(f64, f64)],
        warm: &WarmStart,
    ) -> Result<WarmSolve, LpError> {
        Self::validate_bounds(model, bounds)?;
        // First rung of the retry ladder: any numeric failure on the warm
        // path (corrupt snapshot, singular basis, NaN poisoning) falls
        // back to a cold two-phase run and is recorded in `fallback`;
        // routine stale-basis bails fall back silently as before.
        let mut fallback: Option<SolveError> = None;
        {
            let _obs_phase = certnn_obs::phase(certnn_obs::Phase::LpWarm);
            let start = timer();
            match Tableau::build_warm(model, bounds, self.opts, self.deadline.clone(), warm) {
                Ok(Some(mut t)) => match t.run_warm(model) {
                    Ok(Some(solution)) => {
                        record_warm_solve(start, t.iterations, t.factor.chain_len(), &solution);
                        let warm_out = (solution.status == LpStatus::Optimal)
                            .then(|| t.snapshot())
                            .flatten();
                        return Ok(WarmSolve {
                            solution,
                            warm: warm_out,
                            warm_used: true,
                            fallback: None,
                        });
                    }
                    Ok(None) => {}
                    Err(e) => fallback = Some(e),
                },
                Ok(None) => {}
                Err(e) => fallback = Some(e),
            }
        }
        lp_metrics().cold_fallbacks.inc();
        let mut ws = self.solve_snapshot(model, bounds)?;
        ws.fallback = fallback;
        Ok(ws)
    }
}

/// Record metrics for one cold (two-phase) solve. No-op unless the
/// observability layer was live when the solve started.
fn record_cold_solve(
    start: Option<std::time::Instant>,
    pivots: usize,
    chain_len: usize,
    sol: Option<&LpSolution>,
) {
    let Some(ns) = elapsed_ns(start) else { return };
    let m = lp_metrics();
    m.cold_solves.inc();
    m.pivots.add(pivots as u64);
    m.cold_solve_nanos.record(ns);
    m.eta_chain_len.record(chain_len as u64);
    if sol.map(|s| s.status) == Some(LpStatus::Deadline) {
        m.deadline_expired.inc();
    }
}

/// Record metrics for one successful warm-path solve.
fn record_warm_solve(
    start: Option<std::time::Instant>,
    pivots: usize,
    chain_len: usize,
    sol: &LpSolution,
) {
    let Some(ns) = elapsed_ns(start) else { return };
    let m = lp_metrics();
    m.warm_solves.inc();
    m.pivots.add(pivots as u64);
    m.warm_solve_nanos.record(ns);
    m.eta_chain_len.record(chain_len as u64);
    if sol.status == LpStatus::Deadline {
        m.deadline_expired.inc();
    }
}

/// Fault-injection consult kept at every site where the dense-inverse
/// kernel used to rebuild its inverse, so the chaos suite's forced
/// singular bases fire at the same cadence under the factorized kernel.
/// Compiles to `false` without the `fault-inject` feature.
fn singular_fault_fired() -> bool {
    #[cfg(feature = "fault-inject")]
    {
        crate::fault::fire_singular()
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        false
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic free variable pinned at zero.
    FreeZero,
}

/// Outcome of the dual-simplex feasibility-restoration phase.
enum DualOutcome {
    /// Primal feasibility restored; dual feasibility maintained throughout.
    Feasible,
    /// A dual ray was found: the primal problem is infeasible.
    Infeasible,
    /// Iteration cap or mild numerical trouble; caller should cold-solve.
    Stalled,
    /// Hard numeric failure (singular basis, non-finite values); the cold
    /// fallback is tagged with the cause.
    Error(SolveError),
}

/// Factorized-basis revised simplex working state.
struct Tableau {
    opts: SimplexOptions,
    m: usize,
    /// Total variables: structural + slacks + artificials.
    n_total: usize,
    n_struct: usize,
    /// Constraint columns in CSC form (structurals, slacks, artificials).
    cols: ColMatrix,
    lo: Vec<f64>,
    hi: Vec<f64>,
    rhs: Vec<f64>,
    /// Phase-2 cost (minimisation form).
    cost: Vec<f64>,
    /// Phase-1 cost (1 on artificials).
    cost1: Vec<f64>,
    status: Vec<Status>,
    /// Current value of every variable.
    x: Vec<f64>,
    /// basis[r] = variable occupying row r.
    basis: Vec<usize>,
    /// Basis factorization: LU core plus a capped product-form eta file.
    factor: BasisFactor,
    /// FTRAN scratch: the entering column's image `B⁻¹ a_q`.
    w: Vec<f64>,
    /// BTRAN scratch: the simplex multipliers `B⁻ᵀ c_B`.
    y: Vec<f64>,
    /// BTRAN scratch: the dual pivot row `B⁻ᵀ e_r`.
    rho: Vec<f64>,
    /// Residual scratch for [`Tableau::refresh_basics`].
    resid: Vec<f64>,
    /// Candidate buffer for the dual ratio test.
    cands: Vec<(usize, f64, f64)>,
    /// Bound-flip buffer for the dual ratio test.
    flips: Vec<usize>,
    iterations: usize,
    first_artificial: usize,
    deadline: Deadline,
}

impl Tableau {
    fn build(
        model: &LpModel,
        bounds: &[(f64, f64)],
        opts: SimplexOptions,
        deadline: Deadline,
    ) -> Self {
        let m = model.num_rows();
        let n_struct = model.num_vars();
        let mut cols =
            ColMatrix::from_row_major(n_struct, model.rows.iter().map(|r| r.coeffs.as_slice()));
        let mut lo: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut hi: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let rhs: Vec<f64> = model.rows.iter().map(|r| r.rhs).collect();

        // Slacks: row i gets variable n_struct + i with kind-dependent bounds.
        for (i, row) in model.rows.iter().enumerate() {
            cols.push_col([(i, 1.0)]);
            let (slo, shi) = match row.kind {
                RowKind::Le => (0.0, f64::INFINITY),
                RowKind::Ge => (f64::NEG_INFINITY, 0.0),
                RowKind::Eq => (0.0, 0.0),
            };
            lo.push(slo);
            hi.push(shi);
            debug_assert_eq!(cols.num_cols() - 1, n_struct + i);
        }

        // Initial nonbasic point: every structural variable at its finite
        // bound nearest zero, free variables at zero.
        let mut x = vec![0.0; n_struct + m];
        let mut status = vec![Status::AtLower; n_struct + m];
        for j in 0..n_struct {
            let (l, h) = (lo[j], hi[j]);
            let (v, s) = initial_point(l, h);
            x[j] = v;
            status[j] = s;
        }

        // Residuals decide whether each row's slack can start basic.
        let mut resid = rhs.clone();
        for j in 0..n_struct {
            if x[j] != 0.0 {
                for (i, c) in cols.col(j) {
                    resid[i] -= c * x[j];
                }
            }
        }

        let mut basis = Vec::with_capacity(m);
        let first_artificial = n_struct + m;
        let mut n_total = n_struct + m;
        for i in 0..m {
            let sj = n_struct + i;
            let r = resid[i];
            if r >= lo[sj] && r <= hi[sj] {
                x[sj] = r;
                status[sj] = Status::Basic;
                basis.push(sj);
            } else {
                // Clamp the slack to its nearest bound and cover the rest
                // with a fresh artificial of matching sign.
                let clamped = r.clamp(lo[sj], hi[sj]);
                // A slack with at least one finite bound clamps there; the
                // (impossible) doubly-infinite case would already be basic.
                x[sj] = clamped;
                status[sj] = if clamped == lo[sj] {
                    Status::AtLower
                } else {
                    Status::AtUpper
                };
                let leftover = r - clamped;
                let sigma = if leftover >= 0.0 { 1.0 } else { -1.0 };
                cols.push_col([(i, sigma)]);
                lo.push(0.0);
                hi.push(f64::INFINITY);
                let aj = n_total;
                n_total += 1;
                x.push(leftover.abs());
                status.push(Status::Basic);
                basis.push(aj);
            }
        }

        let mut cost = vec![0.0; n_total];
        let sense_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for j in 0..n_struct {
            cost[j] = sense_sign * model.objective[j];
        }
        let mut cost1 = vec![0.0; n_total];
        for c in cost1.iter_mut().take(n_total).skip(first_artificial) {
            *c = 1.0;
        }

        // The initial basis consists of slack/artificial unit columns with
        // entries ±1 (a signed diagonal), so it always factorizes.
        let factor =
            BasisFactor::factorize(&cols, &basis).expect("±1 diagonal start basis is nonsingular");

        Self {
            opts,
            m,
            n_total,
            n_struct,
            cols,
            lo,
            hi,
            rhs,
            cost,
            cost1,
            status,
            x,
            basis,
            factor,
            w: vec![0.0; m],
            y: vec![0.0; m],
            rho: Vec::new(),
            resid: Vec::with_capacity(m),
            cands: Vec::new(),
            flips: Vec::new(),
            iterations: 0,
            first_artificial,
            deadline,
        }
    }

    /// Rebuilds a tableau around a basis snapshot taken on a related solve.
    ///
    /// Returns `Ok(None)` when the snapshot does not fit the model
    /// (dimension mismatch — routine cross-model reuse), and `Err` when
    /// the snapshot is internally corrupt (duplicate/out-of-range basis
    /// entries) or its basis matrix is numerically singular — the caller
    /// then falls back to a cold solve, recording the cause. The warm
    /// tableau never carries artificials: the snapshot basis covers all
    /// rows by construction.
    fn build_warm(
        model: &LpModel,
        bounds: &[(f64, f64)],
        opts: SimplexOptions,
        deadline: Deadline,
        warm: &WarmStart,
    ) -> Result<Option<Self>, SolveError> {
        let m = model.num_rows();
        let n_struct = model.num_vars();
        let n_total = n_struct + m;
        if warm.m != m
            || warm.n_struct != n_struct
            || warm.basis.len() != m
            || warm.status.len() != n_total
        {
            return Ok(None);
        }
        let mut cols =
            ColMatrix::from_row_major(n_struct, model.rows.iter().map(|r| r.coeffs.as_slice()));
        let mut lo: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut hi: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let rhs: Vec<f64> = model.rows.iter().map(|r| r.rhs).collect();
        for (i, row) in model.rows.iter().enumerate() {
            cols.push_col([(i, 1.0)]);
            let (slo, shi) = match row.kind {
                RowKind::Le => (0.0, f64::INFINITY),
                RowKind::Ge => (f64::NEG_INFINITY, 0.0),
                RowKind::Eq => (0.0, 0.0),
            };
            lo.push(slo);
            hi.push(shi);
        }

        let mut in_basis = vec![false; n_total];
        for &bj in &warm.basis {
            if bj >= n_total || in_basis[bj] {
                return Err(SolveError::StaleWarmStart);
            }
            in_basis[bj] = true;
        }

        // Nonbasic statuses carry over, degraded where the new bounds made
        // them meaningless (e.g. AtLower with an infinite lower bound).
        let mut x = vec![0.0; n_total];
        let mut status = vec![Status::Basic; n_total];
        for j in 0..n_total {
            if in_basis[j] {
                continue; // value assigned by refresh_basics below
            }
            let (v, s) = match warm.status[j] {
                Status::AtLower if lo[j].is_finite() => (lo[j], Status::AtLower),
                Status::AtUpper if hi[j].is_finite() => (hi[j], Status::AtUpper),
                _ => initial_point(lo[j], hi[j]),
            };
            x[j] = v;
            status[j] = s;
        }

        let mut cost = vec![0.0; n_total];
        let sense_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for j in 0..n_struct {
            cost[j] = sense_sign * model.objective[j];
        }

        // Reuse the parent's frozen factorization when its signature
        // matches this model's basis columns; otherwise (cross-model
        // reuse, legacy snapshot) factorize from scratch — the one place
        // a genuinely singular warm basis surfaces.
        if singular_fault_fired() {
            return Err(SolveError::SingularBasis);
        }
        let sig = basis_signature(&cols, &warm.basis);
        let factor = match &warm.factor {
            Some(fz) if fz.sig() == sig && fz.num_rows() == m => BasisFactor::thaw(fz),
            _ => {
                lp_metrics().refactorizations.inc();
                BasisFactor::factorize(&cols, &warm.basis).ok_or(SolveError::SingularBasis)?
            }
        };

        let mut t = Self {
            opts,
            m,
            n_total,
            n_struct,
            cols,
            lo,
            hi,
            rhs,
            cost,
            cost1: vec![0.0; n_total],
            status,
            x,
            basis: warm.basis.clone(),
            factor,
            w: vec![0.0; m],
            y: vec![0.0; m],
            rho: Vec::new(),
            resid: Vec::with_capacity(m),
            cands: Vec::new(),
            flips: Vec::new(),
            iterations: 0,
            first_artificial: n_total,
            deadline,
        };
        t.refresh_basics();
        Ok(Some(t))
    }

    /// Captures the current basis for reuse by a related solve. Returns
    /// `None` while any artificial variable is still basic: such a basis
    /// cannot be re-expressed in a warm tableau (which carries none).
    fn snapshot(&self) -> Option<WarmStart> {
        let nb = self.n_struct + self.m;
        if self.basis.iter().any(|&b| b >= nb) {
            return None;
        }
        Some(WarmStart {
            basis: self.basis.clone(),
            status: self.status[..nb].to_vec(),
            n_struct: self.n_struct,
            m: self.m,
            factor: Some(
                self.factor
                    .freeze(basis_signature(&self.cols, &self.basis)),
            ),
        })
    }

    /// Computes `B⁻¹ a_q` for sparse column `q` into the `w` scratch.
    fn compute_ftran(&mut self, q: usize) {
        let w = &mut self.w;
        w.clear();
        w.resize(self.m, 0.0);
        for (i, c) in self.cols.col(q) {
            w[i] += c;
        }
        self.factor.ftran(w);
    }

    /// Computes the simplex multipliers `y = B⁻ᵀ c_B` into the `y`
    /// scratch, for the phase-1 or phase-2 cost.
    fn price_duals(&mut self, phase1: bool) {
        let y = &mut self.y;
        y.clear();
        y.resize(self.m, 0.0);
        for (r, &bj) in self.basis.iter().enumerate() {
            y[r] = if phase1 { self.cost1[bj] } else { self.cost[bj] };
        }
        self.factor.btran(y);
    }

    /// Reduced cost of column `j` against the multipliers in the `y`
    /// scratch ([`Tableau::price_duals`] must be current).
    fn reduced_cost(&self, j: usize, phase1: bool) -> f64 {
        let mut d = if phase1 { self.cost1[j] } else { self.cost[j] };
        for (i, c) in self.cols.col(j) {
            d -= self.y[i] * c;
        }
        d
    }

    /// Recomputes basic variable values from the nonbasic point; returns
    /// the largest correction applied to any basic (the accumulated
    /// iterate drift since the last refresh).
    fn refresh_basics(&mut self) -> f64 {
        let resid = &mut self.resid;
        resid.clear();
        resid.extend_from_slice(&self.rhs);
        for j in 0..self.n_total {
            if self.status[j] != Status::Basic && self.x[j] != 0.0 {
                for (i, c) in self.cols.col(j) {
                    resid[i] -= c * self.x[j];
                }
            }
        }
        self.factor.ftran(resid);
        let mut drift = 0.0f64;
        for r in 0..self.m {
            let b = self.basis[r];
            let new = self.resid[r];
            drift = drift.max((new - self.x[b]).abs());
            self.x[b] = new;
        }
        drift
    }

    /// Non-finite values anywhere in the iterate mean the tableau has been
    /// poisoned (overflow, NaN propagation); the solve must not report a
    /// bound computed from it.
    fn check_finite(&self) -> Result<(), SolveError> {
        if self.x.iter().any(|v| !v.is_finite()) {
            return Err(SolveError::NumericalPoison);
        }
        Ok(())
    }

    /// Final certificate behind every `Optimal` claim: the refreshed
    /// iterate must be primal feasible and the reduced costs must satisfy
    /// the optimality sign conditions. A poisoned run can silently skip
    /// pivots (NaN comparisons are all false) and stop at an arbitrary
    /// basis; without this check such a run would report a plausible but
    /// wrong optimum. Fixed variables (including frozen artificials) are
    /// exempt from the dual conditions, as in pricing.
    fn certify_optimal(&mut self) -> Result<(), SolveError> {
        if self.primal_infeasibility() > self.opts.feas_tol * 100.0 {
            return Err(SolveError::NumericalPoison);
        }
        self.price_duals(false);
        if self.y.iter().any(|v| !v.is_finite()) {
            return Err(SolveError::NumericalPoison);
        }
        let mut worst = 0.0f64;
        for j in 0..self.n_total {
            if self.status[j] == Status::Basic || self.hi[j] - self.lo[j] <= 0.0 {
                continue;
            }
            let d = self.reduced_cost(j, false);
            let v = match self.status[j] {
                Status::AtLower => -d,
                Status::AtUpper => d,
                Status::FreeZero => d.abs(),
                Status::Basic => continue,
            };
            worst = worst.max(v);
        }
        if worst > self.opts.opt_tol * 1000.0 {
            return Err(SolveError::NumericalPoison);
        }
        Ok(())
    }

    /// Fault-injection hook, polled once per pivot batch. Compiled out
    /// entirely without the `fault-inject` feature.
    #[cfg(feature = "fault-inject")]
    fn inject_faults(&mut self) {
        crate::fault::maybe_stall();
        if crate::fault::fire_nan() {
            self.factor.poison();
        }
    }

    /// Replaces the factorization (LU core + eta chain) with a fresh LU
    /// of the current basis columns.
    ///
    /// # Errors
    ///
    /// [`SolveError::SingularBasis`] when the basis matrix is numerically
    /// singular (or a forced singular fault fires under `fault-inject`).
    fn refactorize(&mut self) -> Result<(), SolveError> {
        if singular_fault_fired() {
            return Err(SolveError::SingularBasis);
        }
        let metrics = lp_metrics();
        metrics.refactorizations.inc();
        metrics.eta_chain_len.record(self.factor.chain_len() as u64);
        self.factor = BasisFactor::factorize(&self.cols, &self.basis)
            .ok_or(SolveError::SingularBasis)?;
        Ok(())
    }

    /// Periodic iterate hygiene, run every `refresh_every` pivots and at
    /// the end of each run: recompute the basics through the current
    /// factorization and, when the correction exceeds the feasibility
    /// tolerance (eta-chain drift), refactorize and recompute again.
    fn periodic_refresh(&mut self) -> Result<(), SolveError> {
        if singular_fault_fired() {
            return Err(SolveError::SingularBasis);
        }
        let drift = self.refresh_basics();
        if drift > self.opts.feas_tol {
            self.refactorize()?;
            self.refresh_basics();
        }
        Ok(())
    }

    /// Applies a pivot at basis position `r_leave` to the factorization:
    /// appends a product-form eta when the chain is short and the pivot
    /// element is stable, refactorizes otherwise. The caller must have
    /// already written the entering variable into `self.basis[r_leave]`
    /// and left the entering column's FTRAN image in the `w` scratch.
    fn apply_pivot(&mut self, r_leave: usize) -> Result<(), SolveError> {
        if !BasisFactor::pivot_stable(r_leave, &self.w)
            || self.factor.chain_len() >= self.opts.eta_cap
        {
            self.refactorize()
        } else {
            self.factor.push_eta(r_leave, &self.w);
            Ok(())
        }
    }

    /// Worst bound violation over the basic variables.
    fn primal_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for &bj in &self.basis {
            worst = worst
                .max(self.x[bj] - self.hi[bj])
                .max(self.lo[bj] - self.x[bj]);
        }
        worst
    }

    /// Worst reduced-cost sign violation over the nonbasic variables,
    /// against the multipliers in the `y` scratch.
    fn dual_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for j in 0..self.n_total {
            if self.status[j] == Status::Basic {
                continue;
            }
            let d = self.reduced_cost(j, false);
            let v = match self.status[j] {
                Status::AtLower => -d,
                Status::AtUpper => d,
                Status::FreeZero => d.abs(),
                Status::Basic => unreachable!("basic skipped above"),
            };
            worst = worst.max(v);
        }
        worst
    }

    /// Runs one simplex phase minimising `cost`. Returns `Ok(None)` on
    /// success (optimality reached), `Ok(Some(status))` on a terminal
    /// status, and `Err` on a numeric failure the caller can recover from
    /// by climbing the retry ladder.
    fn phase(&mut self, use_phase1: bool) -> Result<Option<LpStatus>, SolveError> {
        let mut stall = 0usize;
        loop {
            if self.iterations >= self.opts.max_iterations {
                return Ok(Some(LpStatus::IterationLimit));
            }
            if self.iterations.is_multiple_of(DEADLINE_CHECK_EVERY) {
                lp_metrics().deadline_checks.inc();
                if self.deadline.expired() {
                    return Ok(Some(LpStatus::Deadline));
                }
                self.check_finite()?;
            }
            #[cfg(feature = "fault-inject")]
            self.inject_faults();
            if self.iterations % self.opts.refresh_every == self.opts.refresh_every - 1 {
                self.periodic_refresh()?;
            }
            self.price_duals(use_phase1);

            let bland = stall >= self.opts.stall_limit;
            // Entering variable selection.
            let mut entering: Option<(usize, f64, f64)> = None; // (var, |d|, direction)
            for j in 0..self.n_total {
                match self.status[j] {
                    Status::Basic => continue,
                    Status::AtLower | Status::AtUpper | Status::FreeZero => {}
                }
                // Artificials must never re-enter once phase 1 is done.
                if !use_phase1 && j >= self.first_artificial {
                    continue;
                }
                let d = self.reduced_cost(j, use_phase1);
                let dir = match self.status[j] {
                    Status::AtLower if d < -self.opts.opt_tol => 1.0,
                    Status::AtUpper if d > self.opts.opt_tol => -1.0,
                    Status::FreeZero if d < -self.opts.opt_tol => 1.0,
                    Status::FreeZero if d > self.opts.opt_tol => -1.0,
                    _ => continue,
                };
                if bland {
                    entering = Some((j, d.abs(), dir));
                    break;
                }
                match entering {
                    Some((_, best, _)) if d.abs() <= best => {}
                    _ => entering = Some((j, d.abs(), dir)),
                }
            }
            let Some((q, _, sigma)) = entering else {
                // NaN reduced costs compare false and can hide improving
                // columns: a non-finite multiplier vector must never
                // masquerade as an optimality certificate.
                if self.y.iter().any(|v| !v.is_finite()) {
                    return Err(SolveError::NumericalPoison);
                }
                return Ok(None);
            };

            self.compute_ftran(q);

            // Ratio test: largest step t >= 0 keeping all basics in bounds,
            // also limited by the entering variable's own opposite bound.
            let own_span = self.hi[q] - self.lo[q];
            let mut t_limit = if own_span.is_finite() { own_span } else { f64::INFINITY };
            let mut leaving: Option<(usize, f64)> = None; // (row, |w_r|)
            let mut t_best = t_limit;
            for r in 0..self.m {
                let wr = self.w[r];
                if wr.abs() < self.opts.pivot_tol {
                    continue;
                }
                let bi = self.basis[r];
                let delta = -sigma * wr; // change of x[bi] per unit step
                let room = if delta > 0.0 {
                    (self.hi[bi] - self.x[bi]).max(0.0) / delta
                } else {
                    (self.lo[bi] - self.x[bi]).min(0.0) / delta
                };
                if !room.is_finite() {
                    continue;
                }
                let better = match leaving {
                    None => room < t_best - 1e-12,
                    Some((lr, lw)) => {
                        if bland {
                            room < t_best - 1e-12
                                || (room <= t_best + 1e-12 && self.basis[r] < self.basis[lr])
                        } else {
                            room < t_best - 1e-12 || (room <= t_best + 1e-12 && wr.abs() > lw)
                        }
                    }
                };
                if better {
                    t_best = room.min(t_best);
                    leaving = Some((r, wr.abs()));
                }
            }
            if leaving.is_none() && !t_limit.is_finite() {
                // No basic variable blocks and the entering variable has no
                // opposite bound: the problem is unbounded in this direction.
                // NaN ratios also land here (comparisons are all false), so
                // certify the column image before claiming unboundedness.
                if self.w.iter().any(|v| !v.is_finite()) {
                    return Err(SolveError::NumericalPoison);
                }
                return Ok(Some(LpStatus::Unbounded));
            }
            let t = match leaving {
                Some(_) => t_best.max(0.0),
                None => t_limit,
            };
            if t <= self.opts.feas_tol {
                stall += 1;
            } else {
                stall = 0;
            }

            if leaving.is_none() || (own_span.is_finite() && t >= own_span - 1e-12 && {
                // Bound flip wins only if strictly no basic hits earlier.
                match leaving {
                    Some(_) => t_best > own_span - 1e-12,
                    None => true,
                }
            }) {
                // Bound flip: q jumps to its opposite bound, basis unchanged.
                t_limit = own_span;
                let step = sigma * t_limit;
                self.x[q] += step;
                self.status[q] = match self.status[q] {
                    Status::AtLower => Status::AtUpper,
                    Status::AtUpper => Status::AtLower,
                    s => s,
                };
                for r in 0..self.m {
                    let bi = self.basis[r];
                    self.x[bi] -= self.w[r] * step;
                }
                self.iterations += 1;
                continue;
            }

            let (r_leave, _) = leaving.expect("pivot row exists");
            let step = sigma * t;
            // Update values.
            self.x[q] += step;
            for r in 0..self.m {
                let bi = self.basis[r];
                self.x[bi] -= self.w[r] * step;
            }
            // Leaving variable goes to the bound it hit.
            let b_leave = self.basis[r_leave];
            let delta_leave = -sigma * self.w[r_leave];
            self.status[b_leave] = if delta_leave > 0.0 {
                self.x[b_leave] = self.hi[b_leave];
                Status::AtUpper
            } else {
                self.x[b_leave] = self.lo[b_leave];
                Status::AtLower
            };
            self.basis[r_leave] = q;
            self.status[q] = Status::Basic;
            self.apply_pivot(r_leave)?;
            self.iterations += 1;
        }
    }

    /// Bound-flipping dual simplex: starting from a dual-feasible basis,
    /// drives out primal bound violations one leaving row at a time. Each
    /// iteration picks the most violated basic variable, prices the
    /// admissible entering columns against the pivot row (sparse scan,
    /// skipping zero entries), flips boxed candidates whose whole span is
    /// absorbed by the remaining violation, and pivots on the first
    /// candidate that can absorb the rest. Proves primal infeasibility when
    /// no admissible column exists — the fast path that lets child nodes of
    /// a branch-and-bound tree be pruned in a handful of pivots.
    fn dual_phase(&mut self) -> DualOutcome {
        let mut stall = 0usize;
        let mut bad_pivots = 0usize;
        loop {
            if self.iterations >= self.opts.max_iterations {
                return DualOutcome::Stalled;
            }
            if self.iterations.is_multiple_of(DEADLINE_CHECK_EVERY) {
                lp_metrics().deadline_checks.inc();
                if self.deadline.expired() {
                    // Let the cold fallback notice the deadline and report
                    // `LpStatus::Deadline` from a consistent state.
                    return DualOutcome::Stalled;
                }
                if self.check_finite().is_err() {
                    return DualOutcome::Error(SolveError::NumericalPoison);
                }
            }
            #[cfg(feature = "fault-inject")]
            self.inject_faults();
            if self.iterations % self.opts.refresh_every == self.opts.refresh_every - 1 {
                if let Err(e) = self.periodic_refresh() {
                    return DualOutcome::Error(e);
                }
            }

            // Leaving row: most violated basic variable.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, above upper)
            for r in 0..self.m {
                let b = self.basis[r];
                let above = self.x[b] - self.hi[b];
                let below = self.lo[b] - self.x[b];
                let (v, is_above) = if above >= below { (above, true) } else { (below, false) };
                if v > self.opts.feas_tol && leave.is_none_or(|(_, best, _)| v > best) {
                    leave = Some((r, v, is_above));
                }
            }
            let Some((r_leave, violation, above)) = leave else {
                return DualOutcome::Feasible;
            };
            let b_leave = self.basis[r_leave];

            self.price_duals(false);
            let bland = stall >= self.opts.stall_limit;

            // The dual pivot row in constraint-row space: ρ = B⁻ᵀ e_r,
            // one extra sparse solve replacing the dense inverse's free
            // row view.
            {
                let rho = &mut self.rho;
                rho.clear();
                rho.resize(self.m, 0.0);
                rho[r_leave] = 1.0;
                self.factor.btran(rho);
            }

            // Admissible entering candidates with their dual ratios
            // |d_j / α_j|, where α is the pivot row of B⁻¹A. A column is
            // admissible when moving it within its bounds decreases the
            // leaving variable's violation without breaking the sign
            // condition on any reduced cost.
            self.cands.clear(); // (var, ratio, alpha)
            for j in 0..self.n_total {
                if self.status[j] == Status::Basic {
                    continue;
                }
                if self.hi[j] - self.lo[j] <= 0.0 {
                    continue; // fixed variables can absorb nothing
                }
                let mut alpha = 0.0;
                for (i, c) in self.cols.col(j) {
                    alpha += self.rho[i] * c;
                }
                if alpha.abs() < self.opts.pivot_tol {
                    continue;
                }
                let admissible = match self.status[j] {
                    Status::AtLower => {
                        if above {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    Status::AtUpper => {
                        if above {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    Status::FreeZero => true,
                    Status::Basic => unreachable!("basic skipped above"),
                };
                if !admissible {
                    continue;
                }
                let d = self.reduced_cost(j, false);
                let mut ratio = d / alpha;
                if !above {
                    ratio = -ratio;
                }
                self.cands.push((j, ratio.max(0.0), alpha));
            }
            if self.cands.is_empty() {
                // Dual ray: every nonbasic variable already sits at its
                // violation-minimising bound, so no feasible point exists.
                // A poisoned pivot row (NaN alphas compare false) rejects
                // every column and would fake this certificate — verify
                // finiteness before claiming infeasibility.
                if self.rho.iter().any(|v| !v.is_finite()) || self.check_finite().is_err() {
                    return DualOutcome::Error(SolveError::NumericalPoison);
                }
                return DualOutcome::Infeasible;
            }

            // Bound-flipping ratio test: walk candidates in dual-ratio
            // order; a boxed candidate whose whole span still leaves
            // violation is flipped to its opposite bound, the first one
            // that can absorb the rest enters the basis.
            self.flips.clear();
            let mut entering: Option<(usize, f64)> = None; // (var, ratio)
            if bland {
                let &(j, ratio, _) = self
                    .cands
                    .iter()
                    .min_by_key(|c| c.0)
                    .expect("candidates nonempty");
                entering = Some((j, ratio));
            } else {
                self.cands.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                let mut remaining = violation;
                for ci in 0..self.cands.len() {
                    let (j, ratio, alpha) = self.cands[ci];
                    let span = self.hi[j] - self.lo[j];
                    let capacity = if span.is_finite() {
                        span * alpha.abs()
                    } else {
                        f64::INFINITY
                    };
                    if capacity < remaining - self.opts.feas_tol {
                        self.flips.push(j);
                        remaining -= capacity;
                    } else {
                        entering = Some((j, ratio));
                        break;
                    }
                }
            }
            let Some((q, ratio_q)) = entering else {
                // Flipping every admissible variable through its whole span
                // still leaves violation: no feasible point exists. Same
                // finiteness certificate as the empty-candidate ray above.
                if self.rho.iter().any(|v| !v.is_finite()) || self.check_finite().is_err() {
                    return DualOutcome::Error(SolveError::NumericalPoison);
                }
                return DualOutcome::Infeasible;
            };

            // Apply the accumulated bound flips.
            for fi in 0..self.flips.len() {
                let k = self.flips[fi];
                let span = self.hi[k] - self.lo[k];
                let step = match self.status[k] {
                    Status::AtLower => {
                        self.status[k] = Status::AtUpper;
                        self.x[k] = self.hi[k];
                        span
                    }
                    Status::AtUpper => {
                        self.status[k] = Status::AtLower;
                        self.x[k] = self.lo[k];
                        -span
                    }
                    // Free variables have infinite span and are never
                    // flipped; basics are excluded above.
                    _ => continue,
                };
                self.compute_ftran(k);
                for r in 0..self.m {
                    let bi = self.basis[r];
                    self.x[bi] -= self.w[r] * step;
                }
                self.iterations += 1;
            }

            // Pivot q into the leaving row.
            self.compute_ftran(q);
            let wr = self.w[r_leave];
            if wr.abs() < self.opts.pivot_tol {
                // The FTRAN image disagrees with the row scan; refactorize
                // and retry, giving up after a few attempts.
                bad_pivots += 1;
                if bad_pivots > 4 {
                    return DualOutcome::Stalled;
                }
                if let Err(e) = self.refactorize() {
                    return DualOutcome::Error(e);
                }
                self.refresh_basics();
                continue;
            }
            bad_pivots = 0;
            let target = if above {
                self.hi[b_leave]
            } else {
                self.lo[b_leave]
            };
            let delta = (self.x[b_leave] - target) / wr;
            self.x[q] += delta;
            for r in 0..self.m {
                let bi = self.basis[r];
                self.x[bi] -= self.w[r] * delta;
            }
            self.x[b_leave] = target;
            self.status[b_leave] = if above { Status::AtUpper } else { Status::AtLower };
            self.basis[r_leave] = q;
            self.status[q] = Status::Basic;
            if let Err(e) = self.apply_pivot(r_leave) {
                return DualOutcome::Error(e);
            }
            self.iterations += 1;
            // Degenerate dual steps (zero ratio) leave the reduced costs
            // unchanged and can cycle; count them towards Bland's rule.
            if ratio_q <= self.opts.opt_tol * 10.0 {
                stall += 1;
            } else {
                stall = 0;
            }
        }
    }

    /// Warm-start driver: restores primal feasibility with the dual
    /// simplex when the snapshot basis is dual feasible, then polishes
    /// with a primal phase-2 run. Returns `Ok(None)` whenever the
    /// incremental path cannot certify a result for routine reasons
    /// (snapshot too stale, pivot budget overrun) — the caller must
    /// cold-solve — and `Err` when a numeric failure poisoned the warm
    /// path, so the cold fallback can be tagged with the cause.
    fn run_warm(&mut self, model: &LpModel) -> Result<Option<LpSolution>, SolveError> {
        let sense_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        // Stale-basis guard: a snapshot with many violated basics predicts a
        // long dual walk that can end up costlier than a cold solve. Budget
        // the whole warm path (dual walk plus primal polish) relative to the
        // violation count; an overrun bails out (`Stalled`/`IterationLimit`
        // below) and the caller retries cold with the full budget, so the
        // wasted work per solve is bounded by this cap.
        let violated = (0..self.m)
            .filter(|&r| {
                let b = self.basis[r];
                self.x[b] > self.hi[b] + self.opts.feas_tol
                    || self.x[b] < self.lo[b] - self.opts.feas_tol
            })
            .count();
        // Too stale to bother: bail before spending any pivots. The floor
        // tolerates one violated basic on tiny bases (m small), where a
        // single violation is cheap to repair yet would otherwise
        // disqualify the warm path entirely.
        if violated as f64 > (self.m as f64 * self.opts.warm_stale_frac).max(1.0) {
            lp_metrics().stale_basis_bails.inc();
            return Ok(None);
        }
        let budget = self.m / 2 + 6 * violated + 20;
        self.opts.max_iterations = self.opts.max_iterations.min(budget);
        self.price_duals(false);
        let dual_inf = self.dual_infeasibility();
        if dual_inf <= self.opts.opt_tol * 100.0 {
            match self.dual_phase() {
                DualOutcome::Feasible => {}
                DualOutcome::Infeasible => {
                    return Ok(Some(self.finish(model, LpStatus::Infeasible, sense_sign)));
                }
                DualOutcome::Stalled => {
                    lp_metrics().warm_budget_stalls.inc();
                    return Ok(None);
                }
                DualOutcome::Error(e) => return Err(e),
            }
        } else if self.primal_infeasibility() > self.opts.feas_tol * 10.0 {
            // Neither dual nor primal feasible: the snapshot buys nothing,
            // let the cold two-phase run handle it.
            lp_metrics().stale_basis_bails.inc();
            return Ok(None);
        }
        let stat = match self.phase(false)? {
            // An iteration cap on the warm path is not a verdict; retry cold
            // with a fresh budget rather than reporting a truncated solve.
            Some(LpStatus::IterationLimit) => {
                lp_metrics().warm_budget_stalls.inc();
                return Ok(None);
            }
            Some(s) => s,
            None => LpStatus::Optimal,
        };
        self.periodic_refresh()?;
        self.check_finite()?;
        if stat == LpStatus::Optimal {
            self.certify_optimal()?;
        }
        Ok(Some(self.finish(model, stat, sense_sign)))
    }

    fn phase1_needed(&self) -> bool {
        self.n_total > self.first_artificial
    }

    fn phase1_objective(&self) -> f64 {
        (self.first_artificial..self.n_total)
            .map(|j| self.x[j])
            .sum()
    }

    fn run(&mut self, model: &LpModel) -> Result<LpSolution, SolveError> {
        let sense_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        if self.deadline.expired() {
            // Expired before the first pivot: report promptly so the cold
            // rung of a warm→cold retry does not burn the caller's budget.
            return Ok(self.finish(model, LpStatus::Deadline, sense_sign));
        }

        if self.phase1_needed() {
            if let Some(stat) = self.phase(true)? {
                return Ok(self.finish(model, stat, sense_sign));
            }
            self.periodic_refresh()?;
            if self.phase1_objective() > self.opts.feas_tol * 10.0 {
                return Ok(self.finish(model, LpStatus::Infeasible, sense_sign));
            }
            // Freeze artificials at zero for phase 2.
            for j in self.first_artificial..self.n_total {
                self.lo[j] = 0.0;
                self.hi[j] = 0.0;
                if self.status[j] != Status::Basic {
                    self.status[j] = Status::AtLower;
                    self.x[j] = 0.0;
                }
            }
        }

        let stat = match self.phase(false)? {
            Some(s) => s,
            None => LpStatus::Optimal,
        };
        self.periodic_refresh()?;
        self.check_finite()?;
        if stat == LpStatus::Optimal {
            self.certify_optimal()?;
        }
        Ok(self.finish(model, stat, sense_sign))
    }

    fn finish(&mut self, _model: &LpModel, status: LpStatus, sense_sign: f64) -> LpSolution {
        let x: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = sense_sign
            * self.cost[..self.n_struct]
                .iter()
                .zip(&x)
                .map(|(c, v)| c * v)
                .sum::<f64>();
        self.price_duals(false);
        let duals: Vec<f64> = self.y.iter().map(|v| sense_sign * v).collect();
        LpSolution {
            status,
            objective,
            x,
            duals,
            iterations: self.iterations,
        }
    }
}

/// Nonbasic starting value and status for bounds `[l, h]`.
fn initial_point(l: f64, h: f64) -> (f64, Status) {
    match (l.is_finite(), h.is_finite()) {
        (true, true) => {
            if l.abs() <= h.abs() {
                (l, Status::AtLower)
            } else {
                (h, Status::AtUpper)
            }
        }
        (true, false) => (l, Status::AtLower),
        (false, true) => (h, Status::AtUpper),
        (false, false) => (0.0, Status::FreeZero),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, RowKind, Sense};

    fn solve(m: &LpModel) -> LpSolution {
        Simplex::new().solve(m).expect("valid model")
    }

    #[test]
    fn classic_two_var_max() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), obj 36.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        m.add_row("r1", &[(x, 1.0)], RowKind::Le, 4.0).unwrap();
        m.add_row("r2", &[(y, 2.0)], RowKind::Le, 12.0).unwrap();
        m.add_row("r3", &[(x, 3.0), (y, 2.0)], RowKind::Le, 18.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y st x + y >= 4, x >= 1, y >= 0 => x=4? No: cost favors x.
        // At x+y=4 cheapest is all x: x=4,y=0 obj 8.
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 2.0), (y, 3.0)]);
        m.add_row("cover", &[(x, 1.0), (y, 1.0)], RowKind::Ge, 4.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 8.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 3, x - y = 0 => x=y=1, obj 2.
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_var("y", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        m.add_row("e1", &[(x, 1.0), (y, 2.0)], RowKind::Eq, 3.0)
            .unwrap();
        m.add_row("e2", &[(x, 1.0), (y, -1.0)], RowKind::Eq, 0.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.set_objective(&[(x, 1.0)]);
        m.add_row("lo", &[(x, 1.0)], RowKind::Ge, 2.0).unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 1.0)]);
        m.add_row("r", &[(x, -1.0)], RowKind::Le, 1.0).unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_variables_without_rows() {
        // Pure bound optimisation: max 2x - y with x in [0,3], y in [1,5].
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.0);
        let y = m.add_var("y", 1.0, 5.0);
        m.set_objective(&[(x, 2.0), (y, -1.0)]);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-7);
        assert!((s.value(x) - 3.0).abs() < 1e-9);
        assert!((s.value(y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y with x,y in [-5,5], x + y >= -3 => obj -3 on the line.
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, 5.0);
        let y = m.add_var("y", -5.0, 5.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        m.add_row("r", &[(x, 1.0), (y, 1.0)], RowKind::Ge, -3.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 3.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn free_variable_equality_solve() {
        // Free variables solving a linear system: z = 3x + 1, x = 2 => z = 7.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0);
        let z = m.add_var("z", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(&[(z, 1.0)]);
        m.add_row("def", &[(z, 1.0), (x, -3.0)], RowKind::Eq, 1.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.value(z) - 7.0).abs() < 1e-7);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        let z = m.add_var("z", 0.0, 10.0);
        m.set_objective(&[(x, 1.0), (y, 2.0), (z, 3.0)]);
        m.add_row("r1", &[(x, 1.0), (y, 1.0), (z, 1.0)], RowKind::Le, 10.0)
            .unwrap();
        m.add_row("r2", &[(y, 1.0), (z, -1.0)], RowKind::Ge, -2.0)
            .unwrap();
        m.add_row("r3", &[(x, 1.0), (z, 1.0)], RowKind::Eq, 6.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        for k in 1..=6 {
            m.add_row("r", &[(x, k as f64), (y, 1.0)], RowKind::Le, 0.0)
                .unwrap();
        }
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.objective.abs() < 1e-9);
    }

    #[test]
    fn solve_with_bounds_override() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective(&[(x, 1.0)]);
        let s = Simplex::new().solve_with_bounds(&m, &[(0.0, 4.0)]).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-9);
        assert!(Simplex::new().solve_with_bounds(&m, &[]).is_err());
        assert!(Simplex::new()
            .solve_with_bounds(&m, &[(1.0, 0.0)])
            .is_err());
    }

    #[test]
    fn duals_satisfy_strong_duality_on_le_problem() {
        // max cᵀx st Ax <= b, x >= 0: bᵀy == cᵀx at optimum.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 3.0), (y, 2.0)]);
        m.add_row("r1", &[(x, 1.0), (y, 1.0)], RowKind::Le, 4.0)
            .unwrap();
        m.add_row("r2", &[(x, 1.0), (y, 3.0)], RowKind::Le, 6.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        let dual_obj = 4.0 * -s.duals[0] + 6.0 * -s.duals[1];
        // For a maximisation solved as min(−c), y_min duals are reported
        // negated; strong duality: bᵀ|y| equals the primal objective.
        assert!(
            (dual_obj.abs() - s.objective).abs() < 1e-6,
            "dual {} primal {}",
            dual_obj,
            s.objective
        );
    }

    #[test]
    fn larger_random_like_instance_is_optimal_and_feasible() {
        // Deterministic pseudo-random LP with 12 vars / 8 rows.
        let mut m = LpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_var(&format!("v{i}"), 0.0, 3.0 + (i % 4) as f64))
            .collect();
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        m.set_objective(
            &vars
                .iter()
                .map(|&v| (v, next().abs() + 0.1))
                .collect::<Vec<_>>(),
        );
        for r in 0..8 {
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, 2.0 + r as f64 * 0.5)
                .unwrap();
        }
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.x, 1e-5));
    }

    /// A medium LP with box bounds, used by the warm-start tests below.
    fn branching_model() -> (LpModel, Vec<crate::VarId>) {
        let mut m = LpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(&format!("v{i}"), 0.0, 2.0 + i as f64 * 0.5))
            .collect();
        m.set_objective(
            &vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
        );
        m.add_row(
            "cap",
            &vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            RowKind::Le,
            7.0,
        )
        .unwrap();
        m.add_row(
            "mix",
            &[(vars[0], 2.0), (vars[2], -1.0), (vars[4], 1.0)],
            RowKind::Le,
            3.0,
        )
        .unwrap();
        m.add_row(
            "link",
            &[(vars[1], 1.0), (vars[3], 1.0), (vars[5], -1.0)],
            RowKind::Ge,
            -1.0,
        )
        .unwrap();
        (m, vars)
    }

    #[test]
    fn warm_resolve_matches_cold_after_bound_tightening() {
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> = (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let root = Simplex::new().solve_snapshot(&m, &base).unwrap();
        assert_eq!(root.solution.status, LpStatus::Optimal);
        let warm = root.warm.expect("optimal root has a snapshot");

        // Tighten one bound at a time, as branch-and-bound children do.
        for j in 0..m.num_vars() {
            for &(new_lo, new_hi) in &[(1.0, base[j].1), (base[j].0, 0.5)] {
                let mut child = base.clone();
                child[j] = (new_lo, new_hi);
                let cold = Simplex::new().solve_with_bounds(&m, &child).unwrap();
                let ws = Simplex::new().solve_warm(&m, &child, &warm).unwrap();
                assert_eq!(ws.solution.status, cold.status, "var {j}");
                if cold.status == LpStatus::Optimal {
                    assert!(
                        (ws.solution.objective - cold.objective).abs() < 1e-9,
                        "var {j}: warm {} cold {}",
                        ws.solution.objective,
                        cold.objective
                    );
                }
            }
        }
    }

    #[test]
    fn warm_resolve_takes_fewer_pivots_than_cold() {
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> = (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let root = Simplex::new().solve_snapshot(&m, &base).unwrap();
        let warm = root.warm.expect("snapshot");
        let mut child = base.clone();
        child[0] = (1.0, child[0].1);
        let cold = Simplex::new().solve_with_bounds(&m, &child).unwrap();
        let ws = Simplex::new().solve_warm(&m, &child, &warm).unwrap();
        assert!(ws.warm_used, "warm path should not fall back");
        assert!(
            ws.solution.iterations <= cold.iterations,
            "warm {} pivots, cold {}",
            ws.solution.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_detects_child_infeasibility() {
        // Root is feasible; forcing all variables high violates the cap row.
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> = (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let root = Simplex::new().solve_snapshot(&m, &base).unwrap();
        let warm = root.warm.expect("snapshot");
        let child: Vec<(f64, f64)> = base.iter().map(|&(_, hi)| (hi.max(2.0), hi.max(2.0))).collect();
        let cold = Simplex::new().solve_with_bounds(&m, &child).unwrap();
        assert_eq!(cold.status, LpStatus::Infeasible, "sanity: child infeasible");
        let ws = Simplex::new().solve_warm(&m, &child, &warm).unwrap();
        assert_eq!(ws.solution.status, LpStatus::Infeasible);
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_cold() {
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> = (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let warm = Simplex::new()
            .solve_snapshot(&m, &base)
            .unwrap()
            .warm
            .expect("snapshot");

        // A different model: the snapshot cannot apply, but the solve must
        // still succeed via the cold path.
        let mut other = LpModel::new(Sense::Maximize);
        let x = other.add_var("x", 0.0, 4.0);
        other.set_objective(&[(x, 1.0)]);
        let ws = Simplex::new().solve_warm(&other, &[(0.0, 4.0)], &warm).unwrap();
        assert!(!ws.warm_used);
        assert_eq!(ws.solution.status, LpStatus::Optimal);
        assert!((ws.solution.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_chain_across_successive_tightenings() {
        // Reuse each child's snapshot for the grandchild, as the B&B queue
        // does, and compare against cold solves at every step.
        let (m, _) = branching_model();
        let mut bounds: Vec<(f64, f64)> =
            (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let mut warm = Simplex::new()
            .solve_snapshot(&m, &bounds)
            .unwrap()
            .warm
            .expect("root snapshot");
        for j in 0..m.num_vars() {
            bounds[j] = (bounds[j].0, bounds[j].1.min(1.5));
            let cold = Simplex::new().solve_with_bounds(&m, &bounds).unwrap();
            let ws = Simplex::new().solve_warm(&m, &bounds, &warm).unwrap();
            assert_eq!(ws.solution.status, cold.status, "step {j}");
            if cold.status == LpStatus::Optimal {
                assert!(
                    (ws.solution.objective - cold.objective).abs() < 1e-9,
                    "step {j}: warm {} cold {}",
                    ws.solution.objective,
                    cold.objective
                );
            }
            if let Some(next) = ws.warm {
                warm = next;
            }
        }
    }

    #[test]
    fn warm_start_accessors_report_shape() {
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> = (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let warm = Simplex::new()
            .solve_snapshot(&m, &base)
            .unwrap()
            .warm
            .expect("snapshot");
        assert_eq!(warm.num_rows(), m.num_rows());
        assert_eq!(warm.num_structurals(), m.num_vars());
    }

    #[test]
    fn singular_warm_basis_surfaces_typed_error_and_recovers_cold() {
        // Two linearly dependent rows: basis {x, y} has matrix
        // [[1, 1], [2, 2]], which no factorization can invert. The warm
        // rung must fail with `SingularBasis` (not panic, not a silent
        // wrong answer) and the ladder must recover via the cold rung.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.0);
        let y = m.add_var("y", 0.0, 3.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        m.add_row("r1", &[(x, 1.0), (y, 1.0)], RowKind::Le, 4.0)
            .unwrap();
        m.add_row("r2", &[(x, 2.0), (y, 2.0)], RowKind::Le, 8.0)
            .unwrap();
        let warm = WarmStart {
            basis: vec![0, 1],
            status: vec![
                Status::Basic,
                Status::Basic,
                Status::AtLower,
                Status::AtLower,
            ],
            n_struct: 2,
            m: 2,
            factor: None, // forces a fresh factorization of the singular basis
        };
        let bounds = [(0.0, 3.0), (0.0, 3.0)];
        let ws = Simplex::new().solve_warm(&m, &bounds, &warm).unwrap();
        assert!(!ws.warm_used, "singular warm basis must fall back");
        assert_eq!(ws.fallback, Some(SolveError::SingularBasis));
        assert_eq!(ws.solution.status, LpStatus::Optimal);
        assert!((ws.solution.objective - 4.0).abs() < 1e-7);
    }

    #[test]
    fn snapshot_carries_a_reusable_factorization() {
        // The frozen factor must round-trip through a warm solve: same
        // model, same basis columns → the child thaws the parent's
        // factorization instead of rebuilding, and still agrees with a
        // cold solve bit-for-bit on the objective.
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> =
            (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let root = Simplex::new().solve_snapshot(&m, &base).unwrap();
        let warm = root.warm.expect("snapshot");
        assert!(
            warm.factor.is_some(),
            "optimal snapshot must carry a frozen factorization"
        );
        let mut child = base.clone();
        child[1] = (0.5, child[1].1);
        let cold = Simplex::new().solve_with_bounds(&m, &child).unwrap();
        let ws = Simplex::new().solve_warm(&m, &child, &warm).unwrap();
        assert!(ws.warm_used);
        assert!((ws.solution.objective - cold.objective).abs() < 1e-9);
        // Grandchild snapshot chains the factorization again.
        assert!(ws.warm.expect("child snapshot").factor.is_some());
    }

    #[test]
    fn options_default_eta_cap_and_stale_gate() {
        let o = SimplexOptions::default();
        assert!(o.eta_cap >= 8, "eta cap must allow a useful chain");
        assert!(
            o.warm_stale_frac > 0.0 && o.warm_stale_frac <= 1.0,
            "stale fraction is a fraction"
        );
    }

    #[test]
    fn warm_resolve_handles_fixed_variables() {
        // Branching often fixes a binary to 0 or 1 exactly; the dual ratio
        // test must not try to flip or enter a fixed column.
        let (m, _) = branching_model();
        let base: Vec<(f64, f64)> = (0..m.num_vars()).map(|i| m.bounds(crate::VarId(i))).collect();
        let warm = Simplex::new()
            .solve_snapshot(&m, &base)
            .unwrap()
            .warm
            .expect("snapshot");
        let mut child = base.clone();
        child[2] = (0.0, 0.0);
        child[5] = (1.0, 1.0);
        let cold = Simplex::new().solve_with_bounds(&m, &child).unwrap();
        let ws = Simplex::new().solve_warm(&m, &child, &warm).unwrap();
        assert_eq!(ws.solution.status, cold.status);
        if cold.status == LpStatus::Optimal {
            assert!((ws.solution.objective - cold.objective).abs() < 1e-9);
        }
    }
}
