//! Bounded-variable two-phase revised primal simplex.

// Indexed loops mirror the textbook pivot formulas; iterator adaptors
// obscure them without changing the generated code meaningfully.
#![allow(clippy::needless_range_loop)]

use crate::model::{LpModel, RowKind, Sense};
use crate::{LpError, LpSolution, LpStatus};

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Pivot limit across both phases.
    pub max_iterations: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost (dual feasibility) tolerance.
    pub opt_tol: f64,
    /// Pivot-element magnitude below which a column is rejected.
    pub pivot_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub stall_limit: usize,
    /// Recompute basic values from scratch every this many pivots.
    pub refresh_every: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 50_000,
            feas_tol: 1e-7,
            opt_tol: 1e-9,
            pivot_tol: 1e-10,
            stall_limit: 60,
            refresh_every: 128,
        }
    }
}

/// A bounded-variable primal simplex solver.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Simplex {
    opts: SimplexOptions,
}

impl Simplex {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(opts: SimplexOptions) -> Self {
        Self { opts }
    }

    /// Solves the model with its own variable bounds.
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] if the model contains NaNs or inverted bounds.
    pub fn solve(&self, model: &LpModel) -> Result<LpSolution, LpError> {
        let bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lo, v.hi)).collect();
        self.solve_with_bounds(model, &bounds)
    }

    /// Solves the model with the structural variable bounds replaced by
    /// `bounds` (one `(lo, hi)` pair per variable, in [`VarId`] order).
    ///
    /// This is the entry point used by branch-and-bound: the constraint
    /// matrix is immutable across the tree, only bounds change.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::BoundsLength`] if `bounds.len()` differs from the
    /// number of model variables, or other [`LpError`] variants for NaN or
    /// inverted bounds.
    ///
    /// [`VarId`]: crate::VarId
    pub fn solve_with_bounds(
        &self,
        model: &LpModel,
        bounds: &[(f64, f64)],
    ) -> Result<LpSolution, LpError> {
        if bounds.len() != model.num_vars() {
            return Err(LpError::BoundsLength {
                got: bounds.len(),
                expected: model.num_vars(),
            });
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo.is_nan() || hi.is_nan() {
                return Err(LpError::NotANumber);
            }
            if lo > hi {
                return Err(LpError::InvalidBounds {
                    var: crate::VarId(i),
                    lo,
                    hi,
                });
            }
        }
        let mut t = Tableau::build(model, bounds, self.opts);
        Ok(t.run(model))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic free variable pinned at zero.
    FreeZero,
}

/// Dense-inverse revised simplex working state.
struct Tableau {
    opts: SimplexOptions,
    m: usize,
    /// Total variables: structural + slacks + artificials.
    n_total: usize,
    n_struct: usize,
    /// Sparse columns: list of (row, coefficient).
    cols: Vec<Vec<(usize, f64)>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    rhs: Vec<f64>,
    /// Phase-2 cost (minimisation form).
    cost: Vec<f64>,
    /// Phase-1 cost (1 on artificials).
    cost1: Vec<f64>,
    status: Vec<Status>,
    /// Current value of every variable.
    x: Vec<f64>,
    /// basis[r] = variable occupying row r.
    basis: Vec<usize>,
    /// Dense basis inverse, row-major m×m.
    binv: Vec<f64>,
    iterations: usize,
    first_artificial: usize,
}

impl Tableau {
    fn build(model: &LpModel, bounds: &[(f64, f64)], opts: SimplexOptions) -> Self {
        let m = model.num_rows();
        let n_struct = model.num_vars();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        for (i, row) in model.rows.iter().enumerate() {
            for &(j, c) in &row.coeffs {
                if c != 0.0 {
                    cols[j].push((i, c));
                }
            }
        }
        let mut lo: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut hi: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let rhs: Vec<f64> = model.rows.iter().map(|r| r.rhs).collect();

        // Slacks: row i gets variable n_struct + i with kind-dependent bounds.
        for (i, row) in model.rows.iter().enumerate() {
            cols.push(vec![(i, 1.0)]);
            let (slo, shi) = match row.kind {
                RowKind::Le => (0.0, f64::INFINITY),
                RowKind::Ge => (f64::NEG_INFINITY, 0.0),
                RowKind::Eq => (0.0, 0.0),
            };
            lo.push(slo);
            hi.push(shi);
            debug_assert_eq!(cols.len() - 1, n_struct + i);
        }

        // Initial nonbasic point: every structural variable at its finite
        // bound nearest zero, free variables at zero.
        let mut x = vec![0.0; n_struct + m];
        let mut status = vec![Status::AtLower; n_struct + m];
        for j in 0..n_struct {
            let (l, h) = (lo[j], hi[j]);
            let (v, s) = initial_point(l, h);
            x[j] = v;
            status[j] = s;
        }

        // Residuals decide whether each row's slack can start basic.
        let mut resid = rhs.clone();
        for j in 0..n_struct {
            if x[j] != 0.0 {
                for &(i, c) in &cols[j] {
                    resid[i] -= c * x[j];
                }
            }
        }

        let mut basis = Vec::with_capacity(m);
        let first_artificial = n_struct + m;
        let mut n_total = n_struct + m;
        for i in 0..m {
            let sj = n_struct + i;
            let r = resid[i];
            if r >= lo[sj] && r <= hi[sj] {
                x[sj] = r;
                status[sj] = Status::Basic;
                basis.push(sj);
            } else {
                // Clamp the slack to its nearest bound and cover the rest
                // with a fresh artificial of matching sign.
                let clamped = r.clamp(lo[sj], hi[sj]);
                // A slack with at least one finite bound clamps there; the
                // (impossible) doubly-infinite case would already be basic.
                x[sj] = clamped;
                status[sj] = if clamped == lo[sj] {
                    Status::AtLower
                } else {
                    Status::AtUpper
                };
                let leftover = r - clamped;
                let sigma = if leftover >= 0.0 { 1.0 } else { -1.0 };
                cols.push(vec![(i, sigma)]);
                lo.push(0.0);
                hi.push(f64::INFINITY);
                let aj = n_total;
                n_total += 1;
                x.push(leftover.abs());
                status.push(Status::Basic);
                basis.push(aj);
            }
        }

        let mut cost = vec![0.0; n_total];
        let sense_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for j in 0..n_struct {
            cost[j] = sense_sign * model.objective[j];
        }
        let mut cost1 = vec![0.0; n_total];
        for c in cost1.iter_mut().take(n_total).skip(first_artificial) {
            *c = 1.0;
        }

        // The initial basis consists of slack/artificial unit columns with
        // entries ±1, so its inverse is diagonal with the same signs.
        let mut binv = vec![0.0; m * m];
        for (r, &bj) in basis.iter().enumerate() {
            let coef = cols[bj][0].1;
            binv[r * m + r] = 1.0 / coef;
        }

        Self {
            opts,
            m,
            n_total,
            n_struct,
            cols,
            lo,
            hi,
            rhs,
            cost,
            cost1,
            status,
            x,
            basis,
            binv,
            iterations: 0,
            first_artificial,
        }
    }

    /// `B⁻¹ · a_q` for a sparse column.
    fn ftran(&self, q: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for &(i, c) in &self.cols[q] {
            if c == 0.0 {
                continue;
            }
            for r in 0..self.m {
                w[r] += self.binv[r * self.m + i] * c;
            }
        }
        w
    }

    /// `y = c_Bᵀ · B⁻¹`.
    fn btran(&self, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (r, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            if cb == 0.0 {
                continue;
            }
            for i in 0..self.m {
                y[i] += cb * self.binv[r * self.m + i];
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64], cost: &[f64]) -> f64 {
        let mut d = cost[j];
        for &(i, c) in &self.cols[j] {
            d -= y[i] * c;
        }
        d
    }

    /// Recomputes basic variable values from the nonbasic point.
    fn refresh_basics(&mut self) {
        let mut resid = self.rhs.clone();
        for j in 0..self.n_total {
            if self.status[j] != Status::Basic && self.x[j] != 0.0 {
                for &(i, c) in &self.cols[j] {
                    resid[i] -= c * self.x[j];
                }
            }
        }
        for r in 0..self.m {
            let mut v = 0.0;
            for i in 0..self.m {
                v += self.binv[r * self.m + i] * resid[i];
            }
            self.x[self.basis[r]] = v;
        }
    }

    /// Rebuilds `binv` from the basis columns by Gauss-Jordan elimination
    /// with partial pivoting. Returns `false` if the basis matrix is
    /// numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        let mut a = vec![0.0; m * m]; // basis matrix, column r = a_{basis[r]}
        for (r, &bj) in self.basis.iter().enumerate() {
            for &(i, c) in &self.cols[bj] {
                a[i * m + r] = c;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut piv = col;
            let mut best = a[col * m + col].abs();
            for r in (col + 1)..m {
                let v = a[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for c in 0..m {
                    a.swap(col * m + c, piv * m + c);
                    inv.swap(col * m + c, piv * m + c);
                }
            }
            let d = a[col * m + col];
            for c in 0..m {
                a[col * m + c] /= d;
                inv[col * m + c] /= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    a[r * m + c] -= f * a[col * m + c];
                    inv[r * m + c] -= f * inv[col * m + c];
                }
            }
        }
        self.binv = inv;
        true
    }

    /// Runs one simplex phase minimising `cost`. Returns `None` on success
    /// (optimality reached) or a terminal status.
    fn phase(&mut self, use_phase1: bool) -> Option<LpStatus> {
        let mut stall = 0usize;
        loop {
            if self.iterations >= self.opts.max_iterations {
                return Some(LpStatus::IterationLimit);
            }
            if self.iterations % self.opts.refresh_every == self.opts.refresh_every - 1 {
                self.refactorize();
                self.refresh_basics();
            }
            let cost = if use_phase1 {
                self.cost1.clone()
            } else {
                self.cost.clone()
            };
            let y = self.btran(&cost);

            let bland = stall >= self.opts.stall_limit;
            // Entering variable selection.
            let mut entering: Option<(usize, f64, f64)> = None; // (var, |d|, direction)
            for j in 0..self.n_total {
                match self.status[j] {
                    Status::Basic => continue,
                    Status::AtLower | Status::AtUpper | Status::FreeZero => {}
                }
                // Artificials must never re-enter once phase 1 is done.
                if !use_phase1 && j >= self.first_artificial {
                    continue;
                }
                let d = self.reduced_cost(j, &y, &cost);
                let dir = match self.status[j] {
                    Status::AtLower if d < -self.opts.opt_tol => 1.0,
                    Status::AtUpper if d > self.opts.opt_tol => -1.0,
                    Status::FreeZero if d < -self.opts.opt_tol => 1.0,
                    Status::FreeZero if d > self.opts.opt_tol => -1.0,
                    _ => continue,
                };
                if bland {
                    entering = Some((j, d.abs(), dir));
                    break;
                }
                match entering {
                    Some((_, best, _)) if d.abs() <= best => {}
                    _ => entering = Some((j, d.abs(), dir)),
                }
            }
            let (q, _, sigma) = entering?;

            let w = self.ftran(q);

            // Ratio test: largest step t >= 0 keeping all basics in bounds,
            // also limited by the entering variable's own opposite bound.
            let own_span = self.hi[q] - self.lo[q];
            let mut t_limit = if own_span.is_finite() { own_span } else { f64::INFINITY };
            let mut leaving: Option<(usize, f64)> = None; // (row, |w_r|)
            let mut t_best = t_limit;
            for r in 0..self.m {
                let wr = w[r];
                if wr.abs() < self.opts.pivot_tol {
                    continue;
                }
                let bi = self.basis[r];
                let delta = -sigma * wr; // change of x[bi] per unit step
                let room = if delta > 0.0 {
                    (self.hi[bi] - self.x[bi]).max(0.0) / delta
                } else {
                    (self.lo[bi] - self.x[bi]).min(0.0) / delta
                };
                if !room.is_finite() {
                    continue;
                }
                let better = match leaving {
                    None => room < t_best - 1e-12,
                    Some((lr, lw)) => {
                        if bland {
                            room < t_best - 1e-12
                                || (room <= t_best + 1e-12 && self.basis[r] < self.basis[lr])
                        } else {
                            room < t_best - 1e-12 || (room <= t_best + 1e-12 && wr.abs() > lw)
                        }
                    }
                };
                if better {
                    t_best = room.min(t_best);
                    leaving = Some((r, wr.abs()));
                }
            }
            if leaving.is_none() && !t_limit.is_finite() {
                // No basic variable blocks and the entering variable has no
                // opposite bound: the problem is unbounded in this direction.
                return Some(LpStatus::Unbounded);
            }
            let t = match leaving {
                Some(_) => t_best.max(0.0),
                None => t_limit,
            };
            if t <= self.opts.feas_tol {
                stall += 1;
            } else {
                stall = 0;
            }

            if leaving.is_none() || (own_span.is_finite() && t >= own_span - 1e-12 && {
                // Bound flip wins only if strictly no basic hits earlier.
                match leaving {
                    Some(_) => t_best > own_span - 1e-12,
                    None => true,
                }
            }) {
                // Bound flip: q jumps to its opposite bound, basis unchanged.
                t_limit = own_span;
                let step = sigma * t_limit;
                self.x[q] += step;
                self.status[q] = match self.status[q] {
                    Status::AtLower => Status::AtUpper,
                    Status::AtUpper => Status::AtLower,
                    s => s,
                };
                for r in 0..self.m {
                    let bi = self.basis[r];
                    self.x[bi] -= w[r] * step;
                }
                self.iterations += 1;
                continue;
            }

            let (r_leave, _) = leaving.expect("pivot row exists");
            let step = sigma * t;
            // Update values.
            self.x[q] += step;
            for r in 0..self.m {
                let bi = self.basis[r];
                self.x[bi] -= w[r] * step;
            }
            // Leaving variable goes to the bound it hit.
            let b_leave = self.basis[r_leave];
            let delta_leave = -sigma * w[r_leave];
            self.status[b_leave] = if delta_leave > 0.0 {
                self.x[b_leave] = self.hi[b_leave];
                Status::AtUpper
            } else {
                self.x[b_leave] = self.lo[b_leave];
                Status::AtLower
            };
            // Basis inverse update (product form).
            let wr = w[r_leave];
            let mrow: Vec<f64> = (0..self.m)
                .map(|c| self.binv[r_leave * self.m + c] / wr)
                .collect();
            for r in 0..self.m {
                if r == r_leave {
                    continue;
                }
                let f = w[r];
                if f == 0.0 {
                    continue;
                }
                for c in 0..self.m {
                    self.binv[r * self.m + c] -= f * mrow[c];
                }
            }
            for c in 0..self.m {
                self.binv[r_leave * self.m + c] = mrow[c];
            }
            self.basis[r_leave] = q;
            self.status[q] = Status::Basic;
            self.iterations += 1;
        }
    }

    fn phase1_needed(&self) -> bool {
        self.n_total > self.first_artificial
    }

    fn phase1_objective(&self) -> f64 {
        (self.first_artificial..self.n_total)
            .map(|j| self.x[j])
            .sum()
    }

    fn run(&mut self, model: &LpModel) -> LpSolution {
        let sense_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        if self.phase1_needed() {
            if let Some(stat) = self.phase(true) {
                return self.finish(model, stat, sense_sign);
            }
            self.refactorize();
            self.refresh_basics();
            if self.phase1_objective() > self.opts.feas_tol * 10.0 {
                return self.finish(model, LpStatus::Infeasible, sense_sign);
            }
            // Freeze artificials at zero for phase 2.
            for j in self.first_artificial..self.n_total {
                self.lo[j] = 0.0;
                self.hi[j] = 0.0;
                if self.status[j] != Status::Basic {
                    self.status[j] = Status::AtLower;
                    self.x[j] = 0.0;
                }
            }
        }

        let stat = match self.phase(false) {
            Some(s) => s,
            None => LpStatus::Optimal,
        };
        self.refactorize();
        self.refresh_basics();
        self.finish(model, stat, sense_sign)
    }

    fn finish(&mut self, _model: &LpModel, status: LpStatus, sense_sign: f64) -> LpSolution {
        let x: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = sense_sign
            * self.cost[..self.n_struct]
                .iter()
                .zip(&x)
                .map(|(c, v)| c * v)
                .sum::<f64>();
        let y = self.btran(&self.cost.clone());
        let duals: Vec<f64> = y.iter().map(|v| sense_sign * v).collect();
        LpSolution {
            status,
            objective,
            x,
            duals,
            iterations: self.iterations,
        }
    }
}

/// Nonbasic starting value and status for bounds `[l, h]`.
fn initial_point(l: f64, h: f64) -> (f64, Status) {
    match (l.is_finite(), h.is_finite()) {
        (true, true) => {
            if l.abs() <= h.abs() {
                (l, Status::AtLower)
            } else {
                (h, Status::AtUpper)
            }
        }
        (true, false) => (l, Status::AtLower),
        (false, true) => (h, Status::AtUpper),
        (false, false) => (0.0, Status::FreeZero),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, RowKind, Sense};

    fn solve(m: &LpModel) -> LpSolution {
        Simplex::new().solve(m).expect("valid model")
    }

    #[test]
    fn classic_two_var_max() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), obj 36.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        m.add_row("r1", &[(x, 1.0)], RowKind::Le, 4.0).unwrap();
        m.add_row("r2", &[(y, 2.0)], RowKind::Le, 12.0).unwrap();
        m.add_row("r3", &[(x, 3.0), (y, 2.0)], RowKind::Le, 18.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y st x + y >= 4, x >= 1, y >= 0 => x=4? No: cost favors x.
        // At x+y=4 cheapest is all x: x=4,y=0 obj 8.
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 2.0), (y, 3.0)]);
        m.add_row("cover", &[(x, 1.0), (y, 1.0)], RowKind::Ge, 4.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 8.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 3, x - y = 0 => x=y=1, obj 2.
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_var("y", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        m.add_row("e1", &[(x, 1.0), (y, 2.0)], RowKind::Eq, 3.0)
            .unwrap();
        m.add_row("e2", &[(x, 1.0), (y, -1.0)], RowKind::Eq, 0.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.set_objective(&[(x, 1.0)]);
        m.add_row("lo", &[(x, 1.0)], RowKind::Ge, 2.0).unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 1.0)]);
        m.add_row("r", &[(x, -1.0)], RowKind::Le, 1.0).unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_variables_without_rows() {
        // Pure bound optimisation: max 2x - y with x in [0,3], y in [1,5].
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.0);
        let y = m.add_var("y", 1.0, 5.0);
        m.set_objective(&[(x, 2.0), (y, -1.0)]);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-7);
        assert!((s.value(x) - 3.0).abs() < 1e-9);
        assert!((s.value(y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y with x,y in [-5,5], x + y >= -3 => obj -3 on the line.
        let mut m = LpModel::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, 5.0);
        let y = m.add_var("y", -5.0, 5.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        m.add_row("r", &[(x, 1.0), (y, 1.0)], RowKind::Ge, -3.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 3.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn free_variable_equality_solve() {
        // Free variables solving a linear system: z = 3x + 1, x = 2 => z = 7.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0);
        let z = m.add_var("z", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(&[(z, 1.0)]);
        m.add_row("def", &[(z, 1.0), (x, -3.0)], RowKind::Eq, 1.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.value(z) - 7.0).abs() < 1e-7);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        let z = m.add_var("z", 0.0, 10.0);
        m.set_objective(&[(x, 1.0), (y, 2.0), (z, 3.0)]);
        m.add_row("r1", &[(x, 1.0), (y, 1.0), (z, 1.0)], RowKind::Le, 10.0)
            .unwrap();
        m.add_row("r2", &[(y, 1.0), (z, -1.0)], RowKind::Ge, -2.0)
            .unwrap();
        m.add_row("r3", &[(x, 1.0), (z, 1.0)], RowKind::Eq, 6.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        for k in 1..=6 {
            m.add_row("r", &[(x, k as f64), (y, 1.0)], RowKind::Le, 0.0)
                .unwrap();
        }
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.objective.abs() < 1e-9);
    }

    #[test]
    fn solve_with_bounds_override() {
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective(&[(x, 1.0)]);
        let s = Simplex::new().solve_with_bounds(&m, &[(0.0, 4.0)]).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-9);
        assert!(Simplex::new().solve_with_bounds(&m, &[]).is_err());
        assert!(Simplex::new()
            .solve_with_bounds(&m, &[(1.0, 0.0)])
            .is_err());
    }

    #[test]
    fn duals_satisfy_strong_duality_on_le_problem() {
        // max cᵀx st Ax <= b, x >= 0: bᵀy == cᵀx at optimum.
        let mut m = LpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(&[(x, 3.0), (y, 2.0)]);
        m.add_row("r1", &[(x, 1.0), (y, 1.0)], RowKind::Le, 4.0)
            .unwrap();
        m.add_row("r2", &[(x, 1.0), (y, 3.0)], RowKind::Le, 6.0)
            .unwrap();
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        let dual_obj = 4.0 * -s.duals[0] + 6.0 * -s.duals[1];
        // For a maximisation solved as min(−c), y_min duals are reported
        // negated; strong duality: bᵀ|y| equals the primal objective.
        assert!(
            (dual_obj.abs() - s.objective).abs() < 1e-6,
            "dual {} primal {}",
            dual_obj,
            s.objective
        );
    }

    #[test]
    fn larger_random_like_instance_is_optimal_and_feasible() {
        // Deterministic pseudo-random LP with 12 vars / 8 rows.
        let mut m = LpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_var(&format!("v{i}"), 0.0, 3.0 + (i % 4) as f64))
            .collect();
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        m.set_objective(
            &vars
                .iter()
                .map(|&v| (v, next().abs() + 0.1))
                .collect::<Vec<_>>(),
        );
        for r in 0..8 {
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, 2.0 + r as f64 * 0.5)
                .unwrap();
        }
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.x, 1e-5));
    }
}
