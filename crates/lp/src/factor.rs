//! Factorized basis representation for the revised simplex.
//!
//! Replaces the explicit dense `m×m` basis inverse with an LU
//! factorization of the basis (partial pivoting, L and U stored as
//! sparse columns) plus a *product-form eta file*: each pivot appends a
//! sparse eta vector instead of touching `O(m²)` inverse entries, and
//! `ftran`/`btran` become triangular solves against L, U and the eta
//! chain (kernels in [`certnn_linalg::kernels`]). The chain is capped —
//! the simplex refactorizes when it grows past `SimplexOptions::eta_cap`
//! or a pivot is numerically unstable — so solve cost stays bounded.
//!
//! The factorization is *shareable*: [`BasisFactor::freeze`] snapshots
//! the current representation behind `Arc`s, and a warm-started child
//! tableau thaws it instead of refactorizing `O(m³)` from scratch. A
//! 64-bit basis-column signature guards against reusing a frozen factor
//! for a different constraint matrix of the same shape.

use std::sync::Arc;

use certnn_linalg::kernels as lk;

use crate::csc::ColMatrix;

/// Absolute pivot magnitude below which a factorization step reports
/// the basis singular. Matches the dense Gauss–Jordan threshold this
/// module replaced.
const SINGULAR_TOL: f64 = 1e-12;

/// A pivot whose eta magnitude is smaller than this fraction of the
/// largest FTRAN-image entry is too unstable to append as an eta; the
/// caller refactorizes instead.
const ETA_STABILITY_TOL: f64 = 1e-8;

/// Sparse LU factorization of one basis matrix: `P·B = L·U` with L
/// unit-lower and U upper triangular, both stored as compressed sparse
/// columns (L strictly below the diagonal, U strictly above it with the
/// diagonal in `u_diag`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LuFactor {
    m: usize,
    /// Row permutation from partial pivoting: permuted position `k`
    /// reads original constraint row `p[k]`.
    p: Vec<usize>,
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
}

impl LuFactor {
    /// Factorizes the basis matrix whose column `r` is `cols` column
    /// `basis[r]`. Returns `None` when the matrix is numerically
    /// singular (a pivot below [`SINGULAR_TOL`]).
    fn factorize(cols: &ColMatrix, basis: &[usize]) -> Option<Self> {
        let m = basis.len();
        // Dense column-major working copy: the right-looking update is a
        // contiguous scaled-axpy per trailing column, which beats sparse
        // bookkeeping at the basis sizes the ReLU encodings produce.
        let mut a = vec![0.0f64; m * m];
        for (c, &bj) in basis.iter().enumerate() {
            for (i, v) in cols.col(bj) {
                a[c * m + i] = v;
            }
        }
        let mut p: Vec<usize> = (0..m).collect();
        for k in 0..m {
            // Partial pivot over rows k..m of column k.
            let mut piv = k;
            let mut best = a[k * m + k].abs();
            for r in (k + 1)..m {
                let v = a[k * m + r].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            // NaN pivots must land here too, so the comparison is written
            // to be false for NaN rather than negated.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(best >= SINGULAR_TOL) {
                return None;
            }
            if piv != k {
                p.swap(k, piv);
                for c in 0..m {
                    a.swap(c * m + k, c * m + piv);
                }
            }
            let d = a[k * m + k];
            for r in (k + 1)..m {
                a[k * m + r] /= d;
            }
            for j in (k + 1)..m {
                let f = a[j * m + k];
                if f != 0.0 {
                    let (head, tail) = a.split_at_mut(j * m);
                    let src = &head[k * m + k + 1..k * m + m];
                    let dst = &mut tail[k + 1..m];
                    lk::axpy(-f, src, dst);
                }
            }
        }
        // Slice the factored buffer into sparse column triangles.
        let mut l_ptr = Vec::with_capacity(m + 1);
        let mut l_rows = Vec::new();
        let mut l_vals = Vec::new();
        let mut u_ptr = Vec::with_capacity(m + 1);
        let mut u_rows = Vec::new();
        let mut u_vals = Vec::new();
        let mut u_diag = Vec::with_capacity(m);
        l_ptr.push(0);
        u_ptr.push(0);
        for k in 0..m {
            let col = &a[k * m..(k + 1) * m];
            for (r, &v) in col.iter().enumerate().take(k) {
                if v != 0.0 {
                    u_rows.push(r);
                    u_vals.push(v);
                }
            }
            u_diag.push(col[k]);
            for (r, &v) in col.iter().enumerate().skip(k + 1) {
                if v != 0.0 {
                    l_rows.push(r);
                    l_vals.push(v);
                }
            }
            l_ptr.push(l_rows.len());
            u_ptr.push(u_rows.len());
        }
        Some(Self {
            m,
            p,
            l_ptr,
            l_rows,
            l_vals,
            u_ptr,
            u_rows,
            u_vals,
            u_diag,
        })
    }

    /// `x := B⁻¹ x` where `x` enters in constraint-row space and leaves
    /// in basis-position space. `tmp` is caller-owned scratch.
    fn ftran(&self, x: &mut [f64], tmp: &mut Vec<f64>) {
        tmp.clear();
        tmp.extend(self.p.iter().map(|&orig| x[orig]));
        lk::solve_lower_unit(&self.l_ptr, &self.l_rows, &self.l_vals, tmp);
        lk::solve_upper(&self.u_ptr, &self.u_rows, &self.u_vals, &self.u_diag, tmp);
        x.copy_from_slice(tmp);
    }

    /// `x := B⁻ᵀ x` where `x` enters in basis-position space and leaves
    /// in constraint-row space. `tmp` is caller-owned scratch.
    fn btran(&self, x: &mut [f64], tmp: &mut Vec<f64>) {
        lk::solve_upper_transposed(&self.u_ptr, &self.u_rows, &self.u_vals, &self.u_diag, x);
        lk::solve_lower_unit_transposed(&self.l_ptr, &self.l_rows, &self.l_vals, x);
        tmp.clear();
        tmp.resize(self.m, 0.0);
        for (k, &orig) in self.p.iter().enumerate() {
            tmp[orig] = x[k];
        }
        x.copy_from_slice(tmp);
    }
}

/// One product-form eta: the pivot that replaced basis position `r`
/// with a column whose FTRAN image was `w`. Applying the inverse eta is
/// `O(nnz(w))`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Eta {
    r: usize,
    inv_pivot: f64,
    rows: Vec<usize>,
    vals: Vec<f64>,
}

impl Eta {
    fn from_image(r: usize, w: &[f64]) -> Self {
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if i != r && v != 0.0 {
                rows.push(i);
                vals.push(v);
            }
        }
        Self {
            r,
            inv_pivot: 1.0 / w[r],
            rows,
            vals,
        }
    }

    #[inline]
    fn ftran(&self, x: &mut [f64]) {
        let xr = x[self.r] * self.inv_pivot;
        x[self.r] = xr;
        if xr != 0.0 {
            lk::sparse_axpy(-xr, &self.rows, &self.vals, x);
        }
    }

    #[inline]
    fn btran(&self, x: &mut [f64]) {
        x[self.r] = (x[self.r] - lk::sparse_dot(&self.rows, &self.vals, x)) * self.inv_pivot;
    }
}

/// Frozen, shareable snapshot of a [`BasisFactor`]: the LU core and the
/// eta chain behind `Arc`s plus the basis-column signature. Stored in
/// `WarmStart` so child solves thaw the parent's factorization instead
/// of rebuilding it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FrozenFactor {
    lu: Arc<LuFactor>,
    etas: Arc<[Eta]>,
    sig: u64,
}

impl FrozenFactor {
    pub(crate) fn sig(&self) -> u64 {
        self.sig
    }

    pub(crate) fn num_rows(&self) -> usize {
        self.lu.m
    }
}

/// The live basis representation of one tableau: an `Arc`-shared LU
/// core, the frozen eta chain inherited from the parent solve, and the
/// tail of etas appended by this tableau's own pivots.
#[derive(Debug, Clone)]
pub(crate) struct BasisFactor {
    lu: Arc<LuFactor>,
    base: Arc<[Eta]>,
    tail: Vec<Eta>,
    tmp: Vec<f64>,
}

impl BasisFactor {
    /// Factorizes the basis from scratch; `None` if singular.
    pub(crate) fn factorize(cols: &ColMatrix, basis: &[usize]) -> Option<Self> {
        let lu = LuFactor::factorize(cols, basis)?;
        let m = lu.m;
        Some(Self {
            lu: Arc::new(lu),
            base: Arc::from(Vec::new()),
            tail: Vec::new(),
            tmp: Vec::with_capacity(m),
        })
    }

    /// Thaws a frozen parent factorization for a child tableau. The
    /// caller must have checked the signature against its own basis
    /// columns first.
    pub(crate) fn thaw(frozen: &FrozenFactor) -> Self {
        Self {
            lu: Arc::clone(&frozen.lu),
            base: Arc::clone(&frozen.etas),
            tail: Vec::new(),
            tmp: Vec::with_capacity(frozen.lu.m),
        }
    }

    /// Freezes the current representation for reuse by descendants. `sig`
    /// is the [`basis_signature`] of the basis the representation
    /// currently describes (the factorize-time basis composed with every
    /// eta appended since).
    pub(crate) fn freeze(&self, sig: u64) -> FrozenFactor {
        let etas = if self.tail.is_empty() {
            Arc::clone(&self.base)
        } else {
            let mut chain = Vec::with_capacity(self.base.len() + self.tail.len());
            chain.extend(self.base.iter().cloned());
            chain.extend(self.tail.iter().cloned());
            Arc::from(chain)
        };
        FrozenFactor {
            lu: Arc::clone(&self.lu),
            etas,
            sig,
        }
    }

    /// Combined eta-chain length (inherited + own pivots).
    pub(crate) fn chain_len(&self) -> usize {
        self.base.len() + self.tail.len()
    }

    /// `x := B⁻¹ x` (row space in, position space out), in place.
    pub(crate) fn ftran(&mut self, x: &mut [f64]) {
        self.lu.ftran(x, &mut self.tmp);
        for eta in self.base.iter() {
            eta.ftran(x);
        }
        for eta in &self.tail {
            eta.ftran(x);
        }
    }

    /// `x := B⁻ᵀ x` (position space in, row space out), in place.
    pub(crate) fn btran(&mut self, x: &mut [f64]) {
        for eta in self.tail.iter().rev() {
            eta.btran(x);
        }
        for eta in self.base.iter().rev() {
            eta.btran(x);
        }
        self.lu.btran(x, &mut self.tmp);
    }

    /// Whether the FTRAN image `w` supports a numerically stable eta at
    /// pivot position `r`. Unstable pivots must refactorize instead.
    pub(crate) fn pivot_stable(r: usize, w: &[f64]) -> bool {
        let wr = w[r].abs();
        if !wr.is_finite() || wr < SINGULAR_TOL {
            return false;
        }
        let max = w.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        wr >= ETA_STABILITY_TOL * max
    }

    /// Appends the eta for a pivot at position `r` with FTRAN image `w`.
    pub(crate) fn push_eta(&mut self, r: usize, w: &[f64]) {
        self.tail.push(Eta::from_image(r, w));
    }

    /// Fault-injection hook: poisons the representation so subsequent
    /// solves produce NaN, exercising the `NumericalPoison` detection.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn poison(&mut self) {
        self.tail.push(Eta {
            r: 0,
            inv_pivot: f64::NAN,
            rows: Vec::new(),
            vals: Vec::new(),
        });
    }
}

/// 64-bit FNV-1a fold of the basis columns (position, row, coefficient
/// bits). Two snapshots agree iff their basis matrices are entrywise
/// identical, up to the negligible 2⁻⁶⁴ collision chance; a mismatch
/// forces a fresh factorization, so a collision is the only way a stale
/// factor could be reused — and the optimality certificate still checks
/// the result against the true constraint columns downstream.
pub(crate) fn basis_signature(cols: &ColMatrix, basis: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |v: u64, h: &mut u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for (r, &bj) in basis.iter().enumerate() {
        mix(r as u64 ^ 0x9e37_79b9, &mut h);
        for (i, c) in cols.col(bj) {
            mix(i as u64, &mut h);
            mix(c.to_bits(), &mut h);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Dense Gauss–Jordan inverse used as the reference the factorized
    /// solves must agree with. Row-major `m×m`.
    fn dense_inverse(b: &[f64], m: usize) -> Option<Vec<f64>> {
        let mut a = b.to_vec();
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = a[col * m + col].abs();
            for r in (col + 1)..m {
                let v = a[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if piv != col {
                for c in 0..m {
                    a.swap(col * m + c, piv * m + c);
                    inv.swap(col * m + c, piv * m + c);
                }
            }
            let d = a[col * m + col];
            for c in 0..m {
                a[col * m + c] /= d;
                inv[col * m + c] /= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    a[r * m + c] -= f * a[col * m + c];
                    inv[r * m + c] -= f * inv[col * m + c];
                }
            }
        }
        Some(inv)
    }

    /// Builds a `ColMatrix` with `n` columns from a row-major dense
    /// `m×n` block, dropping exact zeros like the tableau does.
    fn col_matrix(dense: &[f64], m: usize, n: usize) -> ColMatrix {
        let rows: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|i| (0..n).map(|j| (j, dense[i * n + j])).collect())
            .collect();
        ColMatrix::from_row_major(n, rows.iter().map(|r| r.as_slice()))
    }

    /// Extracts the dense basis matrix (row-major) for `basis`.
    fn basis_matrix(cols: &ColMatrix, basis: &[usize], m: usize) -> Vec<f64> {
        let mut b = vec![0.0; m * m];
        for (r, &bj) in basis.iter().enumerate() {
            for (i, v) in cols.col(bj) {
                b[i * m + r] = v;
            }
        }
        b
    }

    fn mat_vec(a: &[f64], x: &[f64], m: usize) -> Vec<f64> {
        (0..m)
            .map(|i| (0..m).map(|j| a[i * m + j] * x[j]).sum())
            .collect()
    }

    fn vec_mat(x: &[f64], a: &[f64], m: usize) -> Vec<f64> {
        (0..m)
            .map(|j| (0..m).map(|i| x[i] * a[i * m + j]).sum())
            .collect()
    }

    fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g - w).abs() <= tol * (1.0 + w.abs()),
                "{what}: got {got:?}, want {want:?}"
            );
        }
    }

    /// A diagonally dominated dense matrix is always invertible, which
    /// keeps the property below about agreement, not singularity.
    fn dominated(vals: Vec<f64>, m: usize) -> Vec<f64> {
        let mut a = vals;
        for i in 0..m {
            a[i * m + i] += 4.0 * (1.0 + a[i * m + i].abs());
        }
        a
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn lu_eta_solves_agree_with_dense_inverse(
            m in 2usize..7,
            raw in prop::collection::vec(-2.0f64..2.0, 49),
            extra in prop::collection::vec(-2.0f64..2.0, 7),
            rhs in prop::collection::vec(-3.0f64..3.0, 7),
            pivot_col in 0usize..7,
        ) {
            // Columns 0..m form the basis; column m is the entering
            // column for the post-pivot check.
            let dense = dominated(raw[..m * m].to_vec(), m);
            let mut block = vec![0.0; m * (m + 1)];
            for i in 0..m {
                for j in 0..m {
                    block[i * (m + 1) + j] = dense[i * m + j];
                }
                block[i * (m + 1) + m] = extra[i];
            }
            let cols = col_matrix(&block, m, m + 1);
            let basis: Vec<usize> = (0..m).collect();
            let bmat = basis_matrix(&cols, &basis, m);
            let inv = dense_inverse(&bmat, m).expect("dominated basis is invertible");

            let mut f = BasisFactor::factorize(&cols, &basis).expect("factorizes");

            // FTRAN agrees with the dense inverse.
            let b = &rhs[..m];
            let mut x = b.to_vec();
            f.ftran(&mut x);
            assert_close(&x, &mat_vec(&inv, b, m), 1e-8, "ftran");

            // BTRAN agrees with the dense inverse.
            let mut y = b.to_vec();
            f.btran(&mut y);
            assert_close(&y, &vec_mat(b, &inv, m), 1e-8, "btran");

            // Pivot the extra column into a row chosen for stability,
            // append the eta, and compare against the dense inverse of
            // the *new* basis.
            let mut w = vec![0.0; m];
            for (i, v) in cols.col(m) {
                w[i] = v;
            }
            f.ftran(&mut w);
            let r = (0..m)
                .max_by(|&a, &b| w[a].abs().partial_cmp(&w[b].abs()).expect("finite"))
                .expect("nonempty");
            prop_assume!(BasisFactor::pivot_stable(r, &w));
            f.push_eta(r, &w);
            let mut basis2 = basis.clone();
            basis2[r] = m;
            let bmat2 = basis_matrix(&cols, &basis2, m);
            let inv2 = match dense_inverse(&bmat2, m) {
                Some(inv2) => inv2,
                None => return Ok(()), // new basis singular: nothing to compare
            };
            let mut x2 = b.to_vec();
            f.ftran(&mut x2);
            assert_close(&x2, &mat_vec(&inv2, b, m), 1e-6, "post-pivot ftran");
            let mut y2 = b.to_vec();
            f.btran(&mut y2);
            assert_close(&y2, &vec_mat(b, &inv2, m), 1e-6, "post-pivot btran");

            // Refactorizing the updated basis from scratch agrees too.
            let mut fresh =
                BasisFactor::factorize(&cols, &basis2).expect("updated basis factorizes");
            let mut x3 = b.to_vec();
            fresh.ftran(&mut x3);
            assert_close(&x3, &mat_vec(&inv2, b, m), 1e-8, "post-refactor ftran");
            let mut y3 = b.to_vec();
            fresh.btran(&mut y3);
            assert_close(&y3, &vec_mat(b, &inv2, m), 1e-8, "post-refactor btran");

            // Freeze/thaw round-trips the representation.
            let mut thawed = BasisFactor::thaw(&f.freeze(0));
            let mut x4 = b.to_vec();
            thawed.ftran(&mut x4);
            assert_close(&x4, &x2, 1e-12, "thawed ftran");
            let _ = pivot_col; // reserved for future multi-pivot variants
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        // Two identical columns: rank deficient.
        let dense = [1.0, 1.0, 2.0, 2.0];
        let cols = col_matrix(&dense, 2, 2);
        assert!(BasisFactor::factorize(&cols, &[0, 1]).is_none());
    }

    #[test]
    fn signature_distinguishes_bases_and_matrices() {
        let a = col_matrix(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = col_matrix(&[1.0, 2.0, 3.0, 5.0], 2, 2);
        assert_ne!(basis_signature(&a, &[0, 1]), basis_signature(&b, &[0, 1]));
        assert_ne!(basis_signature(&a, &[0, 1]), basis_signature(&a, &[1, 0]));
        assert_eq!(basis_signature(&a, &[0, 1]), basis_signature(&a, &[0, 1]));
    }

    #[test]
    fn permuted_factorization_round_trips() {
        // Forces row swaps: zero on the leading diagonal.
        let dense = [0.0, 2.0, 3.0, 1.0];
        let cols = col_matrix(&dense, 2, 2);
        let mut f = BasisFactor::factorize(&cols, &[0, 1]).expect("invertible");
        // B = [[0,2],[3,1]]; B · x = [2, 4] => x = [2/3·... ] solve directly:
        // 2·x2 = 2 => x2 = 1; 3·x1 + 1 = 4 => x1 = 1.
        let mut x = vec![2.0, 4.0];
        f.ftran(&mut x);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
        // Bᵀ y = c with c = [3, 3]: y1·0 + y2·3 = 3, y1·2 + y2·1 = 3 => y = [1, 1].
        let mut y = vec![3.0, 3.0];
        f.btran(&mut y);
        assert!((y[0] - 1.0).abs() < 1e-12 && (y[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_pivot_is_flagged() {
        let w = [1.0, 1e-12, 0.5];
        assert!(!BasisFactor::pivot_stable(1, &w));
        assert!(BasisFactor::pivot_stable(0, &w));
        assert!(!BasisFactor::pivot_stable(0, &[f64::NAN, 1.0]));
    }
}
