//! Property-based tests comparing the simplex solver against brute force.
//!
//! For small random LPs with bounded variables we can approximate the true
//! optimum by enumerating the vertices of the box and dense sampling is not
//! sound; instead we check *certificates*: every reported optimum must be
//! feasible, and no sampled feasible point may beat it.

use certnn_lp::{LpModel, LpStatus, RowKind, Sense, Simplex};
use proptest::prelude::*;

fn small_coeff() -> impl Strategy<Value = f64> {
    // Avoid pathological magnitudes; integers /4 keep arithmetic tame.
    (-12i32..=12).prop_map(|v| v as f64 / 4.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random boxes + `<=` rows the origin-shifted corner `lo` may or may
    /// not be feasible; whenever the solver says Optimal, the solution must
    /// (a) be feasible and (b) dominate every feasible corner of the box.
    #[test]
    fn optimal_solutions_dominate_box_corners(
        n_vars in 1usize..4,
        n_rows in 0usize..4,
        c in prop::collection::vec(small_coeff(), 4),
        a in prop::collection::vec(small_coeff(), 16),
        b in prop::collection::vec((-8i32..=8).prop_map(|v| v as f64 / 2.0), 4),
        lo in prop::collection::vec((-4i32..=0).prop_map(|v| v as f64), 4),
        span in prop::collection::vec((0i32..=6).prop_map(|v| v as f64), 4),
    ) {
        let mut m = LpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..n_vars)
            .map(|i| m.add_var(&format!("x{i}"), lo[i], lo[i] + span[i]))
            .collect();
        m.set_objective(&vars.iter().enumerate().map(|(i, &v)| (v, c[i])).collect::<Vec<_>>());
        for r in 0..n_rows {
            let coeffs: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, a[r * 4 + i]))
                .collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, b[r]).unwrap();
        }
        let sol = Simplex::new().solve(&m).unwrap();
        match sol.status {
            LpStatus::Optimal => {
                prop_assert!(m.is_feasible(&sol.x, 1e-6), "claimed optimum infeasible");
                // Enumerate the box corners; each feasible corner must not
                // beat the reported objective.
                let corners = 1usize << n_vars;
                for mask in 0..corners {
                    let pt: Vec<f64> = (0..n_vars)
                        .map(|i| if mask & (1 << i) != 0 { lo[i] + span[i] } else { lo[i] })
                        .collect();
                    if m.is_feasible(&pt, 1e-9) {
                        let val = m.eval_objective(&pt);
                        prop_assert!(
                            val <= sol.objective + 1e-6,
                            "corner {:?} has objective {} > reported {}",
                            pt, val, sol.objective
                        );
                    }
                }
            }
            LpStatus::Infeasible => {
                // Sanity: the all-lower corner must indeed violate something.
                let pt: Vec<f64> = (0..n_vars).map(|i| lo[i]).collect();
                // (not a complete certificate; just ensure no trivial miss)
                if m.is_feasible(&pt, 1e-9) {
                    prop_assert!(false, "reported infeasible but corner {:?} feasible", pt);
                }
            }
            // Box-bounded variables cannot be unbounded.
            LpStatus::Unbounded => prop_assert!(false, "bounded box reported unbounded"),
            // No deadline attached in this test; limit exits are benign.
            LpStatus::IterationLimit | LpStatus::Deadline => {}
        }
    }

    /// Minimisation and maximisation are symmetric: max cᵀx == -min (-c)ᵀx.
    #[test]
    fn sense_symmetry(
        c in prop::collection::vec(small_coeff(), 3),
        a in prop::collection::vec(small_coeff(), 6),
        b in prop::collection::vec((0i32..=8).prop_map(|v| v as f64 / 2.0), 2),
    ) {
        let build = |sense: Sense, flip: f64| {
            let mut m = LpModel::new(sense);
            let vars: Vec<_> = (0..3).map(|i| m.add_var(&format!("x{i}"), 0.0, 5.0)).collect();
            m.set_objective(&vars.iter().enumerate().map(|(i, &v)| (v, flip * c[i])).collect::<Vec<_>>());
            for r in 0..2 {
                let coeffs: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, a[r * 3 + i])).collect();
                m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, b[r]).unwrap();
            }
            m
        };
        let mx = Simplex::new().solve(&build(Sense::Maximize, 1.0)).unwrap();
        let mn = Simplex::new().solve(&build(Sense::Minimize, -1.0)).unwrap();
        prop_assert_eq!(mx.status, mn.status);
        if mx.status == LpStatus::Optimal {
            prop_assert!((mx.objective + mn.objective).abs() < 1e-6,
                "max {} vs -min {}", mx.objective, -mn.objective);
        }
    }

    /// Tightening a variable's bounds can never improve the optimum.
    #[test]
    fn bound_tightening_is_monotone(
        c in prop::collection::vec(small_coeff(), 3),
        a in prop::collection::vec(small_coeff(), 6),
        b in prop::collection::vec((1i32..=8).prop_map(|v| v as f64 / 2.0), 2),
        cut in 0.0f64..2.0,
    ) {
        let mut m = LpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..3).map(|i| m.add_var(&format!("x{i}"), 0.0, 4.0)).collect();
        m.set_objective(&vars.iter().enumerate().map(|(i, &v)| (v, c[i])).collect::<Vec<_>>());
        for r in 0..2 {
            let coeffs: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, a[r * 3 + i])).collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, b[r]).unwrap();
        }
        let wide = Simplex::new().solve(&m).unwrap();
        let tight = Simplex::new()
            .solve_with_bounds(&m, &[(0.0, 4.0 - cut), (0.0, 4.0), (0.0, 4.0)])
            .unwrap();
        if wide.status == LpStatus::Optimal && tight.status == LpStatus::Optimal {
            prop_assert!(tight.objective <= wide.objective + 1e-6,
                "tightened {} > wide {}", tight.objective, wide.objective);
        }
    }
}
