//! Chaos suite for the LP layer: under injected faults no panic crosses
//! the public API, detection surfaces typed [`SolveError`]s, and any
//! result that does come back optimal is the *correct* optimum.
//!
//! Runs only with `--features fault-inject`.

#![cfg(feature = "fault-inject")]

use certnn_lp::fault::{self, FaultPlan};
use certnn_lp::{
    Deadline, LpError, LpModel, LpStatus, RowKind, Sense, Simplex, SolveError,
};
use std::time::{Duration, Instant};

/// A small LP with a known optimum (objective 36 at (2, 6)).
fn reference_model() -> (LpModel, f64) {
    let mut m = LpModel::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let y = m.add_var("y", 0.0, f64::INFINITY);
    m.set_objective(&[(x, 3.0), (y, 5.0)]);
    m.add_row("r1", &[(x, 1.0)], RowKind::Le, 4.0).unwrap();
    m.add_row("r2", &[(y, 2.0)], RowKind::Le, 12.0).unwrap();
    m.add_row("r3", &[(x, 3.0), (y, 2.0)], RowKind::Le, 18.0)
        .unwrap();
    (m, 36.0)
}

/// A denser LP that takes enough pivots for mid-solve faults to land.
fn bigger_model() -> LpModel {
    let mut m = LpModel::new(Sense::Maximize);
    let vars: Vec<_> = (0..12)
        .map(|i| m.add_var(&format!("v{i}"), 0.0, 3.0 + (i % 4) as f64))
        .collect();
    let mut seed = 987654321u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    m.set_objective(
        &vars
            .iter()
            .map(|&v| (v, next().abs() + 0.1))
            .collect::<Vec<_>>(),
    );
    for r in 0..8 {
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
        m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, 2.0 + r as f64 * 0.5)
            .unwrap();
    }
    m
}

#[test]
fn nan_poisoning_is_detected_never_panics_and_optima_stay_correct() {
    let _g = fault::serial_guard();
    let (m, expected) = reference_model();
    let big = bigger_model();
    let clean_big = {
        fault::clear();
        Simplex::new().solve(&big).unwrap()
    };
    assert_eq!(clean_big.status, LpStatus::Optimal);

    fault::install(FaultPlan::nan_only(4));
    let mut detected = 0usize;
    for _ in 0..60 {
        for (model, reference) in [(&m, expected), (&big, clean_big.objective)] {
            match Simplex::new().solve(model) {
                Ok(sol) => {
                    if sol.status == LpStatus::Optimal {
                        assert!(
                            (sol.objective - reference).abs() < 1e-6,
                            "poisoned solve claimed optimal with wrong objective: \
                             got {}, want {}",
                            sol.objective,
                            reference
                        );
                    }
                }
                Err(LpError::Solve(SolveError::NumericalPoison)) => detected += 1,
                Err(LpError::Solve(_)) => {}
                Err(e) => panic!("unexpected structural error under NaN fault: {e}"),
            }
        }
    }
    fault::clear();
    assert!(
        detected > 0,
        "NaN detection never fired across 120 poisoned solves"
    );
}

#[test]
fn forced_singular_bases_surface_as_typed_errors() {
    let _g = fault::serial_guard();
    let (m, expected) = reference_model();
    fault::install(FaultPlan::singular_only(2));
    let mut detected = 0usize;
    for _ in 0..40 {
        match Simplex::new().solve(&m) {
            Ok(sol) => {
                if sol.status == LpStatus::Optimal {
                    assert!((sol.objective - expected).abs() < 1e-6);
                }
            }
            Err(LpError::Solve(SolveError::SingularBasis)) => detected += 1,
            Err(e) => panic!("unexpected error under singular fault: {e}"),
        }
    }
    fault::clear();
    assert!(detected > 0, "singular-basis detection never fired");
}

#[test]
fn warm_path_faults_fall_back_cold_and_record_the_cause() {
    let _g = fault::serial_guard();
    let (m, expected) = reference_model();
    fault::clear();
    let bounds: Vec<(f64, f64)> = (0..m.num_vars())
        .map(|i| m.bounds(certnn_lp::VarId::from_index(i)))
        .collect();
    let root = Simplex::new().solve_snapshot(&m, &bounds).unwrap();
    let warm = root.warm.expect("optimal root has a snapshot");

    // Singular faults fire on the *first* refactorisation — the warm
    // tableau build — so every warm attempt on the odd polls errors out
    // and must recover through the cold rung with the cause recorded.
    fault::install(FaultPlan::singular_only(2));
    let mut tagged = 0usize;
    for _ in 0..20 {
        let mut child = bounds.clone();
        child[0] = (1.0, child[0].1);
        match Simplex::new().solve_warm(&m, &child, &warm) {
            Ok(ws) => {
                if ws.fallback.is_some() {
                    assert!(!ws.warm_used, "error-driven fallback cannot be warm");
                    tagged += 1;
                }
                if ws.solution.status == LpStatus::Optimal {
                    assert!(
                        ws.solution.objective <= expected + 1e-6,
                        "child optimum above parent optimum"
                    );
                }
            }
            // The cold rung can itself hit the next scheduled fault.
            Err(LpError::Solve(_)) => {}
            Err(e) => panic!("unexpected structural error: {e}"),
        }
    }
    fault::clear();
    assert!(tagged > 0, "no error-driven cold fallback was ever recorded");
}

/// A model guaranteed to need more pivots than one deadline-check batch,
/// so mid-solve expiry is actually observable.
fn stall_model() -> LpModel {
    let mut m = LpModel::new(Sense::Maximize);
    let vars: Vec<_> = (0..30)
        .map(|i| m.add_var(&format!("v{i}"), 0.0, 3.0 + (i % 5) as f64))
        .collect();
    let mut seed = 55555u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    m.set_objective(
        &vars
            .iter()
            .map(|&v| (v, next().abs() + 0.1))
            .collect::<Vec<_>>(),
    );
    for r in 0..20 {
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
        m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, 2.0 + r as f64 * 0.3)
            .unwrap();
    }
    m
}

#[test]
fn stalls_plus_deadline_produce_prompt_deadline_status() {
    let _g = fault::serial_guard();
    let big = stall_model();
    fault::clear();
    let clean = Simplex::new().solve(&big).unwrap();
    assert!(
        clean.iterations > 16,
        "precondition: model must outlast one deadline batch, took {}",
        clean.iterations
    );

    // Every pivot-batch poll sleeps 2ms against a 5ms budget: the solve
    // must notice expiry cooperatively and return within a small multiple
    // of the budget instead of grinding to completion.
    fault::install(FaultPlan::stall_only(1, 2));
    let budget = Duration::from_millis(5);
    let t0 = Instant::now();
    let sol = Simplex::new()
        .with_deadline(Deadline::after(budget))
        .solve(&big)
        .unwrap();
    let elapsed = t0.elapsed();
    fault::clear();
    assert_eq!(sol.status, LpStatus::Deadline);
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline exit took {elapsed:?}"
    );
}

#[test]
fn cancellation_is_observed_without_wall_clock_expiry() {
    let _g = fault::serial_guard();
    fault::clear();
    let (m, _) = reference_model();
    let d = Deadline::cancellable();
    d.cancel();
    let sol = Simplex::new().with_deadline(d).solve(&m).unwrap();
    assert_eq!(sol.status, LpStatus::Deadline);
}
