//! Warm re-solves must be cheaper than cold solves on the branching
//! pattern (tighten one bound through the parent optimum). Guards the
//! dual-simplex warm start against pivot-count regressions.

use certnn_lp::{LpModel, LpStatus, RowKind, Sense, Simplex};

fn medium_lp(n: usize, m: usize, seed: u64) -> (LpModel, Vec<(f64, f64)>) {
    // Deterministic pseudo-random coefficients via a simple LCG.
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
    };
    let mut model = LpModel::new(Sense::Maximize);
    let mut bounds = Vec::new();
    let vars: Vec<_> = (0..n)
        .map(|i| {
            let lo = -2.0 + next();
            let hi = lo + 2.0 + (next() + 1.0) * 2.0;
            bounds.push((lo, hi));
            model.add_var(&format!("x{i}"), lo, hi)
        })
        .collect();
    let obj: Vec<_> = vars.iter().map(|&v| (v, next() * 3.0)).collect();
    model.set_objective(&obj);
    for r in 0..m {
        // Sparse rows: ~25% fill.
        let coeffs: Vec<_> = vars
            .iter()
            .filter_map(|&v| {
                let c = next();
                (c.abs() < 0.25).then_some((v, c * 4.0))
            })
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        let rhs = 1.0 + (next() + 1.0) * 3.0;
        model
            .add_row(&format!("r{r}"), &coeffs, RowKind::Le, rhs)
            .unwrap();
    }
    (model, bounds)
}

#[test]
fn warm_resolve_beats_cold_on_branching_pattern() {
    let simplex = Simplex::new();
    let mut warm_total = 0usize;
    let mut cold_total = 0usize;
    for seed in 0..6u64 {
        let (model, bounds) = medium_lp(60, 40, seed + 1);
        let parent = simplex.solve_snapshot(&model, &bounds).unwrap();
        if parent.solution.status != LpStatus::Optimal {
            println!("seed {seed}: parent {:?}", parent.solution.status);
            continue;
        }
        let Some(warm) = parent.warm else {
            println!("seed {seed}: no snapshot");
            continue;
        };
        // Child: tighten ONE bound through the parent optimum (the
        // branching pattern).
        let mut child = bounds.clone();
        let xi = parent
            .solution
            .x
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let x = parent.solution.x[xi];
        child[xi].1 = x - 0.25 * (child[xi].1 - child[xi].0).min(1.0);
        child[xi].1 = child[xi].1.max(child[xi].0);

        let cold = simplex.solve_with_bounds(&model, &child).unwrap();
        let ws = simplex.solve_warm(&model, &child, &warm).unwrap();
        println!(
            "seed {seed}: parent {} pivots; child cold {} pivots ({:?}) vs warm {} pivots ({:?}, used={})",
            parent.solution.iterations,
            cold.iterations,
            cold.status,
            ws.solution.iterations,
            ws.solution.status,
            ws.warm_used,
        );
        assert_eq!(cold.status, ws.solution.status);
        if cold.status == LpStatus::Optimal {
            assert!((cold.objective - ws.solution.objective).abs() < 1e-7);
        }
        assert!(ws.warm_used, "seed {seed}: basis rejected on a clean re-solve");
        warm_total += ws.solution.iterations;
        cold_total += cold.iterations;

        // Many-bound perturbation (the stale-cache pattern): shift every
        // bound slightly.
        let mut shifted = bounds.clone();
        for b in shifted.iter_mut() {
            let w = b.1 - b.0;
            b.0 += 0.02 * w;
            b.1 -= 0.02 * w;
        }
        let cold2 = simplex.solve_with_bounds(&model, &shifted).unwrap();
        let ws2 = simplex.solve_warm(&model, &shifted, &warm).unwrap();
        println!(
            "         many-bounds: cold {} pivots ({:?}) vs warm {} pivots ({:?}, used={})",
            cold2.iterations,
            cold2.status,
            ws2.solution.iterations,
            ws2.solution.status,
            ws2.warm_used,
        );
        assert_eq!(cold2.status, ws2.solution.status);
    }
    // Aggregate over all seeds: the warm re-solve must cost well under half
    // the cold pivots (in practice it is 0-4 vs 50-100 per solve).
    println!("totals: warm {warm_total} pivots vs cold {cold_total}");
    assert!(
        warm_total * 2 < cold_total,
        "warm re-solves ({warm_total} pivots) lost their edge over cold ({cold_total})"
    );
}
