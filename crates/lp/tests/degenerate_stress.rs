//! Stress tests on the LP shapes branch-and-bound actually produces:
//! equality-heavy systems, many variables fixed by bounds, and re-solves
//! of one model under hundreds of different bound overrides.

use certnn_lp::{LpModel, LpStatus, RowKind, Sense, Simplex};

/// A chain of equalities mimicking a network encoding: z1 = 2x − 1,
/// z2 = −z1 + 0.5, out = z2 + z1.
fn chain_model() -> (LpModel, Vec<certnn_lp::VarId>) {
    let mut m = LpModel::new(Sense::Maximize);
    let x = m.add_var("x", -1.0, 1.0);
    let z1 = m.add_var("z1", -10.0, 10.0);
    let z2 = m.add_var("z2", -10.0, 10.0);
    let out = m.add_var("out", -30.0, 30.0);
    m.add_row("d1", &[(z1, -1.0), (x, 2.0)], RowKind::Eq, 1.0).unwrap();
    m.add_row("d2", &[(z2, -1.0), (z1, -1.0)], RowKind::Eq, -0.5).unwrap();
    m.add_row("d3", &[(out, -1.0), (z2, 1.0), (z1, 1.0)], RowKind::Eq, 0.0)
        .unwrap();
    m.set_objective(&[(out, 1.0)]);
    (m, vec![x, z1, z2, out])
}

#[test]
fn equality_chain_solves_exactly() {
    // out = z2 + z1 = (−z1 + 0.5) + z1 = 0.5 regardless of x — constant.
    let (m, vars) = chain_model();
    let s = Simplex::new().solve(&m).unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.objective - 0.5).abs() < 1e-9, "obj {}", s.objective);
    assert!((s.value(vars[3]) - 0.5).abs() < 1e-9);
}

#[test]
fn hundreds_of_bound_overrides_stay_consistent() {
    // The BaB pattern: one model, many solves with tightened bounds.
    let (m, _) = chain_model();
    let solver = Simplex::new();
    for k in 0..300 {
        let t = k as f64 / 300.0;
        // Tighten x into a shrinking window around t − 0.5.
        let (lo, hi) = (t - 0.6, t - 0.4);
        let bounds = vec![
            (lo.max(-1.0), hi.min(1.0)),
            (-10.0, 10.0),
            (-10.0, 10.0),
            (-30.0, 30.0),
        ];
        let s = solver.solve_with_bounds(&m, &bounds).unwrap();
        assert_eq!(s.status, LpStatus::Optimal, "k={k}");
        assert!((s.objective - 0.5).abs() < 1e-7, "k={k}: {}", s.objective);
    }
}

#[test]
fn fully_fixed_variables_reduce_to_evaluation() {
    let (m, vars) = chain_model();
    // Pin x to 0.25: z1 = −0.5, z2 = 1.0, out = 0.5.
    let bounds = vec![(0.25, 0.25), (-10.0, 10.0), (-10.0, 10.0), (-30.0, 30.0)];
    let s = Simplex::new().solve_with_bounds(&m, &bounds).unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.value(vars[1]) + 0.5).abs() < 1e-9);
    assert!((s.value(vars[2]) - 1.0).abs() < 1e-9);
}

#[test]
fn infeasible_bound_overrides_detected() {
    let (m, _) = chain_model();
    // z1 = 2x − 1 with x in [0.9, 1.0] forces z1 in [0.8, 1.0]; demanding
    // z1 ≤ 0 is infeasible.
    let bounds = vec![(0.9, 1.0), (-10.0, 0.0), (-10.0, 10.0), (-30.0, 30.0)];
    let s = Simplex::new().solve_with_bounds(&m, &bounds).unwrap();
    assert_eq!(s.status, LpStatus::Infeasible);
}

#[test]
fn wide_equality_system_with_many_free_variables() {
    // 30 chained free variables: v_{i+1} = v_i + 1, v_0 = 0 — a long
    // phase-1 chain with artificials everywhere.
    let mut m = LpModel::new(Sense::Maximize);
    let vars: Vec<_> = (0..30)
        .map(|i| m.add_var(&format!("v{i}"), f64::NEG_INFINITY, f64::INFINITY))
        .collect();
    m.add_row("base", &[(vars[0], 1.0)], RowKind::Eq, 0.0).unwrap();
    for i in 0..29 {
        m.add_row(
            &format!("c{i}"),
            &[(vars[i + 1], 1.0), (vars[i], -1.0)],
            RowKind::Eq,
            1.0,
        )
        .unwrap();
    }
    m.set_objective(&[(vars[29], 1.0)]);
    let s = Simplex::new().solve(&m).unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.objective - 29.0).abs() < 1e-7, "obj {}", s.objective);
    for (i, v) in vars.iter().enumerate() {
        assert!((s.value(*v) - i as f64).abs() < 1e-6, "v{i} = {}", s.value(*v));
    }
}

#[test]
fn alternating_senses_on_shared_structure() {
    // min and max of the same functional bracket every feasible value.
    let mut m_max = LpModel::new(Sense::Maximize);
    let mut m_min = LpModel::new(Sense::Minimize);
    for m in [&mut m_max, &mut m_min] {
        let a = m.add_var("a", 0.0, 2.0);
        let b = m.add_var("b", -1.0, 1.0);
        m.add_row("r", &[(a, 1.0), (b, 2.0)], RowKind::Le, 2.5).unwrap();
        m.set_objective(&[(a, 1.0), (b, 1.0)]);
    }
    let hi = Simplex::new().solve(&m_max).unwrap();
    let lo = Simplex::new().solve(&m_min).unwrap();
    assert_eq!(hi.status, LpStatus::Optimal);
    assert_eq!(lo.status, LpStatus::Optimal);
    assert!(lo.objective <= hi.objective);
    // Spot value: max is a=2, b=0.25 -> 2.25; min is a=0, b=-1 -> -1.
    assert!((hi.objective - 2.25).abs() < 1e-7);
    assert!((lo.objective + 1.0).abs() < 1e-7);
}
