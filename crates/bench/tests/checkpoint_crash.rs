//! Chaos harness for crash-safe checkpointing, at the process level:
//! the `table2` binary is SIGKILLed mid-solve and resumed, and its
//! snapshots are corrupted on disk between runs. The contract under test
//! is the ISSUE's acceptance gate — a killed-and-resumed run reproduces
//! the uninterrupted verdicts, and a corrupted checkpoint is *never*
//! accepted (the query restarts fresh, tagged `checkpoint_fallback`,
//! with exit code 0).
//!
//! These tests spawn real subprocesses and take minutes, so they are
//! `#[ignore]`d from the default suite; `./ci --chaos` runs them with
//! `-- --ignored`.

use certnn_bench::json::{read_json, BenchRow};
use certnn_lp::Degradation;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn table2_bin() -> &'static str {
    env!("CARGO_BIN_EXE_table2")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("certnn_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn ckpt_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    files.sort();
    files
}

/// Launches `table2 --smoke --threads 1 --checkpoint-every 1 --resume
/// <ckpt_dir>` writing JSON rows to `json`, with extra args appended.
fn spawn_smoke(work: &Path, ckpt_dir: &Path, json: &Path, extra: &[&str]) -> Child {
    Command::new(table2_bin())
        .current_dir(work)
        .args(["--smoke", "--threads", "1", "--checkpoint-every", "1"])
        .args(["--resume".as_ref(), ckpt_dir.as_os_str()])
        .args(["--json".as_ref(), json.as_os_str()])
        .args(extra)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn table2")
}

/// Waits until a snapshot file exists in `dir` (solver mid-flight), then
/// SIGKILLs the child. Returns `true` if the kill landed while a
/// snapshot existed; `false` if the child finished first (machine too
/// fast for the smoke workload — the calling test degrades to a plain
/// determinism check).
fn kill_once_checkpointed(child: &mut Child, dir: &Path) -> bool {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if !ckpt_files(dir).is_empty() {
            // A query is in flight and has persisted state. Kill without
            // warning — this is the power-loss case, not graceful
            // shutdown.
            child.kill().expect("SIGKILL table2");
            let _ = child.wait();
            return true;
        }
        if let Ok(Some(_)) = child.try_wait() {
            return false;
        }
        assert!(
            Instant::now() < deadline,
            "table2 produced no checkpoint within 300s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn run_to_completion(work: &Path, ckpt_dir: &Path, json: &Path, extra: &[&str]) {
    let status = spawn_smoke(work, ckpt_dir, json, extra)
        .wait()
        .expect("wait table2");
    assert!(status.success(), "table2 exited with {status}");
}

/// Verdict fields of a row (the JSON artifact rounds values to 12
/// significant digits, so equality here is exact-verdict equality).
fn verdicts(rows: &[BenchRow]) -> Vec<(usize, Option<u64>, usize)> {
    rows.iter()
        .map(|r| (r.width, r.value.map(f64::to_bits), r.nodes))
        .collect()
}

#[test]
#[ignore = "spawns and kills real processes; run via ./ci --chaos"]
fn sigkilled_run_resumes_to_the_uninterrupted_verdicts() {
    let work = scratch("kill_work");
    let ckpt = scratch("kill_ckpt");

    // Uninterrupted reference, no checkpointing involved.
    let ref_json = work.join("ref.json");
    let empty = scratch("kill_none");
    run_to_completion(&work, &empty, &ref_json, &[]);
    let reference = read_json(&ref_json).expect("reference rows");
    assert!(!reference.is_empty());

    // Kill mid-solve, then resume to completion.
    let killed_json = work.join("killed.json");
    let mut child = spawn_smoke(&work, &ckpt, &killed_json, &[]);
    let killed = kill_once_checkpointed(&mut child, &ckpt);
    if killed {
        assert!(
            !killed_json.exists(),
            "a SIGKILLed run must not have produced final rows"
        );
    } else {
        eprintln!("[chaos] smoke run finished before any snapshot; plain rerun");
    }

    let resumed_json = work.join("resumed.json");
    run_to_completion(&work, &ckpt, &resumed_json, &[]);
    let resumed = read_json(&resumed_json).expect("resumed rows");

    assert_eq!(
        verdicts(&resumed),
        verdicts(&reference),
        "resumed run must reproduce every uninterrupted verdict and node count"
    );
    for row in &resumed {
        assert_eq!(
            row.degradation,
            Degradation::Exact,
            "a cleanly finishing resumed run carries no degradation"
        );
    }
    assert!(
        ckpt_files(&ckpt).is_empty(),
        "completed queries must delete their snapshots"
    );

    for d in [work, ckpt, empty] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
#[ignore = "spawns and kills real processes; run via ./ci --chaos"]
fn corrupted_checkpoints_are_rejected_and_the_run_still_succeeds() {
    let work = scratch("corrupt_work");
    let ckpt = scratch("corrupt_ckpt");

    // Obtain genuine mid-solve snapshots by killing a run.
    let mut child = spawn_smoke(&work, &ckpt, &work.join("x.json"), &[]);
    let killed = kill_once_checkpointed(&mut child, &ckpt);
    let files = ckpt_files(&ckpt);
    if !killed || files.is_empty() {
        eprintln!("[chaos] no snapshot survived the kill; seeding a torn file instead");
        std::fs::write(ckpt.join("q0000000000000000.ckpt"), b"CNCK\x01\x00")
            .expect("seed torn file");
    }

    // Flip a byte in the middle of every snapshot — torn writes and
    // bit rot look exactly like this.
    for file in ckpt_files(&ckpt) {
        let mut bytes = std::fs::read(&file).expect("read snapshot");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&file, &bytes).expect("rewrite snapshot");
    }

    // Resume against the corrupted state: the run must complete with
    // exit code 0, count every rejection, and never trust the bytes.
    let out_json = work.join("out.json");
    run_to_completion(&work, &ckpt, &out_json, &["--metrics"]);
    let rows = read_json(&out_json).expect("rows after corruption");
    assert!(!rows.is_empty());

    let metrics: &[(String, f64)] = &rows.last().expect("final row").metrics;
    let fallbacks = metrics
        .iter()
        .find(|(name, _)| name == "ckpt.corrupt_fallbacks")
        .map_or(0.0, |(_, v)| *v);
    let tagged = rows
        .iter()
        .any(|r| r.degradation == Degradation::CheckpointFallback);
    assert!(
        fallbacks >= 1.0 || tagged,
        "a corrupted snapshot must be rejected and surfaced \
         (ckpt.corrupt_fallbacks={fallbacks}, tagged_rows={tagged})"
    );
    // Whatever happened, the verdict columns are present and sane.
    for row in &rows {
        assert!(row.value.is_some(), "smoke queries must still close");
    }
    assert!(ckpt_files(&ckpt).is_empty());

    for d in [work, ckpt] {
        let _ = std::fs::remove_dir_all(d);
    }
}
