//! Presolve ablation: interval vs symbolic bounds, and their effect on
//! the MILP solve (experiment A4 of DESIGN.md).

use certnn_core::scenario::{left_vehicle_spec, max_lateral_velocity};
use certnn_nn::gmm::OutputLayout;
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_verify::bounds::{interval_bounds, symbolic_bounds};
use certnn_verify::encoder::BoundMethod;
use certnn_verify::verifier::{Engine, Verifier, VerifierOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_bound_propagation(c: &mut Criterion) {
    let net = Network::relu_mlp(FEATURE_COUNT, &[20, 20, 20, 20], 10, 7)
        .expect("valid architecture");
    let spec = left_vehicle_spec();
    let mut group = c.benchmark_group("bound_propagation");
    group.bench_function("interval", |b| {
        b.iter(|| interval_bounds(&net, spec.bounds()).expect("bounds"))
    });
    group.bench_function("symbolic", |b| {
        b.iter(|| symbolic_bounds(&net, spec.bounds()).expect("bounds"))
    });
    group.finish();
}

fn bench_presolve_effect_on_milp(c: &mut Criterion) {
    let layout = OutputLayout::new(1);
    let net = Network::relu_mlp(FEATURE_COUNT, &[8, 8], layout.output_len(), 7)
        .expect("valid architecture");
    let spec = left_vehicle_spec();
    let mut group = c.benchmark_group("milp_with_presolve");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(30));
    for (name, method) in [
        ("interval", BoundMethod::Interval),
        ("symbolic", BoundMethod::Symbolic),
    ] {
        // Pin the pure MILP engine: the point is the effect of presolve
        // tightness on the paper's own encoding.
        let verifier = Verifier::with_options(VerifierOptions {
            engine: Engine::Milp,
            bound_method: method,
            ..VerifierOptions::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| {
                max_lateral_velocity(&verifier, &net, layout, &spec).expect("verification")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_propagation, bench_presolve_effect_on_milp);
criterion_main!(benches);
