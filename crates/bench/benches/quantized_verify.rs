//! Quantized-network verification (experiment A2, paper Sec. IV (ii)).
//!
//! Verifies the same property on the full-precision network and its 4/8-
//! bit post-training quantizations through the identical MILP pipeline.

use certnn_core::scenario::{left_vehicle_spec, max_lateral_velocity};
use certnn_nn::gmm::OutputLayout;
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_verify::quant::quantize;
use certnn_verify::verifier::Verifier;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_quantized_verify(c: &mut Criterion) {
    let layout = OutputLayout::new(1);
    let net = Network::relu_mlp(FEATURE_COUNT, &[8, 8], layout.output_len(), 7)
        .expect("valid architecture");
    let spec = left_vehicle_spec();
    let verifier = Verifier::new();
    let mut group = c.benchmark_group("quantized_verify");
    group.sample_size(10);
    group.bench_function("f64", |b| {
        b.iter(|| max_lateral_velocity(&verifier, &net, layout, &spec).expect("verify"))
    });
    for bits in [8u8, 4] {
        let q = quantize(&net, bits).expect("quantize");
        group.bench_function(format!("int{bits}"), |b| {
            b.iter(|| {
                max_lateral_velocity(&verifier, &q.network, layout, &spec).expect("verify")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantized_verify);
criterion_main!(benches);
