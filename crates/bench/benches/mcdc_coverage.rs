//! MC/DC coverage measurement cost and saturation (experiment A1: the
//! paper's trivial-vs-intractable coverage argument).

use certnn_linalg::Vector;
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_trace::mcdc::BranchCoverage;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_suite(n: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..FEATURE_COUNT).map(|_| rng.gen_range(-1.0..1.3)).collect())
        .collect()
}

fn bench_coverage_measurement(c: &mut Criterion) {
    let net = Network::relu_mlp(FEATURE_COUNT, &[20, 20, 20, 20], 10, 7)
        .expect("valid architecture");
    let mut group = c.benchmark_group("mcdc_coverage");
    group.sample_size(10);
    for suite_size in [50usize, 200, 800] {
        let suite = random_suite(suite_size, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(suite_size),
            &suite,
            |b, suite| {
                b.iter(|| {
                    let cov = BranchCoverage::measure(&net, suite.iter()).expect("coverage");
                    (cov.coverage(), cov.distinct_patterns)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coverage_measurement);
criterion_main!(benches);
