//! LP substrate microbenchmark: simplex solve time vs problem size.
//!
//! Branch-and-bound solves thousands of these per Table II row, so the
//! LP kernel's scaling dominates overall verification time.

use certnn_lp::{LpModel, RowKind, Sense, Simplex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Deterministic pseudo-random dense LP with n vars and n/2 rows.
fn random_lp(n: usize, seed: u64) -> LpModel {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let mut m = LpModel::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|i| m.add_var(&format!("v{i}"), 0.0, 10.0)).collect();
    m.set_objective(
        &vars
            .iter()
            .map(|&v| (v, next().abs() + 0.05))
            .collect::<Vec<_>>(),
    );
    for r in 0..n / 2 {
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
        m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, 3.0 + r as f64 * 0.1)
            .expect("valid row");
    }
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(20);
    for n in [20usize, 60, 120] {
        let lp = random_lp(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp, |b, lp| {
            b.iter(|| Simplex::new().solve(lp).expect("valid model"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
