//! Verification time vs network width — the scaling behaviour behind
//! Table II (and the paper's Sec. IV (ii) scalability remark).
//!
//! Small `I2×N` networks keep the bench minutes-scale; the super-linear
//! growth in width is already clearly visible.

use certnn_core::scenario::{left_vehicle_spec, max_lateral_velocity};
use certnn_nn::gmm::OutputLayout;
use certnn_nn::network::Network;
use certnn_sim::features::FEATURE_COUNT;
use certnn_verify::verifier::{Engine, Verifier, VerifierOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_verify_scaling(c: &mut Criterion) {
    let layout = OutputLayout::new(1);
    let spec = left_vehicle_spec();
    let mut group = c.benchmark_group("verify_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    // Width 12 is excluded here: single iterations run into minutes on
    // one core (that is the Table II cliff; measured there, not here).
    for width in [4usize, 8] {
        let net = Network::relu_mlp(FEATURE_COUNT, &[width, width], layout.output_len(), 7)
            .expect("valid architecture");
        for (name, engine) in [("bab", Engine::HybridBab), ("milp", Engine::Milp)] {
            let verifier = Verifier::with_options(VerifierOptions {
                engine,
                ..VerifierOptions::default()
            });
            group.bench_with_input(
                BenchmarkId::new(name, width),
                &net,
                |b, net| {
                    b.iter(|| {
                        let r = max_lateral_velocity(&verifier, net, layout, &spec)
                            .expect("verification runs");
                        assert!(r.is_exact());
                        r.max_lateral
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_verify_scaling);
criterion_main!(benches);
