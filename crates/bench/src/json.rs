//! Machine-readable bench output (`--json <path>`).
//!
//! The report binaries print human tables; scripted comparisons (e.g.
//! warm-vs-cold sweeps diffed by `bench_diff`) want stable records
//! instead. This module emits one JSON array of flat row objects,
//!
//! ```json
//! [
//!   {"width": 10, "value": 0.688497, "wall_secs": 5.4, "nodes": 812,
//!    "lp_iterations": 90321, "warm_solves": 700, "cold_solves": 112,
//!    "pivots_saved": 41250, "threads": 4, "warm_start": true}
//! ]
//! ```
//!
//! hand-rolled (no serde in this dependency-free workspace): the schema
//! is a handful of fixed scalar fields, so a formatter and a parser stay
//! small and keep the workspace building offline. [`parse_json`] accepts
//! exactly what [`to_json`] produces plus older files missing the newer
//! fields (they default to zero/true), so committed baselines stay
//! readable across schema growth.
//!
//! When a run is observed (`--metrics` on the report binaries) the final
//! row additionally carries a nested `"metrics": {"lp.warm_solves": 700,
//! ...}` object — the run-cumulative scalar snapshot from `certnn-obs`.
//! It is always emitted as the *last* key of the row and parsed back
//! into [`BenchRow::metrics`]. `bench_diff` mines it for throughput and
//! latency-percentile deltas but treats every key as optional, so
//! wall-time gates keep working against baselines written before (or
//! without) observability.

use certnn_lp::Degradation;
use std::fs;
use std::io;
use std::path::Path;

/// One benchmark record: a verification query at a given width/seed.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Hidden width of the verified network (fleet rows: the member seed's
    /// shared width).
    pub width: usize,
    /// Verified objective value; `None` when the query did not close.
    pub value: Option<f64>,
    /// Wall-clock seconds for the row.
    pub wall_secs: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Simplex pivots across all LP solves of the row.
    pub lp_iterations: usize,
    /// LP solves that reused a parent basis via the dual simplex.
    pub warm_solves: usize,
    /// LP solves started from scratch.
    pub cold_solves: usize,
    /// Estimated pivots avoided by warm starts.
    pub pivots_saved: usize,
    /// B&B nodes whose LP relaxation the α-bound skip gate elided
    /// (`0` on baselines written before the gate existed).
    pub lp_skipped: usize,
    /// Thread knob the row ran with (`0` = auto).
    pub threads: usize,
    /// Whether LP warm-starting was enabled for the row.
    pub warm_start: bool,
    /// Worst degradation encountered answering the row's queries
    /// (`exact` unless a fault, panic or deadline forced a sound
    /// fallback; see [`Degradation`]).
    pub degradation: Degradation,
    /// Run-cumulative observability scalars (`certnn-obs` counters and
    /// gauge high-water marks), sorted by name. Empty unless the run was
    /// observed; report binaries attach the snapshot to the final row
    /// only. `bench_diff` reads it opportunistically — every key is
    /// optional.
    pub metrics: Vec<(String, f64)>,
}

impl Default for BenchRow {
    fn default() -> Self {
        Self {
            width: 0,
            value: None,
            wall_secs: 0.0,
            nodes: 0,
            lp_iterations: 0,
            warm_solves: 0,
            cold_solves: 0,
            pivots_saved: 0,
            lp_skipped: 0,
            threads: 0,
            warm_start: true,
            degradation: Degradation::Exact,
            metrics: Vec::new(),
        }
    }
}

/// JSON literal for an `f64`: finite values round-trip via `Display`,
/// non-finite values (which JSON cannot represent) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Rounds a verified objective value to 12 significant digits for the
/// JSON artifact. The verifier's answers are only `abs_gap`-accurate
/// (1e-6 by default), while the trailing bits depend on the search path:
/// α tuning and LP-skip reshape the branch-and-bound tree without moving
/// the answer, drifting the last ulp or two. Rounding at the artifact
/// boundary keeps `bench_diff --require-identical` a verdict gate rather
/// than an ulp-path-noise gate, with ~6 orders of magnitude of slack
/// left below the accuracy contract.
fn round_value(v: f64) -> f64 {
    if v.is_finite() {
        format!("{v:.11e}").parse().unwrap_or(v)
    } else {
        v
    }
}

/// Renders rows as a pretty-printed JSON array.
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let value = r
            .value
            .map_or("null".to_string(), |v| json_f64(round_value(v)));
        s.push_str(&format!(
            "  {{\"width\": {}, \"value\": {}, \"wall_secs\": {}, \"nodes\": {}, \
             \"lp_iterations\": {}, \"warm_solves\": {}, \"cold_solves\": {}, \
             \"pivots_saved\": {}, \"lp_skipped\": {}, \"threads\": {}, \
             \"warm_start\": {}, \"degradation\": \"{}\"",
            r.width,
            value,
            json_f64(r.wall_secs),
            r.nodes,
            r.lp_iterations,
            r.warm_solves,
            r.cold_solves,
            r.pivots_saved,
            r.lp_skipped,
            r.threads,
            r.warm_start,
            r.degradation.as_str()
        ));
        // The metrics object must stay the last key: the flat-field
        // extractor only searches text before it, so row scalars can
        // never collide with dotted metric names.
        if !r.metrics.is_empty() {
            s.push_str(", \"metrics\": {");
            for (j, (name, v)) in r.metrics.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{name}\": {}", json_f64(*v)));
            }
            s.push('}');
        }
        s.push('}');
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push(']');
    s.push('\n');
    s
}

/// Writes rows to `path` as JSON.
///
/// # Errors
///
/// Returns [`io::Error`] if the file cannot be written.
pub fn write_json(path: &Path, rows: &[BenchRow]) -> io::Result<()> {
    fs::write(path, to_json(rows))
}

/// Extracts the value of `key` from one flat JSON object body.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Splits an array body into top-level `{...}` object bodies (outer
/// braces stripped), tracking brace depth and string state so nested
/// objects — the `"metrics"` block — stay inside their row.
fn split_objects(body: &str) -> Result<Vec<&str>, String> {
    let mut objs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = i + 1;
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("row {}: unbalanced `}}`", objs.len()))?;
                if depth == 0 {
                    objs.push(&body[start..i]);
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err(format!("row {}: unterminated object", objs.len()));
    }
    Ok(objs)
}

/// Name→value pairs of an obs metrics block, as stored in
/// [`BenchRow::metrics`].
type MetricPairs = Vec<(String, f64)>;

/// Parses the `"metrics": {...}` block of a row body, if present,
/// returning the name→value pairs and the flat part preceding it.
fn split_metrics(obj: &str, row: usize) -> Result<(&str, MetricPairs), String> {
    const KEY: &str = "\"metrics\":";
    let Some(key_at) = obj.find(KEY) else {
        return Ok((obj, Vec::new()));
    };
    let flat = &obj[..key_at];
    let after = obj[key_at + KEY.len()..].trim_start();
    let inner = after
        .strip_prefix('{')
        .and_then(|r| r.split('}').next())
        .ok_or_else(|| format!("row {row}: malformed metrics object"))?;
    let mut metrics = Vec::new();
    for pair in inner.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("row {row}: bad metrics pair `{pair}`"))?;
        let name = name.trim().trim_matches('"').to_string();
        let value = match value.trim() {
            // Non-finite scalars render as null (JSON has no Inf/NaN).
            "null" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("row {row}: bad metrics value in `{pair}`"))?,
        };
        metrics.push((name, value));
    }
    Ok((flat, metrics))
}

/// Parses the flat-row JSON produced by [`to_json`]. Fields absent from
/// older files default ([`BenchRow::default`]), so baselines committed
/// before a schema extension keep parsing.
///
/// # Errors
///
/// Returns a description of the first malformed row.
pub fn parse_json(text: &str) -> Result<Vec<BenchRow>, String> {
    let body = text.trim();
    // Distinguish the failure modes a crashed or interrupted writer
    // leaves behind — an empty or cut-off file — from genuine non-JSON
    // input, so the operator learns *what happened*, not just that
    // parsing failed.
    if body.is_empty() {
        return Err("empty file (truncated or interrupted write?)".to_string());
    }
    let Some(opened) = body.strip_prefix('[') else {
        return Err("expected a JSON array".to_string());
    };
    let Some(body) = opened.strip_suffix(']') else {
        return Err(
            "unterminated JSON array — the file is truncated (interrupted write?)".to_string(),
        );
    };
    let mut rows = Vec::new();
    for full_obj in split_objects(body)? {
        let (obj, metrics) = split_metrics(full_obj, rows.len())?;
        let mut row = BenchRow {
            metrics,
            ..BenchRow::default()
        };
        let parse_usize = |key: &str| -> Result<Option<usize>, String> {
            match field(obj, key) {
                None => Ok(None),
                Some(v) => v
                    .parse()
                    .map(Some)
                    .map_err(|_| format!("row {}: bad {key} `{v}`", rows.len())),
            }
        };
        row.width = parse_usize("width")?
            .ok_or_else(|| format!("row {}: missing width", rows.len()))?;
        row.nodes = parse_usize("nodes")?.unwrap_or(0);
        row.lp_iterations = parse_usize("lp_iterations")?.unwrap_or(0);
        row.warm_solves = parse_usize("warm_solves")?.unwrap_or(0);
        row.cold_solves = parse_usize("cold_solves")?.unwrap_or(0);
        row.pivots_saved = parse_usize("pivots_saved")?.unwrap_or(0);
        row.lp_skipped = parse_usize("lp_skipped")?.unwrap_or(0);
        row.threads = parse_usize("threads")?.unwrap_or(0);
        row.value = match field(obj, "value") {
            None | Some("null") => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("row {}: bad value `{v}`", rows.len()))?,
            ),
        };
        row.wall_secs = match field(obj, "wall_secs") {
            None | Some("null") => f64::NAN,
            Some(v) => v
                .parse()
                .map_err(|_| format!("row {}: bad wall_secs `{v}`", rows.len()))?,
        };
        row.warm_start = match field(obj, "warm_start") {
            None => true,
            Some("true") => true,
            Some("false") => false,
            Some(v) => return Err(format!("row {}: bad warm_start `{v}`", rows.len())),
        };
        row.degradation = match field(obj, "degradation") {
            // Baselines written before the degradation ladder existed were
            // fault-free exact runs by construction.
            None => Degradation::Exact,
            Some(v) => {
                let name = v.trim_matches('"');
                Degradation::from_str_opt(name)
                    .ok_or_else(|| format!("row {}: bad degradation `{v}`", rows.len()))?
            }
        };
        rows.push(row);
    }
    Ok(rows)
}

/// Reads and parses a bench JSON file.
///
/// # Errors
///
/// Returns a description if the file cannot be read or parsed.
pub fn read_json(path: &Path) -> Result<Vec<BenchRow>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> [BenchRow; 2] {
        [
            BenchRow {
                width: 10,
                value: Some(0.6875),
                wall_secs: 5.5,
                nodes: 812,
                lp_iterations: 90321,
                warm_solves: 700,
                cold_solves: 112,
                pivots_saved: 41250,
                lp_skipped: 0,
                threads: 4,
                warm_start: true,
                degradation: Degradation::Exact,
                metrics: Vec::new(),
            },
            BenchRow {
                width: 60,
                value: None,
                wall_secs: 30.0,
                nodes: 12000,
                lp_iterations: 500000,
                warm_solves: 0,
                cold_solves: 12000,
                pivots_saved: 0,
                lp_skipped: 37,
                threads: 0,
                warm_start: false,
                degradation: Degradation::TimedOut,
                metrics: vec![
                    ("bab.nodes".to_string(), 12000.0),
                    ("lp.warm_solves".to_string(), 700.0),
                ],
            },
        ]
    }

    #[test]
    fn rows_render_as_valid_flat_objects() {
        let s = to_json(&sample_rows());
        assert!(s.starts_with("[\n"));
        assert!(s.trim_end().ends_with(']'));
        assert!(s.contains("\"width\": 10"));
        assert!(s.contains("\"value\": 0.6875"));
        assert!(s.contains("\"value\": null"));
        assert!(s.contains("\"warm_solves\": 700"));
        assert!(s.contains("\"pivots_saved\": 41250"));
        assert!(s.contains("\"warm_start\": false"));
        assert!(s.contains("\"threads\": 4"));
        // Exactly one comma separator for two rows.
        assert_eq!(s.matches("},").count(), 1);
    }

    #[test]
    fn values_round_to_twelve_significant_digits() {
        let row = |v: f64| {
            [BenchRow {
                width: 4,
                value: Some(v),
                ..BenchRow::default()
            }]
        };
        let s = to_json(&row(1.4531405273219526));
        assert!(s.contains("\"value\": 1.45314052732"), "{s}");
        // Two path-noise twins an ulp apart render identically, so the
        // `--require-identical` gate survives tree-reshaping knobs.
        assert_eq!(to_json(&row(1.45314052732195)), s);
        // Short values are untouched.
        assert!(to_json(&row(0.6875)).contains("\"value\": 0.6875"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let rows = [BenchRow {
            width: 1,
            value: Some(f64::INFINITY),
            wall_secs: f64::NAN,
            threads: 1,
            ..BenchRow::default()
        }];
        let s = to_json(&rows);
        assert!(s.contains("\"value\": null"));
        assert!(s.contains("\"wall_secs\": null"));
        assert!(!s.contains("NaN") && !s.contains("inf"));
    }

    #[test]
    fn parse_round_trips_to_json() {
        let rows = sample_rows();
        let parsed = parse_json(&to_json(&rows)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], rows[0]);
        // NaN wall_secs cannot compare equal; the second row is finite.
        assert_eq!(parsed[1], rows[1]);
    }

    #[test]
    fn parse_accepts_pre_warm_start_schema() {
        // A baseline written before the warm-start fields existed.
        let old = "[\n  {\"width\": 6, \"value\": 1.5, \"wall_secs\": 0.25, \
                   \"nodes\": 3, \"threads\": 2}\n]\n";
        let rows = parse_json(old).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].width, 6);
        assert_eq!(rows[0].lp_iterations, 0);
        assert!(rows[0].warm_start);
        // Pre-ladder baselines were fault-free exact runs.
        assert_eq!(rows[0].degradation, Degradation::Exact);
    }

    #[test]
    fn degradation_tags_round_trip_and_reject_garbage() {
        let s = to_json(&sample_rows());
        assert!(s.contains("\"degradation\": \"exact\""));
        assert!(s.contains("\"degradation\": \"timed_out\""));
        let parsed = parse_json(&s).unwrap();
        assert_eq!(parsed[1].degradation, Degradation::TimedOut);
        assert!(
            parse_json("[{\"width\": 1, \"degradation\": \"mangled\"}]").is_err(),
            "unknown degradation tag must be rejected, not defaulted"
        );
    }

    #[test]
    fn metrics_block_round_trips_and_stays_last() {
        let rows = sample_rows();
        let s = to_json(&rows);
        // Nested object, emitted as the row's final key.
        assert!(s.contains("\"metrics\": {\"bab.nodes\": 12000"));
        assert!(s.contains("\"lp.warm_solves\": 700}}"));
        let parsed = parse_json(&s).unwrap();
        assert!(parsed[0].metrics.is_empty());
        assert_eq!(parsed[1].metrics, rows[1].metrics);
        // The flat scalar `warm_solves` must come from the row, not from
        // the dotted metric of the same suffix.
        assert_eq!(parsed[1].warm_solves, 0);
    }

    #[test]
    fn metrics_free_files_parse_with_empty_metrics() {
        // Baselines written before observability existed carry no
        // metrics block; they must keep parsing unchanged.
        let old = "[\n  {\"width\": 6, \"value\": 1.5, \"wall_secs\": 0.25, \
                   \"nodes\": 3, \"threads\": 2}\n]\n";
        let rows = parse_json(old).unwrap();
        assert!(rows[0].metrics.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("not json").is_err());
        assert!(parse_json("[{\"width\": ten}]").is_err());
        assert!(parse_json("[{\"nodes\": 3}]").is_err(), "missing width");
    }

    #[test]
    fn every_truncation_of_a_valid_file_errors_cleanly() {
        // A crashed writer can leave any prefix of the artifact on disk;
        // the reader must report a clear error for all of them — never
        // panic, never return partial rows as if they were the run.
        let full = to_json(&sample_rows());
        // Every prefix short of the closing `]` is a torn write.
        let end = full.rfind(']').expect("valid artifact");
        for cut in 0..=end {
            let truncated = &full[..cut];
            let err = parse_json(truncated)
                .expect_err(&format!("prefix of {cut} bytes must not parse"));
            assert!(!err.is_empty());
        }
        // Specific shapes get specific diagnoses.
        assert!(parse_json("").unwrap_err().contains("empty file"));
        assert!(parse_json("   \n").unwrap_err().contains("empty file"));
        let cut_mid_row = &full[..full.len() * 2 / 3];
        assert!(
            parse_json(cut_mid_row).unwrap_err().contains("truncated"),
            "mid-row cut should be diagnosed as truncation: {:?}",
            parse_json(cut_mid_row)
        );
    }

    #[test]
    fn checkpoint_fallback_degradation_round_trips() {
        // The crash-safety layer's tag must survive the JSON artifact so
        // bench_diff and the chaos CI legs can gate on it.
        let rows = [BenchRow {
            width: 8,
            value: Some(1.25),
            wall_secs: 1.0,
            degradation: Degradation::CheckpointFallback,
            ..BenchRow::default()
        }];
        let s = to_json(&rows);
        assert!(s.contains("\"degradation\": \"checkpoint_fallback\""));
        let parsed = parse_json(&s).unwrap();
        assert_eq!(parsed[0].degradation, Degradation::CheckpointFallback);
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join("certnn_bench_rows_test.json");
        let rows = [BenchRow {
            width: 6,
            value: Some(1.5),
            wall_secs: 0.25,
            nodes: 3,
            threads: 2,
            ..BenchRow::default()
        }];
        write_json(&path, &rows).unwrap();
        let back = read_json(&path).unwrap();
        assert_eq!(back, rows);
        let _ = std::fs::remove_file(path);
    }
}
