//! Machine-readable bench output (`--json <path>`).
//!
//! The report binaries print human tables; scripted comparisons (e.g.
//! thread-scaling sweeps plotted across runs) want stable records
//! instead. This module emits one JSON array of flat row objects,
//!
//! ```json
//! [
//!   {"width": 10, "value": 0.688497, "wall_secs": 5.4, "nodes": 812, "threads": 4}
//! ]
//! ```
//!
//! hand-rolled (no serde in this dependency-free workspace): the schema
//! is five fixed scalar fields, so a formatter is 30 lines and keeps the
//! workspace building offline.

use std::fs;
use std::io;
use std::path::Path;

/// One benchmark record: a verification query at a given width/seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchRow {
    /// Hidden width of the verified network (fleet rows: the member seed's
    /// shared width).
    pub width: usize,
    /// Verified objective value; `None` when the query did not close.
    pub value: Option<f64>,
    /// Wall-clock seconds for the row.
    pub wall_secs: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Thread knob the row ran with (`0` = auto).
    pub threads: usize,
}

/// JSON literal for an `f64`: finite values round-trip via `Display`,
/// non-finite values (which JSON cannot represent) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders rows as a pretty-printed JSON array.
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let value = r.value.map_or("null".to_string(), json_f64);
        s.push_str(&format!(
            "  {{\"width\": {}, \"value\": {}, \"wall_secs\": {}, \"nodes\": {}, \"threads\": {}}}",
            r.width,
            value,
            json_f64(r.wall_secs),
            r.nodes,
            r.threads
        ));
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push(']');
    s.push('\n');
    s
}

/// Writes rows to `path` as JSON.
///
/// # Errors
///
/// Returns [`io::Error`] if the file cannot be written.
pub fn write_json(path: &Path, rows: &[BenchRow]) -> io::Result<()> {
    fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_as_valid_flat_objects() {
        let rows = [
            BenchRow {
                width: 10,
                value: Some(0.6875),
                wall_secs: 5.5,
                nodes: 812,
                threads: 4,
            },
            BenchRow {
                width: 60,
                value: None,
                wall_secs: 30.0,
                nodes: 12000,
                threads: 0,
            },
        ];
        let s = to_json(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.trim_end().ends_with(']'));
        assert!(s.contains("\"width\": 10"));
        assert!(s.contains("\"value\": 0.6875"));
        assert!(s.contains("\"value\": null"));
        assert!(s.contains("\"threads\": 4"));
        // Exactly one comma separator for two rows.
        assert_eq!(s.matches("},").count(), 1);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let rows = [BenchRow {
            width: 1,
            value: Some(f64::INFINITY),
            wall_secs: f64::NAN,
            nodes: 0,
            threads: 1,
        }];
        let s = to_json(&rows);
        assert!(s.contains("\"value\": null"));
        assert!(s.contains("\"wall_secs\": null"));
        assert!(!s.contains("NaN") && !s.contains("inf"));
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join("certnn_bench_rows_test.json");
        let rows = [BenchRow {
            width: 6,
            value: Some(1.5),
            wall_secs: 0.25,
            nodes: 3,
            threads: 2,
        }];
        write_json(&path, &rows).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, to_json(&rows));
        let _ = std::fs::remove_file(path);
    }
}
