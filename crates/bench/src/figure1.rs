//! Figure 1: simulation snapshot and the predictor's action distribution.
//!
//! The paper's figure shows (left) the simulated highway around the ego
//! vehicle and (right) the Gaussian mixture the predictor outputs over
//! (lateral velocity × longitudinal acceleration). [`run_figure1`] trains
//! a small predictor, advances a simulation to an interesting moment, and
//! renders both panels as ASCII.

use certnn_core::CoreError;
use certnn_datacheck::highway::highway_validator;
use certnn_nn::gmm::{Gmm2, OutputLayout};
use certnn_nn::loss::GmmNll;
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, TrainConfig, Trainer};
use certnn_sim::features::{FeatureExtractor, FEATURE_COUNT};
use certnn_sim::render::{render_density, render_scene};
use certnn_sim::road::Road;
use certnn_sim::scenario::{generate_dataset, ScenarioConfig};
use certnn_sim::simulation::Simulation;

/// Configuration of the Figure 1 reproduction.
#[derive(Debug, Clone)]
pub struct Figure1Config {
    /// Hidden widths of the predictor.
    pub hidden: Vec<usize>,
    /// Mixture components.
    pub mixture_components: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Seconds to advance the display simulation before the snapshot.
    pub snapshot_time: f64,
    /// Traffic size of the display simulation.
    pub vehicles: usize,
    /// Seed for everything.
    pub seed: u64,
}

impl Default for Figure1Config {
    fn default() -> Self {
        Self {
            hidden: vec![16, 16],
            mixture_components: 2,
            epochs: 20,
            snapshot_time: 25.0,
            vehicles: 18,
            seed: 3,
        }
    }
}

impl Figure1Config {
    /// Seconds-scale configuration for tests.
    pub fn smoke_test() -> Self {
        Self {
            hidden: vec![8],
            mixture_components: 1,
            epochs: 4,
            snapshot_time: 5.0,
            vehicles: 10,
            seed: 3,
        }
    }
}

/// The two rendered panels plus the decoded mixture.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Left panel: top-down scene around the ego vehicle.
    pub scene: String,
    /// Right panel: predicted action density over
    /// (lateral velocity, longitudinal acceleration).
    pub density: String,
    /// The decoded mixture at the snapshot.
    pub gmm: Gmm2,
    /// Suggested action: mixture mean `(v_lat, a_lon)`.
    pub suggestion: [f64; 2],
}

impl Figure1 {
    /// Both panels side by side with a caption, ready to print.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("FIGURE 1 — simulation of the vehicle (left) and the motion suggested by the neural network (right)\n\n");
        s.push_str(&self.scene);
        s.push_str("\npredicted action density  (x: lateral velocity m/s, y: longitudinal accel m/s²)\n");
        s.push_str(&self.density);
        s.push_str(&format!(
            "\nsuggestion: lateral velocity {:+.3} m/s, acceleration {:+.3} m/s²\n",
            self.suggestion[0], self.suggestion[1]
        ));
        s.push_str(&format!("{}", self.gmm));
        s
    }
}

/// Trains a predictor and renders the figure.
///
/// # Errors
///
/// Returns [`CoreError`] if simulation or training fails.
pub fn run_figure1(config: &Figure1Config) -> Result<Figure1, CoreError> {
    // Train on curated data.
    let scenario = ScenarioConfig {
        vehicles: config.vehicles,
        episode_seconds: 30.0,
        warmup_seconds: 3.0,
        sample_every: 5,
        seeds: vec![config.seed, config.seed + 1],
        exclude_risky: false,
        ..ScenarioConfig::default()
    };
    let mut raw = generate_dataset(&scenario)?;
    highway_validator(1.0).sanitize(&mut raw);
    if raw.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let data = Dataset::from_samples(raw);
    let layout = OutputLayout::new(config.mixture_components);
    let loss = GmmNll::new(config.mixture_components);
    let mut net = Network::relu_mlp(
        FEATURE_COUNT,
        &config.hidden,
        layout.output_len(),
        config.seed,
    )?;
    Trainer::new(TrainConfig {
        epochs: config.epochs,
        batch_size: 64,
        seed: config.seed,
        ..TrainConfig::default()
    })
    .train(&mut net, &data, &loss)?;

    // Fresh simulation for the snapshot.
    let mut sim = Simulation::random_traffic(Road::motorway(), config.vehicles, config.seed + 100)?;
    sim.run(config.snapshot_time);
    let features = FeatureExtractor::new().extract(&sim, sim.ego_id())?;
    let output = net.forward(&features)?;
    let gmm = Gmm2::from_output(&output, layout)?;

    let scene = render_scene(&sim, 60.0);
    // Gamma-correct the density for display: trained mixtures are very
    // peaked, and linear shading would light a single cell.
    let density = render_density(
        |v_lat, a_lon| gmm.pdf([v_lat, a_lon]).powf(0.25),
        (-3.0, 3.0),
        (-4.0, 4.0),
        61,
        21,
    );
    let suggestion = gmm.mean();
    Ok(Figure1 {
        scene,
        density,
        gmm,
        suggestion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_figure_renders_both_panels() {
        let fig = run_figure1(&Figure1Config::smoke_test()).unwrap();
        assert!(fig.scene.contains('E'));
        assert!(fig.density.lines().count() >= 21);
        assert!(fig.suggestion.iter().all(|v| v.is_finite()));
        let text = fig.to_text();
        assert!(text.contains("FIGURE 1"));
        assert!(text.contains("suggestion"));
    }

    #[test]
    fn trained_suggestion_is_physically_plausible() {
        let fig = run_figure1(&Figure1Config::smoke_test()).unwrap();
        // Even a briefly trained predictor should suggest bounded actions.
        assert!(fig.suggestion[0].abs() < 5.0);
        assert!(fig.suggestion[1].abs() < 8.0);
    }
}
