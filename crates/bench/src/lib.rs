//! Benchmark harness regenerating every table and figure of the paper.
//!
//! | artifact | module | regenerate with |
//! |---|---|---|
//! | Table I (concept matrix) | [`certnn_core::pillars`] | `cargo run --release -p certnn-bench --bin table1` |
//! | Figure 1 (scene + GMM)   | [`figure1`] | `cargo run --release -p certnn-bench --bin figure1` |
//! | Table II (verification)  | [`table2`]  | `cargo run --release -p certnn-bench --bin table2` |
//! | Hints ablation (Sec. IV iii) | [`hints`] | `cargo run --release -p certnn-bench --bin hints_ablation` |
//!
//! Criterion benches (`cargo bench -p certnn-bench`) cover the scaling
//! ablations: `verify_scaling`, `bounds_ablation`, `mcdc_coverage`,
//! `quantized_verify`, `simplex`.
//!
//! Report binaries write their text artifacts under `target/reports/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod figure1;
pub mod hints;
pub mod json;
pub mod table2;

use std::fs;
use std::io;
use std::path::PathBuf;

/// Writes a report artifact under `target/reports/` and returns its path.
///
/// # Errors
///
/// Returns [`io::Error`] if the directory or file cannot be written.
pub fn write_report(name: &str, contents: &str) -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/reports");
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_report_creates_file() {
        let p = write_report("test_artifact.txt", "hello").unwrap();
        assert!(p.exists());
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        let _ = std::fs::remove_file(p);
    }
}
