//! Table II: verifying ANN-based motion predictors.
//!
//! The paper reports, for `I4×N` networks trained on the same data, the
//! maximum lateral velocity when a vehicle exists on the left and the
//! verification wall time, plus one "prove ≤ 3 m/s" decision query:
//!
//! ```text
//! ANN     max lateral velocity    verification time
//! I4x10   0.688497                5.4s
//! I4x20   0.467385                549.1s
//! I4x25   2.10916                 28.2s
//! I4x40   1.95859                 645.9s
//! I4x50   1.72781                 13351.2s
//! I4x60   n.a. (unable to find maximum)   time-out
//! I4x60   prove lateral velocity ≤ 3 m/s  11059.8s
//! ```
//!
//! [`run_table2`] reproduces the experiment end to end on this machine:
//! it generates the synthetic highway data, sanitizes it, trains one
//! predictor per width (same data, different initialisation — the paper's
//! "we have trained a couple of neural networks under the same data"),
//! then runs the optimisation query per width and the decision query on
//! the largest. Absolute times differ from the paper's 12-core VM with a
//! commercial solver; the *shape* (super-linear, non-monotone growth and
//! a cheaper decision query) is the reproduction target.

use certnn_core::scenario::{left_vehicle_spec, max_lateral_velocity, prove_lateral_below};
use certnn_core::CoreError;
use certnn_datacheck::highway::highway_validator;
use certnn_nn::gmm::OutputLayout;
use certnn_nn::loss::GmmNll;
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, TrainConfig, Trainer};
use certnn_sim::features::FEATURE_COUNT;
use certnn_sim::scenario::{generate_dataset, ScenarioConfig};
use certnn_verify::bab::resolve_threads;
use certnn_verify::checkpoint::CheckpointPolicy;
use certnn_verify::verifier::{Verdict, Verifier, VerifierOptions};
use certnn_verify::{Deadline, Degradation};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// The paper's reported rows, for side-by-side printing.
pub const PAPER_ROWS: [(&str, Option<f64>, &str); 6] = [
    ("I4x10", Some(0.688497), "5.4s"),
    ("I4x20", Some(0.467385), "549.1s"),
    ("I4x25", Some(2.10916), "28.2s"),
    ("I4x40", Some(1.95859), "645.9s"),
    ("I4x50", Some(1.72781), "13351.2s"),
    ("I4x60", None, "time-out"),
];

/// The paper's decision-query row.
pub const PAPER_PROOF_ROW: (&str, f64, &str) = ("I4x60", 3.0, "11059.8s");

/// Configuration of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Hidden widths to verify (`I4×N` per entry).
    pub widths: Vec<usize>,
    /// Wall-clock limit per verification query.
    pub time_limit: Duration,
    /// Mixture components of the trained predictors.
    pub mixture_components: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Data-generation settings.
    pub scenario: ScenarioConfig,
    /// Threshold of the decision query on the largest network.
    pub proof_threshold: f64,
    /// Base seed; network `i` trains from `seed + i`.
    pub seed: u64,
    /// Widths trained/verified concurrently: `0` = one worker per
    /// available core, `1` = serial. Per-width work is deterministic
    /// given its seed, so the thread count only changes the wall time —
    /// never the table.
    pub threads: usize,
    /// Reuse parent LP bases across branch-and-bound nodes (dual-simplex
    /// warm start). Verdict-preserving; disable to benchmark the cold
    /// path.
    pub warm_start: bool,
    /// α-optimization rounds per branch-and-bound node (see
    /// [`VerifierOptions::alpha_iters`]); `0` reproduces the fixed-slope
    /// heuristic bit-for-bit.
    pub alpha_iters: usize,
    /// Skip per-node LP relaxations far above the prune level (see
    /// [`VerifierOptions::lp_skip`]).
    pub lp_skip: bool,
    /// Crash-safe checkpointing of every verification query (see
    /// [`CheckpointPolicy`]); the policy's `seed` is overridden by
    /// [`Table2Config::seed`] so snapshots are keyed to this run's exact
    /// search tree. `None` disables checkpointing.
    pub checkpoints: Option<CheckpointPolicy>,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            widths: vec![4, 6, 8, 10, 12, 14],
            time_limit: Duration::from_secs(150),
            mixture_components: 2,
            epochs: 60,
            scenario: ScenarioConfig {
                vehicles: 16,
                episode_seconds: 40.0,
                warmup_seconds: 5.0,
                sample_every: 5,
                seeds: vec![0, 1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
            proof_threshold: 3.0,
            seed: 7,
            threads: 0,
            warm_start: true,
            alpha_iters: certnn_verify::bab::DEFAULT_ALPHA_ITERS,
            lp_skip: true,
            checkpoints: None,
        }
    }
}

impl Table2Config {
    /// A seconds-scale configuration for integration tests.
    pub fn smoke_test() -> Self {
        Self {
            widths: vec![4, 6],
            time_limit: Duration::from_secs(30),
            mixture_components: 1,
            epochs: 5,
            scenario: ScenarioConfig {
                vehicles: 12,
                episode_seconds: 8.0,
                warmup_seconds: 1.0,
                sample_every: 10,
                seeds: vec![1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
            proof_threshold: 3.0,
            seed: 1,
            threads: 0,
            warm_start: true,
            alpha_iters: certnn_verify::bab::DEFAULT_ALPHA_ITERS,
            lp_skip: true,
            checkpoints: None,
        }
    }
}

/// One measured row of the reproduced table.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Architecture label (`I4x10`, …).
    pub label: String,
    /// Verified maximum lateral velocity, `None` if the query hit the
    /// time limit without closing (the paper's "n.a.").
    pub max_lateral: Option<f64>,
    /// Best proven upper bound (meaningful when `max_lateral` is `None`).
    pub upper_bound: f64,
    /// Verification wall time.
    pub time: Duration,
    /// Branch-and-bound nodes.
    pub nodes: usize,
    /// Binary variables after bound-tightening presolve.
    pub binaries: usize,
    /// Simplex pivots across all LP solves.
    pub lp_iterations: usize,
    /// LP solves that reused a parent basis via the dual simplex.
    pub warm_solves: usize,
    /// LP solves started from scratch.
    pub cold_solves: usize,
    /// Estimated pivots avoided by warm starts.
    pub pivots_saved: usize,
    /// B&B nodes whose LP relaxation the α-bound skip gate elided.
    pub lp_skipped: usize,
    /// Worst degradation across this row's queries (`Exact` on a clean
    /// run; sound fallback bounds otherwise).
    pub degradation: Degradation,
}

/// The decision-query row of the reproduced table.
#[derive(Debug, Clone)]
pub struct ProofRow {
    /// Architecture label.
    pub label: String,
    /// Threshold proven (or refuted).
    pub threshold: f64,
    /// The verdict.
    pub verdict: Verdict,
    /// Verification wall time.
    pub time: Duration,
    /// Worst degradation encountered deciding the query.
    pub degradation: Degradation,
}

/// Complete result of the Table II experiment.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// One row per width, paper order.
    pub rows: Vec<Table2Row>,
    /// Decision queries ("prove ≤ 3 m/s"): on the largest network whose
    /// optimisation *closed* (showing the decision form is cheaper) and on
    /// the largest network overall (the paper's I4×60 configuration).
    pub proofs: Vec<ProofRow>,
    /// Samples used for training after sanitization.
    pub training_samples: usize,
}

impl Table2Result {
    /// Renders the reproduced table next to the paper's numbers.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE II — results of verifying ANN-based motion predictors"
        );
        let _ = writeln!(
            s,
            "(trained on {} sanitized samples; times are wall-clock on one core)",
            self.training_samples
        );
        let _ = writeln!(
            s,
            "{:<8} {:>26} {:>12} {:>8} {:>10}",
            "ANN", "max lateral velocity", "time", "nodes", "binaries"
        );
        for row in &self.rows {
            let mut measured = match row.max_lateral {
                Some(v) => format!("{v:.6}"),
                None => format!("n.a. (bound {:.4})", row.upper_bound),
            };
            if row.degradation > Degradation::Exact {
                measured.push_str(&format!(" [{}]", row.degradation.as_str()));
            }
            let _ = writeln!(
                s,
                "{:<8} {:>26} {:>11.1?} {:>8} {:>10}",
                row.label, measured, row.time, row.nodes, row.binaries
            );
        }
        for proof in &self.proofs {
            let mut verdict = match &proof.verdict {
                Verdict::Holds { bound } => format!("PROVED (bound {bound:.4})"),
                Verdict::Violated { value, .. } => format!("REFUTED (witness {value:.4})"),
                Verdict::Unknown { upper_bound, .. } => {
                    format!("UNKNOWN (bound {upper_bound:.4})")
                }
            };
            if proof.degradation > Degradation::Exact {
                verdict.push_str(&format!(" [{}]", proof.degradation.as_str()));
            }
            let _ = writeln!(
                s,
                "{:<8} prove lateral velocity ≤ {} m/s: {} in {:.1?}",
                proof.label, proof.threshold, verdict, proof.time
            );
        }
        let _ = writeln!(
            s,
            "\npaper reference (12-core VM, commercial solver; widths scaled here to a\nsingle core and a from-scratch solver — compare the growth shape, not rows):"
        );
        for (label, value, time) in PAPER_ROWS {
            let v = value
                .map(|v| format!("{v:.6}"))
                .unwrap_or_else(|| "n.a. (unable to find maximum)".into());
            let _ = writeln!(s, "  {label:<8} {v:>30} {time:>10}");
        }
        let _ = writeln!(
            s,
            "  {:<8} prove ≤ {} m/s {:>31}",
            PAPER_PROOF_ROW.0, PAPER_PROOF_ROW.1, PAPER_PROOF_ROW.2
        );
        s
    }
}

/// Read-only context shared by the per-width workers.
struct WidthCtx<'a> {
    config: &'a Table2Config,
    data: &'a Dataset,
    layout: OutputLayout,
    loss: &'a GmmNll,
    spec: &'a certnn_verify::property::InputSpec,
    verifier: &'a Verifier,
}

/// A per-width result slot filled by whichever worker claims the index.
type WidthSlot = Mutex<Option<Result<(Table2Row, Network), CoreError>>>;

/// Trains and verifies one width of the table. Deterministic given the
/// config; independent of every other width.
fn run_width(ctx: &WidthCtx, i: usize, width: usize) -> Result<(Table2Row, Network), CoreError> {
    let config = ctx.config;
    let layout = ctx.layout;
    let mut net = Network::relu_mlp(
        FEATURE_COUNT,
        &[width; 4],
        layout.output_len(),
        config.seed + i as u64,
    )?;
    let train_cfg = TrainConfig {
        epochs: config.epochs,
        batch_size: 64,
        seed: config.seed + i as u64,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    Trainer::new(train_cfg).train(&mut net, ctx.data, ctx.loss)?;
    eprintln!("[table2] {} trained; verifying...", net.label());

    let result = max_lateral_velocity(ctx.verifier, &net, layout, ctx.spec)?;
    eprintln!(
        "[table2] {} verified: max {:?} in {:.1?} ({} nodes)",
        net.label(),
        result.max_lateral,
        result.stats.elapsed,
        result.stats.nodes
    );
    let upper = result
        .per_component
        .iter()
        .map(|r| r.upper_bound)
        .fold(f64::NEG_INFINITY, f64::max);
    let row = Table2Row {
        label: net.label(),
        max_lateral: result.max_lateral,
        upper_bound: upper,
        time: result.stats.elapsed,
        nodes: result.stats.nodes,
        binaries: result.stats.binaries,
        lp_iterations: result.stats.lp_iterations,
        warm_solves: result.stats.warm_solves,
        cold_solves: result.stats.cold_solves,
        pivots_saved: result.stats.pivots_saved,
        lp_skipped: result.stats.lp_skipped,
        degradation: result.stats.degradation,
    };
    Ok((row, net))
}

/// Runs the full Table II experiment.
///
/// Per-width queries are independent, so they are dispatched to
/// [`Table2Config::threads`] scoped workers pulling width indices from a
/// shared counter; rows land in paper order regardless of completion
/// order. Note that concurrent widths share the machine, so per-row wall
/// times measured at `threads > 1` are only comparable within the same
/// thread count.
///
/// # Errors
///
/// Returns [`CoreError`] if data generation, training or verification
/// fails structurally (time-outs are *results*, not errors).
pub fn run_table2(config: &Table2Config) -> Result<Table2Result, CoreError> {
    run_table2_under(config, Deadline::none())
}

/// [`run_table2`] under an ambient [`Deadline`]/cancellation token,
/// threaded through every width's verifier down to simplex pivot batches
/// (tightened per query by [`Table2Config::time_limit`]). Expired rows
/// report sound partial bounds tagged with their [`Degradation`].
///
/// # Errors
///
/// Same contract as [`run_table2`].
pub fn run_table2_under(
    config: &Table2Config,
    deadline: Deadline,
) -> Result<Table2Result, CoreError> {
    // Shared training data (the paper trains all networks on one dataset).
    let mut raw = generate_dataset(&config.scenario)?;
    highway_validator(1.0).sanitize(&mut raw);
    if raw.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let training_samples = raw.len();
    let data = Dataset::from_samples(raw);
    let layout = OutputLayout::new(config.mixture_components);
    let loss = GmmNll::new(config.mixture_components);
    let spec = left_vehicle_spec();
    let workers = resolve_threads(config.threads).min(config.widths.len().max(1));
    let mut verifier = Verifier::with_options(VerifierOptions {
        time_limit: Some(config.time_limit),
        // Outer width-parallelism saturates the cores; keep the inner
        // search serial to avoid oversubscription. A lone worker hands
        // its cores to the search instead.
        threads: if workers > 1 { 1 } else { config.threads },
        warm_start: config.warm_start,
        alpha_iters: config.alpha_iters,
        lp_skip: config.lp_skip,
        ..VerifierOptions::default()
    })
    .with_deadline(deadline);
    if let Some(ckpt) = &config.checkpoints {
        // Key snapshots to this run's seed: a checkpoint only ever meets
        // a search that will walk the identical tree.
        let mut policy = ckpt.clone();
        policy.seed = config.seed;
        verifier = verifier.with_checkpoints(policy);
    }

    let ctx = WidthCtx {
        config,
        data: &data,
        layout,
        loss: &loss,
        spec: &spec,
        verifier: &verifier,
    };
    let slots: Vec<WidthSlot> = (0..config.widths.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.widths.len() {
                    break;
                }
                let out = run_width(&ctx, i, config.widths[i]);
                // Poison-tolerant: a panicked width worker must not wedge
                // collection of the surviving rows.
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });

    let mut rows = Vec::new();
    let mut largest: Option<Network> = None;
    let mut largest_closed: Option<Network> = None;
    for slot in slots {
        let (row, net) = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every width index was claimed by a worker")?;
        if row.max_lateral.is_some() {
            largest_closed = Some(net.clone());
        }
        rows.push(row);
        largest = Some(net);
    }

    let mut proofs = Vec::new();
    let largest = largest.expect("at least one width");
    let mut targets: Vec<&Network> = Vec::new();
    if let Some(closed) = &largest_closed {
        if closed.label() != largest.label() {
            targets.push(closed);
        }
    }
    targets.push(&largest);
    for net in targets {
        eprintln!("[table2] decision query on {}...", net.label());
        let (verdict, stats) =
            prove_lateral_below(&verifier, net, layout, &spec, config.proof_threshold)?;
        proofs.push(ProofRow {
            label: net.label(),
            threshold: config.proof_threshold,
            verdict,
            time: stats.elapsed,
            degradation: stats.degradation,
        });
    }

    Ok(Table2Result {
        rows,
        proofs,
        training_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_are_pinned() {
        assert_eq!(PAPER_ROWS.len(), 6);
        assert_eq!(PAPER_ROWS[0].0, "I4x10");
        assert!((PAPER_ROWS[2].1.unwrap() - 2.10916).abs() < 1e-9);
        assert!(PAPER_ROWS[5].1.is_none());
    }

    #[test]
    fn smoke_experiment_produces_full_table() {
        let result = run_table2(&Table2Config::smoke_test()).unwrap();
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            // Tiny networks must close within the limit.
            assert!(row.max_lateral.is_some(), "{} timed out", row.label);
            assert!(row.upper_bound >= row.max_lateral.unwrap() - 1e-6);
            assert!(row.nodes >= 1);
        }
        assert_eq!(result.rows[0].label, "I4x4");
        assert_eq!(result.rows[1].label, "I4x6");
        let table = result.to_table();
        assert!(table.contains("TABLE II"));
        assert!(table.contains("I4x4"));
        assert!(table.contains("prove lateral velocity"));
        assert!(table.contains("paper reference"));
    }
}
