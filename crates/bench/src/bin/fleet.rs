//! Reproduces the paper's fleet observation: networks trained on the same
//! data do not all satisfy the safety property.
//!
//! Usage: `fleet [--smoke]`

use certnn_bench::write_report;
use certnn_core::fleet::{run_fleet, FleetConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        FleetConfig::smoke_test()
    } else {
        FleetConfig::default()
    };
    println!(
        "training and verifying a fleet of {} I{}x{} predictors...\n",
        config.fleet_size,
        config.hidden.len(),
        config.hidden[0]
    );
    match run_fleet(&config) {
        Ok(result) => {
            let table = result.to_table();
            print!("{table}");
            match write_report("fleet.txt", &table) {
                Ok(path) => println!("\nwritten to {}", path.display()),
                Err(e) => eprintln!("could not write report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
