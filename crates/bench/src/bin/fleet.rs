//! Reproduces the paper's fleet observation: networks trained on the same
//! data do not all satisfy the safety property.
//!
//! Usage: `fleet [--smoke] [--threads N] [--json rows.json] [--cold]
//! [--alpha-iters N] [--no-lp-skip] [--serve HOST:PORT]
//! [--checkpoint DIR] [--checkpoint-every N] [--resume DIR]
//! [--fault-inject SEED] [--trace t.jsonl] [--metrics] [--profile]`
//!
//! `--threads 0` (the default) trains/verifies members on all available
//! cores; `--threads 1` restores the serial run. `--cold` disables LP
//! warm-starting (verdict-preserving baseline). `--alpha-iters N` sets
//! the α-bound coordinate-descent rounds (`0` = fixed-slope heuristic,
//! bit-for-bit) and `--no-lp-skip` disables the per-node LP elision
//! gate; both are verdict-preserving. `--json` additionally
//! writes one machine-readable record per member (see
//! [`certnn_bench::json`]). `--fault-inject SEED` (builds with
//! `--features fault-inject` only) arms the seeded chaos plan of
//! `certnn_lp::fault`; degraded members are tagged in the table's `mode`
//! column and the JSON `degradation` field, with all bounds still sound.
//!
//! Observability (any of these switches `certnn-obs` on for the run;
//! verdicts are unaffected): `--trace t.jsonl` writes span/event/
//! metrics/profile records as JSON lines, `--metrics` prints the
//! counter/gauge/histogram snapshot after the table (and folds it into
//! the final `--json` row), `--profile` prints per-phase self time.
//!
//! Crash safety: `--checkpoint DIR` snapshots each member's verification
//! query to `DIR` (atomic, checksummed; one file per query),
//! `--checkpoint-every N` sets the node cadence, and `--resume DIR`
//! additionally resumes any query whose snapshot is found in `DIR`, so a
//! killed fleet run repeats no finished search work. Corrupt snapshots
//! are rejected and the query restarts fresh, tagged
//! `checkpoint_fallback`.
//!
//! `--serve HOST:PORT` ships every verification query to a running
//! `certnn-serve` daemon instead of solving in-process. Training stays
//! local and deterministic, so the table is bit-identical either way;
//! repeated runs against the same daemon answer from its certificate
//! cache. Incompatible with `--checkpoint`/`--resume` (the daemon owns
//! its own checkpoint directory).

#![warn(clippy::unwrap_used)]

use certnn_bench::json::{write_json, BenchRow};
use certnn_bench::write_report;
use certnn_core::fleet::{run_fleet, FleetConfig, FleetResult};
use certnn_serve::fleet::run_fleet_over;
use certnn_verify::checkpoint::{CheckpointPolicy, DEFAULT_EVERY_NODES};
use std::path::PathBuf;

fn main() {
    let mut config = FleetConfig::default();
    let mut serve_addr: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut want_metrics = false;
    let mut want_profile = false;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut ckpt_every = DEFAULT_EVERY_NODES;
    let mut ckpt_resume = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => config = FleetConfig::smoke_test(),
            "--trace" => {
                i += 1;
                trace_path = Some(PathBuf::from(&args[i]));
            }
            "--metrics" => want_metrics = true,
            "--profile" => want_profile = true,
            "--threads" => {
                i += 1;
                config.threads = args[i].parse().expect("threads must be an integer");
            }
            "--cold" => config.warm_start = false,
            "--alpha-iters" => {
                i += 1;
                config.alpha_iters =
                    args[i].parse().expect("alpha iters must be an integer");
            }
            "--no-lp-skip" => config.lp_skip = false,
            "--serve" => {
                i += 1;
                serve_addr = Some(args[i].clone());
            }
            "--checkpoint" => {
                i += 1;
                ckpt_dir = Some(PathBuf::from(&args[i]));
            }
            "--checkpoint-every" => {
                i += 1;
                ckpt_every = args[i]
                    .parse()
                    .expect("checkpoint cadence must be an integer");
            }
            "--resume" => {
                i += 1;
                ckpt_dir = Some(PathBuf::from(&args[i]));
                ckpt_resume = true;
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(&args[i]));
            }
            "--fault-inject" => {
                i += 1;
                let seed: u64 = args[i].parse().expect("fault seed must be an integer");
                #[cfg(feature = "fault-inject")]
                {
                    certnn_lp::fault::install(certnn_lp::fault::FaultPlan::seeded(seed));
                    println!("fault injection armed with seed {seed}");
                }
                #[cfg(not(feature = "fault-inject"))]
                {
                    let _ = seed;
                    eprintln!(
                        "--fault-inject requires a build with --features fault-inject"
                    );
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(dir) = ckpt_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        config.checkpoints = Some(CheckpointPolicy {
            every_nodes: ckpt_every,
            resume: ckpt_resume,
            ..CheckpointPolicy::new(dir)
        });
    }
    let observe = trace_path.is_some() || want_metrics || want_profile;
    if observe {
        certnn_obs::set_enabled(true);
        if !certnn_obs::enabled() {
            eprintln!(
                "--trace/--metrics/--profile require a build with the \
                 default `obs` feature; this binary records nothing"
            );
            std::process::exit(2);
        }
    }
    if serve_addr.is_some() && config.checkpoints.is_some() {
        eprintln!("--serve is incompatible with --checkpoint/--resume: the daemon owns its own checkpoint directory");
        std::process::exit(2);
    }
    println!(
        "training and verifying a fleet of {} I{}x{} predictors (threads {})...\n",
        config.fleet_size,
        config.hidden.len(),
        config.hidden[0],
        config.threads
    );
    let outcome: Result<FleetResult, String> = match &serve_addr {
        Some(addr) => {
            println!("verifying over the wire via certnn-serve at {addr}\n");
            run_fleet_over(addr.as_str(), &config).map_err(|e| e.to_string())
        }
        None => run_fleet(&config).map_err(|e| e.to_string()),
    };
    match outcome {
        Ok(result) => {
            let table = result.to_table();
            print!("{table}");
            match write_report("fleet.txt", &table) {
                Ok(path) => println!("\nwritten to {}", path.display()),
                Err(e) => eprintln!("could not write report: {e}"),
            }
            if want_metrics {
                print!("\n{}", certnn_obs::metrics_snapshot().to_table());
            }
            if want_profile {
                print!("\n{}", certnn_obs::profile_report());
            }
            if let Some(path) = json_path {
                let width = config.hidden.first().copied().unwrap_or(0);
                let mut rows: Vec<BenchRow> = result
                    .members
                    .iter()
                    .map(|m| BenchRow {
                        width,
                        value: m.verified_max,
                        wall_secs: m.wall_secs,
                        nodes: m.nodes,
                        lp_iterations: m.lp_iterations,
                        warm_solves: m.warm_solves,
                        cold_solves: m.cold_solves,
                        pivots_saved: m.pivots_saved,
                        lp_skipped: m.lp_skipped,
                        threads: config.threads,
                        warm_start: config.warm_start,
                        degradation: m.degradation,
                        metrics: Vec::new(),
                    })
                    .collect();
                if want_metrics {
                    // Run-cumulative snapshot; recorded once, on the
                    // final row (see certnn_bench::json).
                    if let Some(last) = rows.last_mut() {
                        last.metrics = certnn_obs::metrics_snapshot().scalars();
                    }
                }
                match write_json(&path, &rows) {
                    Ok(()) => println!("json rows written to {}", path.display()),
                    Err(e) => eprintln!("could not write json: {e}"),
                }
            }
            if let Some(path) = trace_path {
                match std::fs::write(&path, certnn_obs::drain_jsonl()) {
                    Ok(()) => println!("trace written to {}", path.display()),
                    Err(e) => eprintln!("could not write trace: {e}"),
                }
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
