//! Regenerates Figure 1 (simulation snapshot + predicted action density).
//!
//! Usage: `figure1 [--smoke]`

#![warn(clippy::unwrap_used)]

use certnn_bench::figure1::{run_figure1, Figure1Config};
use certnn_bench::write_report;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        Figure1Config::smoke_test()
    } else {
        Figure1Config::default()
    };
    match run_figure1(&config) {
        Ok(fig) => {
            let text = fig.to_text();
            print!("{text}");
            match write_report("figure1.txt", &text) {
                Ok(path) => println!("\nwritten to {}", path.display()),
                Err(e) => eprintln!("could not write report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
