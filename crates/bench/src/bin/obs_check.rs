//! Observability gate behind `./ci --obs`.
//!
//! Usage:
//!
//! ```text
//! obs_check <trace.jsonl>      validate a trace written by --trace
//! obs_check --overhead         measure obs-on vs obs-off smoke cost
//! obs_check --ckpt-overhead    measure checkpointing-on vs -off cost
//! obs_check --serve-overhead   measure obs cost of the serve layer
//! ```
//!
//! Validation parses every line against the JSONL schema of
//! [`certnn_obs::jsonl`] and then checks the trace is *useful*: at least
//! one span, a metrics record carrying the core counter names
//! (`lp.warm_solves`, `bab.nodes`, `bab.incumbent_updates`) and a
//! profile record. `--overhead` runs the Table II smoke config twice
//! with observability off and twice with it on (best-of-two each, all
//! serial), fails if the observed run is more than 5% + 0.25 s slower,
//! and asserts the verdicts are bit-identical either way — tracing must
//! never change what the verifier concludes. `--ckpt-overhead` applies
//! the same protocol to crash-safe checkpointing at its default cadence,
//! with a tighter 3% relative budget: snapshotting must cost nearly
//! nothing on a clean run, never shift a verdict, and leave no files
//! behind. `--serve-overhead` runs a small fleet over a loopback
//! `certnn-serve` daemon — each run against a fresh state directory so
//! the certificate cache cannot flatter the numbers — twice with
//! observability off and twice with it on, under the standard 5% + 0.25 s
//! gate, and asserts the wire-path verdicts are bit-identical either
//! way.

#![warn(clippy::unwrap_used)]

use certnn_bench::table2::{run_table2, Table2Config, Table2Result};
use certnn_core::fleet::{FleetConfig, FleetResult};
use certnn_serve::fleet::run_fleet_over;
use certnn_serve::server::{ServeOptions, Server};
use certnn_verify::checkpoint::CheckpointPolicy;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Counters every observed verification run must report; their absence
/// means an instrumentation layer silently stopped recording.
const REQUIRED_COUNTERS: [&str; 3] =
    ["lp.warm_solves", "bab.nodes", "bab.incumbent_updates"];

/// Allowed obs-on slowdown: 5% relative plus an absolute slack so
/// seconds-scale smoke runs don't fail on scheduler noise.
const MAX_RELATIVE_OVERHEAD: f64 = 1.05;
const ABSOLUTE_SLACK_SECS: f64 = 0.25;

/// Allowed checkpointing-on slowdown: 3% relative (the ISSUE's gate)
/// plus the same absolute slack against scheduler noise.
const MAX_CKPT_OVERHEAD: f64 = 1.03;

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let summary = certnn_obs::jsonl::validate_trace(&text)
        .map_err(|e| format!("{path}: {e}"))?;
    if summary.spans == 0 {
        return Err(format!("{path}: no span records"));
    }
    if !summary.has_metrics {
        return Err(format!("{path}: no metrics record"));
    }
    for name in REQUIRED_COUNTERS {
        if !summary.counter_names.iter().any(|n| n == name) {
            return Err(format!("{path}: metrics record missing counter `{name}`"));
        }
    }
    println!(
        "{path}: ok ({} spans, {} events, {} counters, {} histograms{})",
        summary.spans,
        summary.events,
        summary.counter_names.len(),
        summary.histogram_names.len(),
        if summary.has_profile {
            format!(", profile of {} phases", summary.phase_names.len())
        } else {
            String::new()
        }
    );
    Ok(())
}

/// One timed serial smoke run; returns the result and its wall seconds.
/// With `ckpt_dir` the run snapshots to that directory at the default
/// cadence (no resume — this is the clean-run cost of being killable).
fn timed_smoke_with(ckpt_dir: Option<&Path>) -> Result<(Table2Result, f64), String> {
    let mut config = Table2Config::smoke_test();
    config.threads = 1;
    if let Some(dir) = ckpt_dir {
        config.checkpoints = Some(CheckpointPolicy::new(dir));
    }
    let start = Instant::now();
    let result = run_table2(&config).map_err(|e| format!("smoke run failed: {e}"))?;
    Ok((result, start.elapsed().as_secs_f64()))
}

fn timed_smoke() -> Result<(Table2Result, f64), String> {
    timed_smoke_with(None)
}

/// Bit-exact verdict comparison between two smoke results.
fn assert_identical(off: &Table2Result, on: &Table2Result) -> Result<(), String> {
    if off.rows.len() != on.rows.len() {
        return Err("row count differs between obs-off and obs-on".to_string());
    }
    for (a, b) in off.rows.iter().zip(&on.rows) {
        let bits = |v: Option<f64>| v.map(f64::to_bits);
        if bits(a.max_lateral) != bits(b.max_lateral)
            || a.upper_bound.to_bits() != b.upper_bound.to_bits()
        {
            return Err(format!(
                "verdict drift on {}: off ({:?}, {}) vs on ({:?}, {})",
                a.label, a.max_lateral, a.upper_bound, b.max_lateral, b.upper_bound
            ));
        }
    }
    Ok(())
}

fn overhead() -> Result<(), String> {
    if !cfg!(feature = "obs") {
        return Err(
            "--overhead needs a build with the default `obs` feature".to_string()
        );
    }
    // Off first, so the on-runs cannot leak recording into the baseline.
    certnn_obs::set_enabled(false);
    let (off_result, off_a) = timed_smoke()?;
    let (_, off_b) = timed_smoke()?;
    let off_best = off_a.min(off_b);

    certnn_obs::set_enabled(true);
    let (on_result, on_a) = timed_smoke()?;
    certnn_obs::reset();
    let (_, on_b) = timed_smoke()?;
    let on_best = on_a.min(on_b);
    certnn_obs::set_enabled(false);
    certnn_obs::reset();

    assert_identical(&off_result, &on_result)?;
    println!(
        "smoke wall best-of-2: obs-off {off_best:.3}s, obs-on {on_best:.3}s \
         ({:+.1}%)",
        100.0 * (on_best - off_best) / off_best
    );
    let limit = off_best * MAX_RELATIVE_OVERHEAD + ABSOLUTE_SLACK_SECS;
    if on_best > limit {
        return Err(format!(
            "observability overhead too high: {on_best:.3}s > \
             {MAX_RELATIVE_OVERHEAD} x {off_best:.3}s + {ABSOLUTE_SLACK_SECS}s"
        ));
    }
    println!("overhead gate ok: {on_best:.3}s <= {limit:.3}s");
    println!("verdicts bit-identical with tracing on and off");
    Ok(())
}

fn ckpt_overhead() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("certnn_ckpt_gate_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;

    let (off_result, off_a) = timed_smoke_with(None)?;
    let (_, off_b) = timed_smoke_with(None)?;
    let off_best = off_a.min(off_b);

    let (on_result, on_a) = timed_smoke_with(Some(&dir))?;
    let (_, on_b) = timed_smoke_with(Some(&dir))?;
    let on_best = on_a.min(on_b);

    assert_identical(&off_result, &on_result)?;
    let leftover = std::fs::read_dir(&dir)
        .map(|rd| rd.count())
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    if leftover != 0 {
        return Err(format!(
            "clean checkpointed run left {leftover} snapshot file(s) behind"
        ));
    }
    println!(
        "smoke wall best-of-2: ckpt-off {off_best:.3}s, ckpt-on {on_best:.3}s \
         ({:+.1}%)",
        100.0 * (on_best - off_best) / off_best
    );
    let limit = off_best * MAX_CKPT_OVERHEAD + ABSOLUTE_SLACK_SECS;
    if on_best > limit {
        return Err(format!(
            "checkpointing overhead too high: {on_best:.3}s > \
             {MAX_CKPT_OVERHEAD} x {off_best:.3}s + {ABSOLUTE_SLACK_SECS}s"
        ));
    }
    println!("checkpoint overhead gate ok: {on_best:.3}s <= {limit:.3}s");
    println!("verdicts bit-identical with checkpointing on and off");
    Ok(())
}

/// One timed fleet run over a fresh loopback daemon. A new state
/// directory per run keeps the certificate cache out of the timing, so
/// the measurement covers the full serve path: framing, spooling,
/// solving, caching. The daemon runs with the whole live-telemetry
/// stack active — windowed aggregates, flight recorders, and the
/// Prometheus listener — so the overhead gate measures the daemon as it
/// ships; the telemetry endpoints are sanity-checked after the clock
/// stops so the checks themselves never skew the timing.
fn timed_serve_fleet(tag: &str, run: usize) -> Result<(FleetResult, f64), String> {
    let dir = std::env::temp_dir().join(format!(
        "certnn_serve_gate_{}_{tag}_{run}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeOptions {
        workers: 1,
        prom_addr: Some("127.0.0.1:0".to_string()),
        ..ServeOptions::loopback(&dir)
    })
    .map_err(|e| format!("cannot start daemon: {e}"))?;
    let mut config = FleetConfig::smoke_test();
    config.fleet_size = 2;
    config.threads = 1;
    let start = Instant::now();
    let result =
        run_fleet_over(server.addr(), &config).map_err(|e| format!("serve fleet failed: {e}"))?;
    let wall = start.elapsed().as_secs_f64();
    assert_live_telemetry(&server)?;
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    Ok((result, wall))
}

/// Proves the live-telemetry stack was actually on during a timed run:
/// the `METRICS` frame reports the fleet's submissions with non-zero
/// windowed rates, and the Prometheus endpoint serves parseable text.
fn assert_live_telemetry(server: &Server) -> Result<(), String> {
    let mut client = certnn_serve::client::Client::connect(server.addr())
        .map_err(|e| format!("telemetry client: {e}"))?;
    let m = client.metrics().map_err(|e| format!("METRICS failed: {e}"))?;
    let counter = |name: &str| {
        m.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    if counter("serve.jobs_submitted") == 0 {
        return Err("METRICS reports no submissions after a fleet run".to_string());
    }
    let submit_rate = m
        .rates
        .iter()
        .find(|(n, _)| n == "serve.jobs_submitted")
        .map_or(0.0, |(_, r)| *r);
    if submit_rate <= 0.0 {
        return Err("windowed serve.jobs_submitted rate is zero right after a run".to_string());
    }
    if m.workers_total == 0 || m.uptime_ns == 0 {
        return Err("METRICS gauges are empty".to_string());
    }
    let prom = server
        .prom_addr()
        .ok_or("prom listener did not bind".to_string())?;
    let mut stream = std::net::TcpStream::connect(prom)
        .map_err(|e| format!("prom connect: {e}"))?;
    std::io::Write::write_all(&mut stream, b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| format!("prom request: {e}"))?;
    let mut response = String::new();
    std::io::Read::read_to_string(&mut stream, &mut response)
        .map_err(|e| format!("prom response: {e}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .ok_or("prom response has no header/body split".to_string())?
        .1;
    let samples = certnn_serve::prom::parse_check(body)
        .map_err(|e| format!("prom exposition does not parse: {e}"))?;
    if samples == 0 || !body.contains("certnn_serve_up 1") {
        return Err("prom exposition is empty".to_string());
    }
    Ok(())
}

/// Bit-exact verdict comparison between two fleet results.
fn assert_fleet_identical(off: &FleetResult, on: &FleetResult) -> Result<(), String> {
    if off.members.len() != on.members.len() {
        return Err("member count differs between obs-off and obs-on".to_string());
    }
    for (a, b) in off.members.iter().zip(&on.members) {
        let bits = |v: Option<f64>| v.map(f64::to_bits);
        if bits(a.verified_max) != bits(b.verified_max)
            || a.safe != b.safe
            || a.degradation != b.degradation
        {
            return Err(format!(
                "verdict drift on seed {}: off ({:?}, {:?}, {}) vs on ({:?}, {:?}, {})",
                a.seed,
                a.verified_max,
                a.safe,
                a.degradation.as_str(),
                b.verified_max,
                b.safe,
                b.degradation.as_str()
            ));
        }
    }
    Ok(())
}

fn serve_overhead() -> Result<(), String> {
    if !cfg!(feature = "obs") {
        return Err(
            "--serve-overhead needs a build with the default `obs` feature".to_string()
        );
    }
    // Off first, so the on-runs cannot leak recording into the baseline.
    certnn_obs::set_enabled(false);
    let (off_result, off_a) = timed_serve_fleet("off", 0)?;
    let (_, off_b) = timed_serve_fleet("off", 1)?;
    let off_best = off_a.min(off_b);

    certnn_obs::set_enabled(true);
    let (on_result, on_a) = timed_serve_fleet("on", 0)?;
    certnn_obs::reset();
    let (_, on_b) = timed_serve_fleet("on", 1)?;
    let on_best = on_a.min(on_b);
    certnn_obs::set_enabled(false);
    certnn_obs::reset();

    assert_fleet_identical(&off_result, &on_result)?;
    println!(
        "serve fleet wall best-of-2: obs-off {off_best:.3}s, obs-on {on_best:.3}s \
         ({:+.1}%)",
        100.0 * (on_best - off_best) / off_best
    );
    let limit = off_best * MAX_RELATIVE_OVERHEAD + ABSOLUTE_SLACK_SECS;
    if on_best > limit {
        return Err(format!(
            "serve observability overhead too high: {on_best:.3}s > \
             {MAX_RELATIVE_OVERHEAD} x {off_best:.3}s + {ABSOLUTE_SLACK_SECS}s"
        ));
    }
    println!("serve overhead gate ok: {on_best:.3}s <= {limit:.3}s");
    println!("wire-path verdicts bit-identical with tracing on and off");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.as_slice() {
        [path] if !path.starts_with("--") => validate(path),
        [flag] if flag == "--overhead" => overhead(),
        [flag] if flag == "--ckpt-overhead" => ckpt_overhead(),
        [flag] if flag == "--serve-overhead" => serve_overhead(),
        _ => Err(
            "usage: obs_check <trace.jsonl> | obs_check --overhead | \
             obs_check --ckpt-overhead | obs_check --serve-overhead"
                .to_string(),
        ),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}
