//! Regenerates the hints ablation (paper Sec. IV (iii)).
//!
//! Usage: `hints_ablation [--smoke]`

#![warn(clippy::unwrap_used)]

use certnn_bench::hints::{run_hints_ablation, HintsConfig};
use certnn_bench::write_report;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        HintsConfig::smoke_test()
    } else {
        HintsConfig::default()
    };
    match run_hints_ablation(&config) {
        Ok(result) => {
            let table = result.to_table();
            print!("{table}");
            match write_report("hints_ablation.txt", &table) {
                Ok(path) => println!("\nwritten to {}", path.display()),
                Err(e) => eprintln!("could not write report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
