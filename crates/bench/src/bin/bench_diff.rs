//! Compares two bench JSON files row by row (`table2 --json` /
//! `fleet --json` output) and prints percentage deltas.
//!
//! Usage:
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--max-wall-ratio R]
//! ```
//!
//! Rows are matched by position and must agree on `width`; for each pair
//! the tool prints the wall-time, node and pivot deltas as percentages
//! of the baseline, plus the candidate's warm/cold solve split. With
//! `--max-wall-ratio R` the exit code is 1 if *total* candidate wall
//! time exceeds `R ×` the baseline's — the regression gate behind
//! `./ci --bench-smoke`.

use certnn_bench::json::{read_json, BenchRow};
use std::path::Path;
use std::process::ExitCode;

/// Percentage change from `base` to `cand`; `None` when the baseline is
/// zero (no meaningful percentage).
fn pct(base: f64, cand: f64) -> Option<f64> {
    (base != 0.0 && base.is_finite() && cand.is_finite())
        .then(|| 100.0 * (cand - base) / base)
}

fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:+.1}%"),
        None => "n.a.".to_string(),
    }
}

fn print_diff(base: &[BenchRow], cand: &[BenchRow]) {
    println!(
        "{:<6} {:>12} {:>12} {:>9} | {:>8} | {:>10} | {:>13} {:>12}",
        "width", "base wall", "cand wall", "Δwall", "Δnodes", "Δpivots", "warm/cold", "saved"
    );
    for (b, c) in base.iter().zip(cand) {
        println!(
            "{:<6} {:>11.3}s {:>11.3}s {:>9} | {:>8} | {:>10} | {:>6}/{:<6} {:>12}",
            b.width,
            b.wall_secs,
            c.wall_secs,
            fmt_pct(pct(b.wall_secs, c.wall_secs)),
            fmt_pct(pct(b.nodes as f64, c.nodes as f64)),
            fmt_pct(pct(b.lp_iterations as f64, c.lp_iterations as f64)),
            c.warm_solves,
            c.cold_solves,
            c.pivots_saved
        );
    }
    let total = |rows: &[BenchRow], f: fn(&BenchRow) -> f64| -> f64 {
        rows.iter().map(f).filter(|v| v.is_finite()).sum()
    };
    let (bw, cw) = (total(base, |r| r.wall_secs), total(cand, |r| r.wall_secs));
    let (bp, cp) = (
        total(base, |r| r.lp_iterations as f64),
        total(cand, |r| r.lp_iterations as f64),
    );
    println!(
        "total  {bw:>11.3}s {cw:>11.3}s {:>9} |          | {:>10} |",
        fmt_pct(pct(bw, cw)),
        fmt_pct(pct(bp, cp)),
    );
}

fn run(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut max_wall_ratio: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-wall-ratio" => {
                i += 1;
                let r = args
                    .get(i)
                    .ok_or("--max-wall-ratio needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --max-wall-ratio: {e}"))?;
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("--max-wall-ratio must be positive, got {r}"));
                }
                max_wall_ratio = Some(r);
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [base_path, cand_path] = paths.as_slice() else {
        return Err(
            "usage: bench_diff <baseline.json> <candidate.json> [--max-wall-ratio R]"
                .to_string(),
        );
    };
    let base = read_json(Path::new(base_path))?;
    let cand = read_json(Path::new(cand_path))?;
    if base.len() != cand.len() {
        return Err(format!(
            "row count mismatch: baseline {} vs candidate {}",
            base.len(),
            cand.len()
        ));
    }
    for (i, (b, c)) in base.iter().zip(&cand).enumerate() {
        if b.width != c.width {
            return Err(format!(
                "row {i}: width mismatch (baseline {} vs candidate {})",
                b.width, c.width
            ));
        }
    }
    print_diff(&base, &cand);
    if let Some(ratio) = max_wall_ratio {
        let sum = |rows: &[BenchRow]| -> f64 {
            rows.iter()
                .map(|r| r.wall_secs)
                .filter(|v| v.is_finite())
                .sum()
        };
        let (bw, cw) = (sum(&base), sum(&cand));
        if cw > ratio * bw {
            return Err(format!(
                "wall-time regression: candidate {cw:.3}s > {ratio} x baseline {bw:.3}s"
            ));
        }
        println!("wall-time gate ok: {cw:.3}s <= {ratio} x {bw:.3}s");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
