//! Compares two bench JSON files row by row (`table2 --json` /
//! `fleet --json` output) and prints percentage deltas.
//!
//! Usage:
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> \
//!     [--max-wall-ratio R] [--require-identical]
//! ```
//!
//! Rows are matched by position and must agree on `width`; for each pair
//! the tool prints the wall-time, node, LP-solve (warm + cold) and pivot
//! deltas as percentages of the baseline, plus the candidate's warm/cold
//! solve split and the nodes whose LP the α-bound gate skipped
//! (`lp_skipped`; baselines written before the gate carry `0`). When
//! either file carries an obs `metrics` block (`--metrics` on the report
//! binaries) a second section reports throughput and latency deltas:
//! `lp.pivots` per second and the warm/cold solve-time p50/p95 shifts.
//! Keys missing on either side (e.g. baselines written before histogram
//! percentiles were folded into the block) print as `n.a.` rather than
//! failing.
//!
//! Two gates flip the exit code to 1:
//!
//! * `--max-wall-ratio R` — *total* candidate wall time exceeds `R ×`
//!   the baseline's (the perf-regression gate behind `./ci
//!   --bench-smoke`).
//! * `--require-identical` — any row pair differs in its verified
//!   `value` (compared bit-for-bit via `f64::to_bits`; the writer rounds
//!   values to 12 significant digits, so ulp-level search-path noise
//!   never reaches this gate) or its `degradation` tag. Kernel rewrites
//!   and tree-reshaping knobs may shift wall time but must not shift
//!   verdicts; this is the determinism gate.

#![warn(clippy::unwrap_used)]

use certnn_bench::json::{read_json, BenchRow};
use std::path::Path;
use std::process::ExitCode;

/// Percentage change from `base` to `cand`; `None` when the baseline is
/// zero (no meaningful percentage).
fn pct(base: f64, cand: f64) -> Option<f64> {
    (base != 0.0 && base.is_finite() && cand.is_finite())
        .then(|| 100.0 * (cand - base) / base)
}

fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:+.1}%"),
        None => "n.a.".to_string(),
    }
}

fn print_diff(base: &[BenchRow], cand: &[BenchRow]) {
    let solves = |r: &BenchRow| (r.warm_solves + r.cold_solves) as f64;
    println!(
        "{:<6} {:>12} {:>12} {:>9} | {:>8} | {:>8} | {:>10} | {:>13} {:>8} {:>12}",
        "width",
        "base wall",
        "cand wall",
        "Δwall",
        "Δnodes",
        "Δsolves",
        "Δpivots",
        "warm/cold",
        "skipped",
        "saved"
    );
    for (b, c) in base.iter().zip(cand) {
        println!(
            "{:<6} {:>11.3}s {:>11.3}s {:>9} | {:>8} | {:>8} | {:>10} | {:>6}/{:<6} {:>8} {:>12}",
            b.width,
            b.wall_secs,
            c.wall_secs,
            fmt_pct(pct(b.wall_secs, c.wall_secs)),
            fmt_pct(pct(b.nodes as f64, c.nodes as f64)),
            fmt_pct(pct(solves(b), solves(c))),
            fmt_pct(pct(b.lp_iterations as f64, c.lp_iterations as f64)),
            c.warm_solves,
            c.cold_solves,
            c.lp_skipped,
            c.pivots_saved
        );
    }
    let total = |rows: &[BenchRow], f: fn(&BenchRow) -> f64| -> f64 {
        rows.iter().map(f).filter(|v| v.is_finite()).sum()
    };
    let (bw, cw) = (total(base, |r| r.wall_secs), total(cand, |r| r.wall_secs));
    let (bn, cn) = (
        total(base, |r| r.nodes as f64),
        total(cand, |r| r.nodes as f64),
    );
    let (bs, cs) = (total(base, solves), total(cand, solves));
    let (bp, cp) = (
        total(base, |r| r.lp_iterations as f64),
        total(cand, |r| r.lp_iterations as f64),
    );
    let skipped: usize = cand.iter().map(|r| r.lp_skipped).sum();
    println!(
        "total  {bw:>11.3}s {cw:>11.3}s {:>9} | {:>8} | {:>8} | {:>10} | {:>13} {skipped:>8}",
        fmt_pct(pct(bw, cw)),
        fmt_pct(pct(bn, cn)),
        fmt_pct(pct(bs, cs)),
        fmt_pct(pct(bp, cp)),
        "",
    );
}

/// Finite value of the run-cumulative obs metric `name`. Report binaries
/// attach the snapshot to the final row only, so every row is searched.
fn metric(rows: &[BenchRow], name: &str) -> Option<f64> {
    rows.iter()
        .flat_map(|r| r.metrics.iter())
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .filter(|v| v.is_finite())
}

/// Prints the metrics-derived section: LP pivot throughput and warm/cold
/// solve-latency percentile deltas. Absent keys (metrics-free files, or
/// baselines older than histogram folding) print as `n.a.`.
fn print_metrics_diff(base: &[BenchRow], cand: &[BenchRow]) {
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "metric", "base", "cand", "Δ"
    );
    // Pivot throughput: prefer the obs counter (covers every solve in
    // the run), fall back to the summed per-row pivot counts so
    // metrics-free baselines still get a rate.
    let rate = |rows: &[BenchRow]| -> Option<f64> {
        let wall: f64 = rows
            .iter()
            .map(|r| r.wall_secs)
            .filter(|v| v.is_finite())
            .sum();
        let pivots = metric(rows, "lp.pivots")
            .unwrap_or_else(|| rows.iter().map(|r| r.lp_iterations as f64).sum());
        (wall > 0.0).then(|| pivots / wall)
    };
    match (rate(base), rate(cand)) {
        (Some(b), Some(c)) => println!(
            "{:<26} {b:>12.0} {c:>12.0} {:>9}",
            "lp.pivots/s",
            fmt_pct(pct(b, c))
        ),
        _ => println!("{:<26} {:>12} {:>12} {:>9}", "lp.pivots/s", "n.a.", "n.a.", "n.a."),
    }
    for key in ["bab.lp_skipped", "bab.lp_forced"] {
        let row = |v: Option<f64>| v.map_or("n.a.".to_string(), |c| format!("{c:.0}"));
        let (b, c) = (metric(base, key), metric(cand, key));
        // Skip-gate counters: absent entirely from pre-gate baselines
        // and metrics-free files; print only when either side has them.
        if b.is_none() && c.is_none() {
            continue;
        }
        let delta = match (b, c) {
            (Some(b), Some(c)) => fmt_pct(pct(b, c)),
            _ => "n.a.".to_string(),
        };
        println!("{key:<26} {:>12} {:>12} {delta:>9}", row(b), row(c));
    }
    for hist in ["lp.warm_solve_nanos", "lp.cold_solve_nanos"] {
        for q in ["p50", "p95"] {
            let key = format!("{hist}.{q}");
            let row = |v: Option<f64>| {
                v.map_or("n.a.".to_string(), |ns| format!("{:.1}us", ns / 1e3))
            };
            let (b, c) = (metric(base, &key), metric(cand, &key));
            let delta = match (b, c) {
                (Some(b), Some(c)) => fmt_pct(pct(b, c)),
                _ => "n.a.".to_string(),
            };
            println!("{key:<26} {:>12} {:>12} {delta:>9}", row(b), row(c));
        }
    }
}

/// The `--require-identical` determinism gate: every row pair must agree
/// bit-for-bit on the verified `value` and exactly on the `degradation`
/// tag. Wall time, node and pivot counts are free to move.
fn check_identical(base: &[BenchRow], cand: &[BenchRow]) -> Result<(), String> {
    for (i, (b, c)) in base.iter().zip(cand).enumerate() {
        let same_value = match (b.value, c.value) {
            (None, None) => true,
            (Some(bv), Some(cv)) => bv.to_bits() == cv.to_bits(),
            _ => false,
        };
        if !same_value {
            return Err(format!(
                "row {i} (width {}): verdict drift — baseline value {:?} vs candidate {:?}",
                b.width, b.value, c.value
            ));
        }
        if b.degradation != c.degradation {
            return Err(format!(
                "row {i} (width {}): degradation drift — baseline `{}` vs candidate `{}`",
                b.width, b.degradation, c.degradation
            ));
        }
    }
    println!(
        "determinism gate ok: {} rows bit-identical in value and degradation",
        base.len()
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut max_wall_ratio: Option<f64> = None;
    let mut require_identical = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require-identical" => require_identical = true,
            "--max-wall-ratio" => {
                i += 1;
                let r = args
                    .get(i)
                    .ok_or("--max-wall-ratio needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --max-wall-ratio: {e}"))?;
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("--max-wall-ratio must be positive, got {r}"));
                }
                max_wall_ratio = Some(r);
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [base_path, cand_path] = paths.as_slice() else {
        return Err(
            "usage: bench_diff <baseline.json> <candidate.json> \
             [--max-wall-ratio R] [--require-identical]"
                .to_string(),
        );
    };
    let base = read_json(Path::new(base_path))?;
    let cand = read_json(Path::new(cand_path))?;
    if base.len() != cand.len() {
        return Err(format!(
            "row count mismatch: baseline {} vs candidate {}",
            base.len(),
            cand.len()
        ));
    }
    for (i, (b, c)) in base.iter().zip(&cand).enumerate() {
        if b.width != c.width {
            return Err(format!(
                "row {i}: width mismatch (baseline {} vs candidate {})",
                b.width, c.width
            ));
        }
    }
    print_diff(&base, &cand);
    print_metrics_diff(&base, &cand);
    if require_identical {
        check_identical(&base, &cand)?;
    }
    if let Some(ratio) = max_wall_ratio {
        let sum = |rows: &[BenchRow]| -> f64 {
            rows.iter()
                .map(|r| r.wall_secs)
                .filter(|v| v.is_finite())
                .sum()
        };
        let (bw, cw) = (sum(&base), sum(&cand));
        if cw > ratio * bw {
            return Err(format!(
                "wall-time regression: candidate {cw:.3}s > {ratio} x baseline {bw:.3}s"
            ));
        }
        println!("wall-time gate ok: {cw:.3}s <= {ratio} x {bw:.3}s");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
