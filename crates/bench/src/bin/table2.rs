//! Regenerates Table II (verification of `I4×N` motion predictors).
//!
//! Usage:
//!
//! ```text
//! table2 [--widths 10,20,25,40,50,60] [--time-limit 120] [--epochs 25] [--smoke]
//! ```
//!
//! `--smoke` runs the seconds-scale variant used by the integration tests.

use certnn_bench::table2::{run_table2, Table2Config};
use certnn_bench::write_report;
use std::time::Duration;

fn main() {
    let mut config = Table2Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => config = Table2Config::smoke_test(),
            "--widths" => {
                i += 1;
                config.widths = args[i]
                    .split(',')
                    .map(|w| w.parse().expect("width must be an integer"))
                    .collect();
            }
            "--time-limit" => {
                i += 1;
                let secs: u64 = args[i].parse().expect("time limit in seconds");
                config.time_limit = Duration::from_secs(secs);
            }
            "--epochs" => {
                i += 1;
                config.epochs = args[i].parse().expect("epochs must be an integer");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "running Table II: widths {:?}, time limit {:?}, {} epochs",
        config.widths, config.time_limit, config.epochs
    );
    match run_table2(&config) {
        Ok(result) => {
            let table = result.to_table();
            print!("{table}");
            match write_report("table2.txt", &table) {
                Ok(path) => println!("\nwritten to {}", path.display()),
                Err(e) => eprintln!("could not write report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
