//! Regenerates Table II (verification of `I4×N` motion predictors).
//!
//! Usage:
//!
//! ```text
//! table2 [--widths 10,20,25,40,50,60] [--time-limit 120] [--epochs 25]
//!        [--threads N] [--json rows.json] [--smoke] [--cold]
//!        [--alpha-iters N] [--no-lp-skip]
//!        [--checkpoint DIR] [--checkpoint-every N] [--resume DIR]
//!        [--fault-inject SEED] [--trace t.jsonl] [--metrics] [--profile]
//! ```
//!
//! `--smoke` runs the seconds-scale variant used by the integration tests.
//! `--threads 0` (the default) verifies widths on all available cores;
//! `--threads 1` restores the serial run. `--cold` disables LP
//! warm-starting (the baseline the warm path is benchmarked against;
//! verdicts are identical either way). `--alpha-iters N` sets the
//! coordinate-descent rounds of the α-optimized bounding layer (`0`
//! reproduces the fixed-slope heuristic bit-for-bit) and `--no-lp-skip`
//! disables the gate that elides per-node LP relaxations where they are
//! redundant (sub-MILP hand-off nodes, whose root solve subsumes them);
//! verdicts are identical at any setting. `--json` additionally writes one
//! machine-readable record per width (see [`certnn_bench::json`]) —
//! diff two such files with `bench_diff`. `--fault-inject SEED` (builds
//! with `--features fault-inject` only) arms the seeded chaos plan of
//! `certnn_lp::fault` for the whole run; degraded rows are tagged in the
//! table and in the JSON `degradation` field, and every printed bound
//! stays sound.
//!
//! Observability (any of these switches the `certnn-obs` layer on for
//! the run; verdicts and bounds are unaffected): `--trace t.jsonl`
//! writes the span/event/metrics/profile records as JSON lines,
//! `--metrics` prints the counter/gauge/histogram snapshot after the
//! table (and folds it into the final `--json` row as a `metrics`
//! block), `--profile` prints the per-phase self-time breakdown.
//!
//! Crash safety: `--checkpoint DIR` snapshots every verification query's
//! live search state to `DIR` (atomic, checksummed; one file per query),
//! `--checkpoint-every N` sets the node cadence, and `--resume DIR`
//! additionally resumes any query whose snapshot is found in `DIR` —
//! a run killed mid-solve (even with SIGKILL) repeats no finished work
//! and reaches the identical table. Corrupt or mismatched snapshots are
//! never trusted: the affected query restarts fresh, tagged
//! `checkpoint_fallback`.

#![warn(clippy::unwrap_used)]

use certnn_bench::json::{write_json, BenchRow};
use certnn_bench::table2::{run_table2, Table2Config};
use certnn_bench::write_report;
use certnn_verify::checkpoint::{CheckpointPolicy, DEFAULT_EVERY_NODES};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut config = Table2Config::default();
    let mut json_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut want_metrics = false;
    let mut want_profile = false;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut ckpt_every = DEFAULT_EVERY_NODES;
    let mut ckpt_resume = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => config = Table2Config::smoke_test(),
            "--trace" => {
                i += 1;
                trace_path = Some(PathBuf::from(&args[i]));
            }
            "--metrics" => want_metrics = true,
            "--profile" => want_profile = true,
            "--widths" => {
                i += 1;
                config.widths = args[i]
                    .split(',')
                    .map(|w| w.parse().expect("width must be an integer"))
                    .collect();
            }
            "--time-limit" => {
                i += 1;
                let secs: u64 = args[i].parse().expect("time limit in seconds");
                config.time_limit = Duration::from_secs(secs);
            }
            "--epochs" => {
                i += 1;
                config.epochs = args[i].parse().expect("epochs must be an integer");
            }
            "--threads" => {
                i += 1;
                config.threads = args[i].parse().expect("threads must be an integer");
            }
            "--cold" => config.warm_start = false,
            "--alpha-iters" => {
                i += 1;
                config.alpha_iters =
                    args[i].parse().expect("alpha iters must be an integer");
            }
            "--no-lp-skip" => config.lp_skip = false,
            "--checkpoint" => {
                i += 1;
                ckpt_dir = Some(PathBuf::from(&args[i]));
            }
            "--checkpoint-every" => {
                i += 1;
                ckpt_every = args[i]
                    .parse()
                    .expect("checkpoint cadence must be an integer");
            }
            "--resume" => {
                i += 1;
                ckpt_dir = Some(PathBuf::from(&args[i]));
                ckpt_resume = true;
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(&args[i]));
            }
            "--fault-inject" => {
                i += 1;
                let seed: u64 = args[i].parse().expect("fault seed must be an integer");
                #[cfg(feature = "fault-inject")]
                {
                    certnn_lp::fault::install(certnn_lp::fault::FaultPlan::seeded(seed));
                    println!("fault injection armed with seed {seed}");
                }
                #[cfg(not(feature = "fault-inject"))]
                {
                    let _ = seed;
                    eprintln!(
                        "--fault-inject requires a build with --features fault-inject"
                    );
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(dir) = ckpt_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        config.checkpoints = Some(CheckpointPolicy {
            every_nodes: ckpt_every,
            resume: ckpt_resume,
            ..CheckpointPolicy::new(dir)
        });
    }

    let observe = trace_path.is_some() || want_metrics || want_profile;
    if observe {
        certnn_obs::set_enabled(true);
        if !certnn_obs::enabled() {
            eprintln!(
                "--trace/--metrics/--profile require a build with the \
                 default `obs` feature; this binary records nothing"
            );
            std::process::exit(2);
        }
    }

    println!(
        "running Table II: widths {:?}, time limit {:?}, {} epochs, threads {}, {}",
        config.widths,
        config.time_limit,
        config.epochs,
        config.threads,
        if config.warm_start { "warm LP starts" } else { "cold LP starts" }
    );
    match run_table2(&config) {
        Ok(result) => {
            let table = result.to_table();
            print!("{table}");
            match write_report("table2.txt", &table) {
                Ok(path) => println!("\nwritten to {}", path.display()),
                Err(e) => eprintln!("could not write report: {e}"),
            }
            if want_metrics {
                print!("\n{}", certnn_obs::metrics_snapshot().to_table());
            }
            if want_profile {
                print!("\n{}", certnn_obs::profile_report());
            }
            if let Some(path) = json_path {
                let mut rows: Vec<BenchRow> = config
                    .widths
                    .iter()
                    .zip(&result.rows)
                    .map(|(&width, row)| BenchRow {
                        width,
                        value: row.max_lateral,
                        wall_secs: row.time.as_secs_f64(),
                        nodes: row.nodes,
                        lp_iterations: row.lp_iterations,
                        warm_solves: row.warm_solves,
                        cold_solves: row.cold_solves,
                        pivots_saved: row.pivots_saved,
                        lp_skipped: row.lp_skipped,
                        threads: config.threads,
                        warm_start: config.warm_start,
                        degradation: row.degradation,
                        metrics: Vec::new(),
                    })
                    .collect();
                if want_metrics {
                    // Run-cumulative snapshot; recorded once, on the
                    // final row (see certnn_bench::json).
                    if let Some(last) = rows.last_mut() {
                        last.metrics = certnn_obs::metrics_snapshot().scalars();
                    }
                }
                match write_json(&path, &rows) {
                    Ok(()) => println!("json rows written to {}", path.display()),
                    Err(e) => eprintln!("could not write json: {e}"),
                }
            }
            if let Some(path) = trace_path {
                match std::fs::write(&path, certnn_obs::drain_jsonl()) {
                    Ok(()) => println!("trace written to {}", path.display()),
                    Err(e) => eprintln!("could not write trace: {e}"),
                }
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
