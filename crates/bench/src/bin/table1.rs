//! Regenerates Table I (the certification-concept matrix).

#![warn(clippy::unwrap_used)]

use certnn_bench::write_report;
use certnn_core::pillars::render_matrix;

fn main() {
    let table = render_matrix();
    print!("{table}");
    match write_report("table1.txt", &table) {
        Ok(path) => println!("\nwritten to {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
