//! Hints ablation (paper Sec. IV (iii)).
//!
//! "Another important direction is to consider training under known
//! properties on the target function (known as hints), such as safety
//! rules." [`run_hints_ablation`] sweeps the hint weight λ, trains one
//! predictor per value on identical data, and *formally verifies* each:
//! the verified maximum lateral velocity under the "vehicle on the left"
//! scenario should shrink as λ grows — training with hints makes the
//! safety property easier to certify.

use certnn_core::pipeline::{CertificationPipeline, PipelineConfig};
use certnn_core::CoreError;
use certnn_sim::scenario::ScenarioConfig;
use std::fmt::Write as _;

/// Configuration of the hints ablation.
#[derive(Debug, Clone)]
pub struct HintsConfig {
    /// Hint weights to sweep (0 = no hint baseline).
    pub weights: Vec<f64>,
    /// Hidden widths of the predictor.
    pub hidden: Vec<usize>,
    /// Training epochs per run.
    pub epochs: usize,
    /// Data-generation settings (shared across runs).
    pub scenario: ScenarioConfig,
}

impl Default for HintsConfig {
    fn default() -> Self {
        Self {
            weights: vec![0.0, 1.0, 5.0, 20.0],
            hidden: vec![8, 8],
            epochs: 30,
            scenario: ScenarioConfig {
                vehicles: 14,
                episode_seconds: 20.0,
                warmup_seconds: 2.0,
                sample_every: 5,
                seeds: vec![0, 1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
        }
    }
}

impl HintsConfig {
    /// Seconds-scale configuration for tests.
    pub fn smoke_test() -> Self {
        Self {
            weights: vec![0.0, 20.0],
            hidden: vec![6, 6],
            epochs: 10,
            scenario: ScenarioConfig {
                vehicles: 12,
                episode_seconds: 10.0,
                warmup_seconds: 1.0,
                sample_every: 10,
                seeds: vec![1],
                exclude_risky: false,
                ..ScenarioConfig::default()
            },
        }
    }
}

/// One row of the ablation.
#[derive(Debug, Clone)]
pub struct HintsRow {
    /// Hint weight λ.
    pub weight: f64,
    /// Verified max lateral velocity (vehicle on left), if closed.
    pub verified_max: Option<f64>,
    /// Sound upper bound on the max (equals `verified_max` when closed;
    /// still meaningful when the query timed out).
    pub upper_bound: f64,
    /// Largest lateral mean actually exhibited by a concrete input.
    pub best_seen: f64,
    /// Final mean hint penalty during training.
    pub final_hint_penalty: f64,
    /// Final training loss.
    pub final_loss: f64,
}

/// Result of the sweep.
#[derive(Debug, Clone)]
pub struct HintsResult {
    /// One row per weight, input order.
    pub rows: Vec<HintsRow>,
}

impl HintsResult {
    /// Text table of the sweep.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "HINTS ABLATION — verified max lateral velocity vs hint weight (Sec. IV iii; hints as 512 virtual examples from the property region)"
        );
        let _ = writeln!(
            s,
            "{:>8} {:>20} {:>14} {:>12} {:>14} {:>12}",
            "λ", "verified max (m/s)", "proven bound", "witness max", "hint penalty", "final loss"
        );
        for r in &self.rows {
            let v = r
                .verified_max
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "n.a.".into());
            let _ = writeln!(
                s,
                "{:>8} {:>20} {:>14.4} {:>12.4} {:>14.6} {:>12.4}",
                r.weight, v, r.upper_bound, r.best_seen, r.final_hint_penalty, r.final_loss
            );
        }
        s
    }
}

/// Runs the hints ablation.
///
/// # Errors
///
/// Returns [`CoreError`] on structural failures in any run.
pub fn run_hints_ablation(config: &HintsConfig) -> Result<HintsResult, CoreError> {
    let mut rows = Vec::new();
    for &weight in &config.weights {
        let pipeline_cfg = PipelineConfig {
            scenario: config.scenario.clone(),
            hidden: config.hidden.clone(),
            mixture_components: 1,
            train: certnn_nn::train::TrainConfig {
                epochs: config.epochs,
                batch_size: 32,
                optimizer: certnn_nn::train::Optimizer::adam(0.005),
                weight_decay: 3e-4,
                ..certnn_nn::train::TrainConfig::default()
            },
            lateral_cap: 1.0,
            hint_weight: weight,
            hint_virtual_samples: 512,
            verifier: certnn_verify::verifier::VerifierOptions {
                time_limit: Some(std::time::Duration::from_secs(120)),
                ..certnn_verify::verifier::VerifierOptions::default()
            },
            network_seed: 11,
            proof_threshold: 3.0,
        };
        let report = CertificationPipeline::new(pipeline_cfg).run()?;
        let upper_bound = report
            .lateral
            .per_component
            .iter()
            .map(|r| r.upper_bound)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_seen = report
            .lateral
            .per_component
            .iter()
            .filter_map(|r| r.best_value)
            .fold(f64::NEG_INFINITY, f64::max);
        rows.push(HintsRow {
            weight,
            verified_max: report.lateral.max_lateral,
            upper_bound,
            best_seen,
            final_hint_penalty: report
                .training
                .epoch_hint_penalties
                .last()
                .copied()
                .unwrap_or(0.0),
            final_loss: report.training.final_loss(),
        });
    }
    Ok(HintsResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_rows_and_hint_reduces_verified_max() {
        let result = run_hints_ablation(&HintsConfig::smoke_test()).unwrap();
        assert_eq!(result.rows.len(), 2);
        let baseline = result.rows[0].verified_max.unwrap();
        let hinted = result.rows[1].verified_max.unwrap();
        // A strong hint must not make the verified bound *worse*; in
        // practice it shrinks it (allow slack for tiny training budgets).
        assert!(
            hinted <= baseline + 0.25,
            "hint increased verified max: {baseline} -> {hinted}"
        );
        assert!(result.to_table().contains("HINTS ABLATION"));
    }
}
