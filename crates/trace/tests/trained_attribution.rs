//! Integration: on a *trained* network with a known ground-truth
//! dependency structure, the three understandability tools must agree —
//! correlation attribution, relevance attribution and ablation impact all
//! have to point at the features/neurons that actually carry the
//! function.

use certnn_linalg::Vector;
use certnn_nn::loss::MseLoss;
use certnn_nn::network::Network;
use certnn_nn::train::{Dataset, Optimizer, TrainConfig, Trainer};
use certnn_trace::ablation::ablation_impacts;
use certnn_trace::activations::ActivationRecorder;
use certnn_trace::attribution::{correlation_attribution, relevance_attribution};
use certnn_trace::mcdc::BranchCoverage;

/// Target depends ONLY on features 0 and 1 (out of 6):
/// y = 2·x0 − x1 (features 2..6 are noise).
fn ground_truth_data(n: usize) -> (Dataset, Vec<Vector>) {
    let mut inputs = Vec::with_capacity(n);
    let data: Dataset = (0..n)
        .map(|i| {
            let mut seed = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
            let mut next = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            let x: Vector = (0..6).map(|_| next()).collect();
            let y = 2.0 * x[0] - x[1];
            inputs.push(x.clone());
            (x, Vector::from(vec![y]))
        })
        .collect();
    (data, inputs)
}

fn trained_network() -> (Network, Vec<Vector>) {
    let (data, inputs) = ground_truth_data(256);
    let mut net = Network::relu_mlp(6, &[10], 1, 12).expect("valid architecture");
    let report = Trainer::new(TrainConfig {
        epochs: 200,
        batch_size: 32,
        optimizer: Optimizer::adam(0.01),
        ..TrainConfig::default()
    })
    .train(&mut net, &data, &MseLoss::new())
    .expect("training runs");
    assert!(report.final_loss() < 0.01, "did not fit: {}", report.final_loss());
    (net, inputs)
}

/// Aggregated |score| of each feature across all neurons of a report.
fn feature_mass(report: &certnn_trace::attribution::TraceabilityReport, n: usize) -> Vec<f64> {
    let mut mass = vec![0.0; n];
    for t in &report.traces {
        for &(f, s) in &t.top_features {
            mass[f] += s.abs();
        }
    }
    mass
}

#[test]
fn attribution_methods_agree_on_the_true_dependencies() {
    let (net, inputs) = trained_network();
    // Attribute the OUTPUT layer: hidden neurons may legitimately respond
    // to noise features (their random incoming weights survive training
    // when the output layer cancels them), but the function the network
    // computes depends only on features 0 and 1.
    let out_layer = net.layers().len() - 1;
    for report in [
        correlation_attribution(&net, &inputs, out_layer, 6).expect("correlation"),
        relevance_attribution(&net, &inputs, out_layer, 6).expect("relevance"),
    ] {
        let mass = feature_mass(&report, 6);
        let signal = mass[0] + mass[1];
        let noise: f64 = mass[2..].iter().sum();
        assert!(
            signal > 2.0 * noise,
            "attribution missed the true features: signal {signal:.3} vs noise {noise:.3}"
        );
        // Feature 0 (coefficient 2) must outweigh feature 1 (coefficient 1).
        assert!(mass[0] > mass[1], "coefficient ordering lost: {mass:?}");
    }
    // At the hidden layer the picture is murkier — the paper's
    // "understandability is only partially achievable" in miniature:
    // hidden-layer attributions spread mass onto noise features too.
    let hidden = correlation_attribution(&net, &inputs, 0, 6).expect("correlation");
    let mass = feature_mass(&hidden, 6);
    let noise: f64 = mass[2..].iter().sum();
    assert!(
        noise > 0.1,
        "unexpectedly clean hidden layer — the partial-understandability \
         observation should show noise mass, got {mass:?}"
    );
}

#[test]
fn ablation_identifies_load_bearing_neurons_consistently() {
    let (net, inputs) = trained_network();
    let impacts = ablation_impacts(&net, &inputs, 0).expect("ablation");
    // The trained function is rank-2-ish: a handful of neurons carry it.
    let top: f64 = impacts[..3].iter().map(|i| i.mean_output_change).sum();
    let rest: f64 = impacts[3..].iter().map(|i| i.mean_output_change).sum();
    assert!(
        top > rest,
        "impact should concentrate: top3 {top:.3} vs rest {rest:.3}"
    );
    // Ablating the most important neuron must visibly break the fit;
    // ablating the least important must not.
    let recorder = ActivationRecorder::new().record(&net, &inputs).expect("record");
    let dead = recorder.dead_neurons();
    let least = impacts.last().expect("nonempty");
    assert!(
        least.mean_output_change < 0.6 * impacts[0].mean_output_change,
        "no spread in ablation impacts"
    );
    // Every dead neuron must have zero ablation impact.
    for d in dead {
        let found = impacts.iter().find(|i| i.neuron == d).expect("listed");
        assert_eq!(found.mean_output_change, 0.0, "dead neuron {d} has impact");
    }
}

#[test]
fn branch_coverage_of_training_inputs_is_high_but_patterns_are_few() {
    let (net, inputs) = trained_network();
    let cov = BranchCoverage::measure(&net, &inputs).expect("coverage");
    // Trained ReLU networks keep some neurons dead: coverage < 100% is
    // expected and *informative*; but the live branches should be seen.
    assert!(cov.coverage() > 0.5, "coverage {:.2}", cov.coverage());
    assert!(cov.distinct_patterns >= 3);
    assert!(cov.distinct_patterns <= inputs.len());
}
