//! Neuron-to-feature attribution (the paper's Sec. II (A)).
//!
//! Two complementary association measures:
//!
//! * **Correlation** — Pearson correlation between a feature's value and a
//!   neuron's activation across a dataset. Model-agnostic and cheap, but
//!   only captures monotone relationships.
//! * **Gradient×input relevance** — the mean of `|∂a_neuron/∂x_i · x_i|`
//!   across the dataset, a simple saliency in the spirit of the
//!   deconvolution approach the paper cites (Zeiler et al.). Captures the
//!   learned sensitivity even when correlation washes out.
//!
//! The paper's finding — "implementation understandability can only be
//! partially achieved" — is visible in the report: many neurons have no
//! dominant feature, which [`TraceabilityReport::untraceable_fraction`]
//! quantifies.

use crate::activations::NeuronId;
use certnn_linalg::stats::pearson;
use certnn_linalg::Vector;
use certnn_nn::network::Network;
use certnn_nn::NnError;

/// One neuron's strongest feature associations.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronTrace {
    /// The neuron.
    pub neuron: NeuronId,
    /// `(feature index, score)` sorted by descending |score|; at most the
    /// requested `top_k` entries.
    pub top_features: Vec<(usize, f64)>,
}

impl NeuronTrace {
    /// The dominant feature and its score, if any association exists.
    pub fn dominant(&self) -> Option<(usize, f64)> {
        self.top_features.first().copied()
    }
}

/// A full neuron↔feature traceability report for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceabilityReport {
    /// Which layer the report covers.
    pub layer: usize,
    /// Per-neuron traces.
    pub traces: Vec<NeuronTrace>,
    /// Threshold used to call a neuron "traceable".
    pub dominance_threshold: f64,
}

impl TraceabilityReport {
    /// Fraction of neurons with no feature whose |score| reaches the
    /// dominance threshold — the paper's "only partially achievable"
    /// quantified.
    pub fn untraceable_fraction(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        let untraceable = self
            .traces
            .iter()
            .filter(|t| t.dominant().is_none_or(|(_, s)| s.abs() < self.dominance_threshold))
            .count();
        untraceable as f64 / self.traces.len() as f64
    }

    /// Renders a compact text table, resolving feature names via `names`.
    ///
    /// # Panics
    ///
    /// Panics if a feature index exceeds `names`.
    pub fn to_table(&self, names: &[String]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "neuron-to-feature traceability, layer {} ({} neurons, {:.0}% untraceable at |score| < {})\n",
            self.layer,
            self.traces.len(),
            100.0 * self.untraceable_fraction(),
            self.dominance_threshold
        ));
        for t in &self.traces {
            out.push_str(&format!("  {}:", t.neuron));
            for &(f, s) in t.top_features.iter().take(3) {
                out.push_str(&format!(" {}={:+.3}", names[f], s));
            }
            out.push('\n');
        }
        out
    }
}

/// Computes correlation-based attribution for `layer` of `net` over the
/// dataset inputs.
///
/// # Errors
///
/// Returns [`NnError::Shape`] if inputs do not match the network or
/// `layer` is out of range.
pub fn correlation_attribution(
    net: &Network,
    inputs: &[Vector],
    layer: usize,
    top_k: usize,
) -> Result<TraceabilityReport, NnError> {
    if layer >= net.layers().len() {
        return Err(NnError::Shape {
            op: "attribution layer",
            expected: net.layers().len(),
            got: layer,
        });
    }
    let n_features = net.inputs();
    let n_neurons = net.layers()[layer].outputs();
    // Collect per-feature and per-neuron sample columns.
    let mut feature_cols = vec![Vec::with_capacity(inputs.len()); n_features];
    let mut neuron_cols = vec![Vec::with_capacity(inputs.len()); n_neurons];
    for x in inputs {
        let trace = net.forward_trace(x)?;
        for (f, col) in feature_cols.iter_mut().enumerate() {
            col.push(x[f]);
        }
        for (j, col) in neuron_cols.iter_mut().enumerate() {
            col.push(trace.activations[layer][j]);
        }
    }
    let traces = build_traces(layer, &feature_cols, &neuron_cols, top_k, |fc, nc| {
        pearson(fc, nc).unwrap_or(0.0)
    });
    Ok(TraceabilityReport {
        layer,
        traces,
        dominance_threshold: 0.5,
    })
}

/// Computes gradient×input relevance attribution for `layer` of `net`.
///
/// For each sample, the gradient of each neuron's activation w.r.t. the
/// input is taken via backpropagation through the truncated network, and
/// `|grad_i · x_i|` is averaged over samples.
///
/// # Errors
///
/// Returns [`NnError::Shape`] on input mismatch or an out-of-range layer.
pub fn relevance_attribution(
    net: &Network,
    inputs: &[Vector],
    layer: usize,
    top_k: usize,
) -> Result<TraceabilityReport, NnError> {
    if layer >= net.layers().len() {
        return Err(NnError::Shape {
            op: "attribution layer",
            expected: net.layers().len(),
            got: layer,
        });
    }
    let n_features = net.inputs();
    let n_neurons = net.layers()[layer].outputs();
    // Truncate the network after `layer` so backward() reaches the neuron.
    let truncated = Network::new(net.layers()[..=layer].to_vec())?;
    let mut relevance = vec![vec![0.0f64; n_features]; n_neurons];
    for x in inputs {
        let trace = truncated.forward_trace(x)?;
        for (j, rel) in relevance.iter_mut().enumerate() {
            let mut seed = Vector::zeros(n_neurons);
            seed[j] = 1.0;
            let (_, dx) = truncated.backward(&trace, &seed)?;
            for f in 0..n_features {
                rel[f] += (dx[f] * x[f]).abs();
            }
        }
    }
    let n = inputs.len().max(1) as f64;
    let traces = (0..n_neurons)
        .map(|j| {
            let mut feats: Vec<(usize, f64)> = relevance[j]
                .iter()
                .enumerate()
                .map(|(f, &r)| (f, r / n))
                .collect();
            feats.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
            feats.truncate(top_k);
            NeuronTrace {
                neuron: NeuronId { layer, neuron: j },
                top_features: feats,
            }
        })
        .collect();
    Ok(TraceabilityReport {
        layer,
        traces,
        // Relevance scores are unnormalised; the threshold is relative to
        // typical magnitudes and mainly useful for comparisons.
        dominance_threshold: 0.05,
    })
}

fn build_traces<F: Fn(&[f64], &[f64]) -> f64>(
    layer: usize,
    feature_cols: &[Vec<f64>],
    neuron_cols: &[Vec<f64>],
    top_k: usize,
    score: F,
) -> Vec<NeuronTrace> {
    neuron_cols
        .iter()
        .enumerate()
        .map(|(j, nc)| {
            let mut feats: Vec<(usize, f64)> = feature_cols
                .iter()
                .enumerate()
                .map(|(f, fc)| (f, score(fc, nc)))
                .collect();
            feats.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
            feats.truncate(top_k);
            NeuronTrace {
                neuron: NeuronId { layer, neuron: j },
                top_features: feats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Matrix;
    use certnn_nn::activation::Activation;
    use certnn_nn::layer::DenseLayer;

    /// Network whose first neuron depends only on feature 0 and second
    /// only on feature 1.
    fn separable_net() -> Network {
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap(),
            Vector::zeros(2),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    fn grid_inputs() -> Vec<Vector> {
        let mut v = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                v.push(Vector::from(vec![i as f64 / 3.0, j as f64 / 3.0]));
            }
        }
        v
    }

    #[test]
    fn correlation_finds_the_wired_feature() {
        let net = separable_net();
        let report = correlation_attribution(&net, &grid_inputs(), 0, 2).unwrap();
        let (f0, s0) = report.traces[0].dominant().unwrap();
        assert_eq!(f0, 0);
        assert!(s0 > 0.9, "score {s0}");
        let (f1, _) = report.traces[1].dominant().unwrap();
        assert_eq!(f1, 1);
        assert_eq!(report.untraceable_fraction(), 0.0);
    }

    #[test]
    fn relevance_finds_the_wired_feature() {
        let net = separable_net();
        let report = relevance_attribution(&net, &grid_inputs(), 0, 2).unwrap();
        assert_eq!(report.traces[0].dominant().unwrap().0, 0);
        assert_eq!(report.traces[1].dominant().unwrap().0, 1);
    }

    #[test]
    fn random_network_is_less_traceable_than_wired_one() {
        // He-initialised dense networks mix all inputs into every neuron,
        // so correlations spread out; traceability should be worse than
        // for the hand-wired network.
        let random = Network::relu_mlp(2, &[8], 1, 99).unwrap();
        let report = correlation_attribution(&random, &grid_inputs(), 0, 2).unwrap();
        let wired = correlation_attribution(&separable_net(), &grid_inputs(), 0, 2).unwrap();
        assert!(report.untraceable_fraction() >= wired.untraceable_fraction());
    }

    #[test]
    fn report_table_renders() {
        let net = separable_net();
        let report = correlation_attribution(&net, &grid_inputs(), 0, 2).unwrap();
        let names = vec!["feat_a".to_string(), "feat_b".to_string()];
        let table = report.to_table(&names);
        assert!(table.contains("feat_a"));
        assert!(table.contains("L0N0"));
    }

    #[test]
    fn out_of_range_layer_rejected() {
        let net = separable_net();
        assert!(correlation_attribution(&net, &grid_inputs(), 7, 2).is_err());
        assert!(relevance_attribution(&net, &grid_inputs(), 7, 2).is_err());
    }

    #[test]
    fn top_k_truncates() {
        let net = separable_net();
        let report = correlation_attribution(&net, &grid_inputs(), 0, 1).unwrap();
        assert!(report.traces.iter().all(|t| t.top_features.len() <= 1));
    }
}
