//! Implementation understandability: neuron-to-feature traceability and
//! MC/DC coverage analysis (the paper's Sec. II (A) and the testing
//! discussion of Sec. II).
//!
//! Classical certification demands *fine-grained requirement-to-code
//! traceability* and *coverage-based testing*. For neural networks the
//! paper proposes (A) associating neurons with the input features that
//! activate them, and observes that (B) MC/DC-style coverage is either
//! trivial (`tanh`: no branches, a single test satisfies everything) or
//! intractable (ReLU: one branch per neuron, exponentially many branch
//! patterns).
//!
//! * [`activations::ActivationRecorder`] — per-neuron activation
//!   statistics over a dataset.
//! * [`attribution`] — two neuron↔feature association measures:
//!   activation/feature Pearson correlation and gradient×input relevance,
//!   combined into a [`attribution::TraceabilityReport`].
//! * [`mcdc`] — branch signatures, obligation counting, and coverage
//!   measurement of concrete test suites, making the paper's
//!   trivial-vs-intractable argument quantitative.
//!
//! # Example
//!
//! ```
//! use certnn_nn::network::Network;
//! use certnn_trace::mcdc::{obligation_count, pattern_space_size};
//!
//! # fn main() -> Result<(), certnn_nn::NnError> {
//! let net = Network::relu_mlp(84, &[10, 10, 10, 10], 5, 0)?;
//! assert_eq!(obligation_count(&net), 80);       // 2 per ReLU neuron
//! assert_eq!(pattern_space_size(&net), 2f64.powi(40));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
pub mod attribution;
pub mod ablation;
pub mod mcdc;

pub use certnn_nn::NnError;
