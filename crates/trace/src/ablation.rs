//! Neuron-ablation impact analysis.
//!
//! A complementary understandability probe to [`crate::attribution`]: how
//! much does the network's output change when one hidden neuron is forced
//! to zero? Neurons whose ablation barely moves any output carry little
//! function; neurons whose ablation swings a safety-relevant output are
//! exactly the ones a certification argument must explain.

use crate::activations::NeuronId;
use certnn_linalg::Vector;
use certnn_nn::network::Network;
use certnn_nn::NnError;

/// Ablation impact of one neuron.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationImpact {
    /// The ablated neuron.
    pub neuron: NeuronId,
    /// Mean L∞ change of the network output across the probe inputs.
    pub mean_output_change: f64,
    /// Largest L∞ output change observed on any probe input.
    pub max_output_change: f64,
}

/// Forward pass with neuron `(layer, index)` clamped to zero after its
/// activation.
///
/// # Errors
///
/// Returns [`NnError::Shape`] if the input does not match the network or
/// the neuron id is out of range.
pub fn forward_with_ablation(
    net: &Network,
    input: &Vector,
    neuron: NeuronId,
) -> Result<Vector, NnError> {
    if neuron.layer >= net.layers().len()
        || neuron.neuron >= net.layers()[neuron.layer].outputs()
    {
        return Err(NnError::Shape {
            op: "ablation neuron",
            expected: net.layers().len(),
            got: neuron.layer,
        });
    }
    let mut a = input.clone();
    for (li, layer) in net.layers().iter().enumerate() {
        a = layer.forward(&a)?;
        if li == neuron.layer {
            a[neuron.neuron] = 0.0;
        }
    }
    Ok(a)
}

/// Measures the ablation impact of every neuron in `layer` over the probe
/// inputs.
///
/// Returns impacts sorted by descending mean output change.
///
/// # Errors
///
/// Returns [`NnError::Shape`] on mismatched inputs or an out-of-range
/// layer.
pub fn ablation_impacts(
    net: &Network,
    inputs: &[Vector],
    layer: usize,
) -> Result<Vec<AblationImpact>, NnError> {
    if layer >= net.layers().len() {
        return Err(NnError::Shape {
            op: "ablation layer",
            expected: net.layers().len(),
            got: layer,
        });
    }
    let n_neurons = net.layers()[layer].outputs();
    let baselines: Vec<Vector> = inputs
        .iter()
        .map(|x| net.forward(x))
        .collect::<Result<_, _>>()?;
    let mut impacts = Vec::with_capacity(n_neurons);
    for j in 0..n_neurons {
        let id = NeuronId { layer, neuron: j };
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        for (x, base) in inputs.iter().zip(&baselines) {
            let ablated = forward_with_ablation(net, x, id)?;
            let diff = (&ablated - base).norm_inf();
            sum += diff;
            max = max.max(diff);
        }
        impacts.push(AblationImpact {
            neuron: id,
            mean_output_change: sum / inputs.len().max(1) as f64,
            max_output_change: max,
        });
    }
    impacts.sort_by(|a, b| {
        b.mean_output_change
            .partial_cmp(&a.mean_output_change)
            .expect("finite impacts")
    });
    Ok(impacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Matrix;
    use certnn_nn::activation::Activation;
    use certnn_nn::layer::DenseLayer;

    /// Neuron 0 feeds the output with weight 5, neuron 1 with weight 0.
    fn lopsided_net() -> Network {
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap(),
            Vector::from(vec![1.0, 1.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[5.0, 0.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    fn probes() -> Vec<Vector> {
        (0..5).map(|i| Vector::from(vec![i as f64 * 0.3])).collect()
    }

    #[test]
    fn ablation_zeroes_exactly_one_neuron() {
        let net = lopsided_net();
        let x = Vector::from(vec![1.0]);
        let base = net.forward(&x).unwrap()[0]; // 5 * (1 + 1) = 10
        assert_eq!(base, 10.0);
        let a0 = forward_with_ablation(&net, &x, NeuronId { layer: 0, neuron: 0 }).unwrap();
        assert_eq!(a0[0], 0.0); // dominant path removed
        let a1 = forward_with_ablation(&net, &x, NeuronId { layer: 0, neuron: 1 }).unwrap();
        assert_eq!(a1[0], 10.0); // dead-weight path removed, no change
    }

    #[test]
    fn impacts_rank_the_load_bearing_neuron_first() {
        let net = lopsided_net();
        let impacts = ablation_impacts(&net, &probes(), 0).unwrap();
        assert_eq!(impacts.len(), 2);
        assert_eq!(impacts[0].neuron, NeuronId { layer: 0, neuron: 0 });
        assert!(impacts[0].mean_output_change > 1.0);
        assert_eq!(impacts[1].mean_output_change, 0.0);
        assert!(impacts[0].max_output_change >= impacts[0].mean_output_change);
    }

    #[test]
    fn invalid_ids_rejected() {
        let net = lopsided_net();
        let x = Vector::from(vec![1.0]);
        assert!(forward_with_ablation(&net, &x, NeuronId { layer: 9, neuron: 0 }).is_err());
        assert!(forward_with_ablation(&net, &x, NeuronId { layer: 0, neuron: 9 }).is_err());
        assert!(ablation_impacts(&net, &probes(), 9).is_err());
    }

    #[test]
    fn ablating_output_layer_neuron_zeroes_that_output() {
        let net = lopsided_net();
        let x = Vector::from(vec![1.0]);
        let out = forward_with_ablation(&net, &x, NeuronId { layer: 1, neuron: 0 }).unwrap();
        assert_eq!(out[0], 0.0);
    }
}
