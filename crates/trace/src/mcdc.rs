//! MC/DC-style coverage analysis of neural networks.
//!
//! The paper (Sec. II) observes that applying classical coverage criteria
//! to ANNs degenerates:
//!
//! * with `tan⁻¹`/`tanh` activations there is no if-then-else anywhere,
//!   so **one test case satisfies MC/DC** ([`obligation_count`] = 1);
//! * with ReLU every neuron is an if-then-else, so obligations grow
//!   linearly ([`obligation_count`] = 2 per neuron) but the reachable
//!   branch-pattern space grows **exponentially**
//!   ([`pattern_space_size`] = 2^neurons), making exhaustive decision
//!   coverage intractable.
//!
//! [`BranchCoverage`] measures what a concrete test suite actually covers,
//! which the `mcdc_coverage` bench sweeps against suite size.

use crate::activations::NeuronId;
use certnn_linalg::Vector;
use certnn_nn::activation::Activation;
use certnn_nn::network::Network;
use certnn_nn::NnError;
use std::collections::HashSet;

/// Branch decisions of all ReLU neurons for one input: `true` = active
/// (`z > 0`), layer-major order.
pub fn branch_signature(net: &Network, input: &Vector) -> Result<Vec<bool>, NnError> {
    let trace = net.forward_trace(input)?;
    let mut sig = Vec::new();
    for (layer, z) in net.layers().iter().zip(&trace.pre_activations) {
        if layer.activation() == Activation::Relu {
            sig.extend(z.iter().map(|&v| v > 0.0));
        }
    }
    Ok(sig)
}

/// Number of MC/DC-style branch obligations of a network: two per ReLU
/// neuron (each branch must be shown to independently occur), or a single
/// obligation when the network is branch-free (the paper's `tan⁻¹` case).
pub fn obligation_count(net: &Network) -> u64 {
    let relu = net.num_relu_neurons() as u64;
    if relu == 0 {
        1
    } else {
        2 * relu
    }
}

/// Size of the branch-pattern space, `2^relu_neurons` (as `f64` because it
/// overflows `u64` past 64 neurons — the point of the paper's argument).
pub fn pattern_space_size(net: &Network) -> f64 {
    2f64.powi(net.num_relu_neurons() as i32)
}

/// Coverage measurement of a concrete test suite.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchCoverage {
    /// Per-neuron: did any test take the active branch?
    pub seen_active: Vec<bool>,
    /// Per-neuron: did any test take the inactive branch?
    pub seen_inactive: Vec<bool>,
    /// Distinct full branch patterns observed.
    pub distinct_patterns: usize,
    /// Number of tests executed.
    pub tests: usize,
    /// ReLU neuron ids, parallel to the coverage vectors.
    pub neurons: Vec<NeuronId>,
}

impl BranchCoverage {
    /// Runs `tests` through `net` and records branch coverage.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if a test input does not match the
    /// network.
    pub fn measure<'a, I>(net: &Network, tests: I) -> Result<Self, NnError>
    where
        I: IntoIterator<Item = &'a Vector>,
    {
        let mut neurons = Vec::new();
        for (l, layer) in net.layers().iter().enumerate() {
            if layer.activation() == Activation::Relu {
                for j in 0..layer.outputs() {
                    neurons.push(NeuronId { layer: l, neuron: j });
                }
            }
        }
        let n = neurons.len();
        let mut seen_active = vec![false; n];
        let mut seen_inactive = vec![false; n];
        let mut patterns: HashSet<Vec<bool>> = HashSet::new();
        let mut count = 0;
        for x in tests {
            let sig = branch_signature(net, x)?;
            for (i, &active) in sig.iter().enumerate() {
                if active {
                    seen_active[i] = true;
                } else {
                    seen_inactive[i] = true;
                }
            }
            patterns.insert(sig);
            count += 1;
        }
        Ok(Self {
            seen_active,
            seen_inactive,
            distinct_patterns: patterns.len(),
            tests: count,
            neurons,
        })
    }

    /// Number of discharged branch obligations (active + inactive sides
    /// observed, counted separately).
    pub fn discharged_obligations(&self) -> u64 {
        let a = self.seen_active.iter().filter(|&&s| s).count();
        let i = self.seen_inactive.iter().filter(|&&s| s).count();
        (a + i) as u64
    }

    /// Fraction of branch obligations discharged, in `[0, 1]`.
    /// Branch-free networks are fully covered by any non-empty suite.
    pub fn coverage(&self) -> f64 {
        if self.neurons.is_empty() {
            return if self.tests > 0 { 1.0 } else { 0.0 };
        }
        self.discharged_obligations() as f64 / (2 * self.neurons.len()) as f64
    }

    /// Neurons with an uncovered branch.
    pub fn uncovered(&self) -> Vec<NeuronId> {
        self.neurons
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.seen_active[*i] || !self.seen_inactive[*i])
            .map(|(_, id)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Matrix;
    use certnn_nn::layer::DenseLayer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn relu_identity_net() -> Network {
        // Two neurons splitting on x>0 and x>1 respectively.
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap(),
            Vector::from(vec![0.0, -1.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    fn tanh_net() -> Network {
        let l = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Tanh,
        )
        .unwrap();
        Network::new(vec![l]).unwrap()
    }

    #[test]
    fn signature_reflects_decisions() {
        let net = relu_identity_net();
        assert_eq!(
            branch_signature(&net, &Vector::from(vec![2.0])).unwrap(),
            vec![true, true]
        );
        assert_eq!(
            branch_signature(&net, &Vector::from(vec![0.5])).unwrap(),
            vec![true, false]
        );
        assert_eq!(
            branch_signature(&net, &Vector::from(vec![-1.0])).unwrap(),
            vec![false, false]
        );
    }

    #[test]
    fn obligations_tanh_vs_relu() {
        assert_eq!(obligation_count(&tanh_net()), 1);
        assert_eq!(obligation_count(&relu_identity_net()), 4);
        let big = Network::relu_mlp(84, &[60, 60, 60, 60], 5, 0).unwrap();
        assert_eq!(obligation_count(&big), 480);
        assert_eq!(pattern_space_size(&big), 2f64.powi(240));
    }

    #[test]
    fn full_coverage_with_three_tests() {
        let net = relu_identity_net();
        let tests = vec![
            Vector::from(vec![2.0]),
            Vector::from(vec![0.5]),
            Vector::from(vec![-1.0]),
        ];
        let cov = BranchCoverage::measure(&net, &tests).unwrap();
        assert_eq!(cov.coverage(), 1.0);
        assert_eq!(cov.distinct_patterns, 3);
        assert!(cov.uncovered().is_empty());
    }

    #[test]
    fn partial_coverage_reports_uncovered_neurons() {
        let net = relu_identity_net();
        // Only positive small inputs: neuron 1's active branch never fires.
        let tests = vec![Vector::from(vec![0.3]), Vector::from(vec![0.6])];
        let cov = BranchCoverage::measure(&net, &tests).unwrap();
        assert!(cov.coverage() < 1.0);
        // Neuron 0 never inactive; neuron 1 never active.
        assert_eq!(cov.uncovered().len(), 2);
    }

    #[test]
    fn tanh_network_trivially_covered_by_one_test() {
        let net = tanh_net();
        let cov = BranchCoverage::measure(&net, &[Vector::from(vec![0.1])]).unwrap();
        assert_eq!(cov.coverage(), 1.0);
        let empty: Vec<Vector> = vec![];
        let none = BranchCoverage::measure(&net, &empty).unwrap();
        assert_eq!(none.coverage(), 0.0);
    }

    #[test]
    fn random_suites_saturate_obligations_but_not_patterns() {
        // Branch coverage (linear) saturates quickly; distinct patterns
        // (exponential space) keep growing — the paper's intractability
        // argument in miniature.
        let net = Network::relu_mlp(6, &[12, 12], 1, 17).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut suite: Vec<Vector> = Vec::new();
        let mut coverage_small = 0.0;
        let mut patterns_small = 0;
        for round in 0..4 {
            for _ in 0..50 {
                suite.push((0..6).map(|_| rng.gen_range(-2.0..2.0)).collect());
            }
            let cov = BranchCoverage::measure(&net, &suite).unwrap();
            if round == 0 {
                coverage_small = cov.coverage();
                patterns_small = cov.distinct_patterns;
            } else if round == 3 {
                assert!(cov.coverage() >= coverage_small);
                assert!(
                    cov.distinct_patterns > patterns_small,
                    "patterns stopped growing: {} vs {}",
                    cov.distinct_patterns,
                    patterns_small
                );
                // Even 200 tests explore a vanishing part of 2^24 patterns.
                assert!((cov.distinct_patterns as f64) < pattern_space_size(&net) / 1000.0);
            }
        }
    }
}
