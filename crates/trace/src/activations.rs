//! Per-neuron activation statistics over a dataset.

use certnn_linalg::stats::Summary;
use certnn_linalg::Vector;
use certnn_nn::network::Network;
use certnn_nn::NnError;

/// Identifies one hidden/output neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NeuronId {
    /// Layer index (0 = first hidden layer).
    pub layer: usize,
    /// Neuron index within the layer.
    pub neuron: usize,
}

impl std::fmt::Display for NeuronId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}N{}", self.layer, self.neuron)
    }
}

/// Activation statistics of every neuron of a network over a sample set.
#[derive(Debug, Clone)]
pub struct ActivationRecord {
    /// `stats[l][j]`: summary of the *post*-activation of neuron `j` in
    /// layer `l`.
    pub stats: Vec<Vec<Summary>>,
    /// `pre_stats[l][j]`: summary of the pre-activation.
    pub pre_stats: Vec<Vec<Summary>>,
    /// Number of samples recorded.
    pub samples: usize,
}

impl ActivationRecord {
    /// Neurons that never activated (post-activation max ≤ 0 over all
    /// samples) — "dead" ReLU units with no feature association at all.
    pub fn dead_neurons(&self) -> Vec<NeuronId> {
        let mut dead = Vec::new();
        for (l, layer) in self.stats.iter().enumerate() {
            for (j, s) in layer.iter().enumerate() {
                if s.count() > 0 && s.max() <= 0.0 {
                    dead.push(NeuronId { layer: l, neuron: j });
                }
            }
        }
        dead
    }

    /// Mean activation of one neuron.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn mean(&self, id: NeuronId) -> f64 {
        self.stats[id.layer][id.neuron].mean()
    }
}

/// Records activation statistics for a network.
#[derive(Debug, Clone, Default)]
pub struct ActivationRecorder;

impl ActivationRecorder {
    /// Creates a recorder.
    pub fn new() -> Self {
        Self
    }

    /// Runs every input through `net` and summarises all activations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if an input does not match the network.
    pub fn record<'a, I>(&self, net: &Network, inputs: I) -> Result<ActivationRecord, NnError>
    where
        I: IntoIterator<Item = &'a Vector>,
    {
        let mut stats: Vec<Vec<Summary>> = net
            .layers()
            .iter()
            .map(|l| vec![Summary::new(); l.outputs()])
            .collect();
        let mut pre_stats = stats.clone();
        let mut samples = 0;
        for x in inputs {
            let trace = net.forward_trace(x)?;
            for (l, (z, a)) in trace
                .pre_activations
                .iter()
                .zip(&trace.activations)
                .enumerate()
            {
                for j in 0..z.len() {
                    pre_stats[l][j].push(z[j]);
                    stats[l][j].push(a[j]);
                }
            }
            samples += 1;
        }
        Ok(ActivationRecord {
            stats,
            pre_stats,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::{Matrix, Vector};
    use certnn_nn::activation::Activation;
    use certnn_nn::layer::DenseLayer;

    fn fixed_net() -> Network {
        // Neuron 0 mirrors x0; neuron 1 is always dead (bias -100).
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap(),
            Vector::from(vec![0.0, -100.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    #[test]
    fn statistics_match_manual_values() {
        let net = fixed_net();
        let inputs: Vec<Vector> = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![-2.0]),
        ];
        let rec = ActivationRecorder::new().record(&net, &inputs).unwrap();
        assert_eq!(rec.samples, 3);
        // Neuron (0,0): relu outputs 1, 3, 0 -> mean 4/3.
        let id = NeuronId { layer: 0, neuron: 0 };
        assert!((rec.mean(id) - 4.0 / 3.0).abs() < 1e-12);
        // Pre-activation mean: (1 + 3 - 2)/3.
        assert!((rec.pre_stats[0][0].mean() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dead_neurons_detected() {
        let net = fixed_net();
        let inputs: Vec<Vector> = vec![Vector::from(vec![1.0]), Vector::from(vec![5.0])];
        let rec = ActivationRecorder::new().record(&net, &inputs).unwrap();
        assert_eq!(rec.dead_neurons(), vec![NeuronId { layer: 0, neuron: 1 }]);
    }

    #[test]
    fn neuron_id_display() {
        assert_eq!(NeuronId { layer: 2, neuron: 7 }.to_string(), "L2N7");
    }

    #[test]
    fn shape_errors_propagate() {
        let net = fixed_net();
        let bad = vec![Vector::zeros(3)];
        assert!(ActivationRecorder::new().record(&net, &bad).is_err());
    }
}
